// Cross-checks the observability layer against ground truth the engine
// already exposes: the global registry's cache counters must move in
// lockstep with AnalysisCache's own hit/miss accounting, and the BFS work
// counters must be deterministic across thread counts (per-run tallies are
// flushed once per drain, so totals are independent of scheduling).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "src/take_grant.h"
#include "src/util/metrics.h"
#include "src/util/trace.h"

namespace {

using tg::ProtectionGraph;
using tg::VertexId;
using tg_util::MetricsRegistry;

uint64_t CounterNow(const char* name) {
  return MetricsRegistry::Instance().CounterValue(name);
}

class MetricsConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = tg_util::MetricsEnabled();
    tg_util::SetMetricsEnabled(true);
  }
  void TearDown() override { tg_util::SetMetricsEnabled(was_enabled_); }

  bool was_enabled_ = true;
};

ProtectionGraph TestGraph(uint64_t seed) {
  tg_util::Prng prng(seed);
  tg_sim::RandomGraphOptions options;
  options.subjects = 12;
  options.objects = 8;
  options.edge_factor = 2.0;
  return tg_sim::RandomGraph(options, prng);
}

TEST_F(MetricsConsistencyTest, RegistryCacheCountersMatchAnalysisCache) {
  ProtectionGraph g = TestGraph(91);
  tg_analysis::AnalysisCache cache;
  const uint64_t hits_before = CounterNow("cache.hits");
  const uint64_t misses_before = CounterNow("cache.misses");

  // A mixed query/mutate sequence: repeated rows (hits), new rows (misses),
  // and a mutation that invalidates everything.
  for (VertexId x = 0; x < 6; ++x) {
    cache.Knowable(g, x);
  }
  for (VertexId x = 0; x < 6; ++x) {
    cache.Knowable(g, x);
    cache.CanKnow(g, x, (x + 1) % 6);
  }
  ASSERT_TRUE(g.AddExplicit(0, 1, tg::RightSet::Of({tg::Right::kRead})).ok());
  for (VertexId x = 0; x < 4; ++x) {
    cache.Knowable(g, x);
  }

  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
  EXPECT_EQ(CounterNow("cache.hits") - hits_before, cache.hits());
  EXPECT_EQ(CounterNow("cache.misses") - misses_before, cache.misses());
}

// KnowableFromAll routes big-enough batches through the bit-parallel
// engine; its slice tallies must be identical for any thread count (fixed
// 64-source slices, each single-threaded — see src/tg/bitset_reach.h).
TEST_F(MetricsConsistencyTest, BitReachWorkIsDeterministicAcrossThreadCounts) {
  for (uint64_t seed : {uint64_t{7}, uint64_t{23}, uint64_t{101}}) {
    ProtectionGraph g = TestGraph(seed);

    tg_util::ThreadPool one(1);
    const uint64_t slices_before_1 = CounterNow("bitreach.slices");
    const uint64_t waves_before_1 = CounterNow("bitreach.waves");
    const uint64_t ops_before_1 = CounterNow("bitreach.word_ops");
    const uint64_t visits_before_1 = CounterNow("bitreach.lane_visits");
    const uint64_t scans_before_1 = CounterNow("bitreach.lane_edge_scans");
    std::vector<std::vector<bool>> rows_1 = tg_analysis::KnowableFromAll(g, &one);
    const uint64_t slices_1 = CounterNow("bitreach.slices") - slices_before_1;
    const uint64_t waves_1 = CounterNow("bitreach.waves") - waves_before_1;
    const uint64_t ops_1 = CounterNow("bitreach.word_ops") - ops_before_1;
    const uint64_t visits_1 = CounterNow("bitreach.lane_visits") - visits_before_1;
    const uint64_t scans_1 = CounterNow("bitreach.lane_edge_scans") - scans_before_1;

    tg_util::ThreadPool four(4);
    const uint64_t slices_before_4 = CounterNow("bitreach.slices");
    const uint64_t waves_before_4 = CounterNow("bitreach.waves");
    const uint64_t ops_before_4 = CounterNow("bitreach.word_ops");
    const uint64_t visits_before_4 = CounterNow("bitreach.lane_visits");
    const uint64_t scans_before_4 = CounterNow("bitreach.lane_edge_scans");
    std::vector<std::vector<bool>> rows_4 = tg_analysis::KnowableFromAll(g, &four);
    const uint64_t slices_4 = CounterNow("bitreach.slices") - slices_before_4;
    const uint64_t waves_4 = CounterNow("bitreach.waves") - waves_before_4;
    const uint64_t ops_4 = CounterNow("bitreach.word_ops") - ops_before_4;
    const uint64_t visits_4 = CounterNow("bitreach.lane_visits") - visits_before_4;
    const uint64_t scans_4 = CounterNow("bitreach.lane_edge_scans") - scans_before_4;

    EXPECT_EQ(rows_1, rows_4) << "seed " << seed;
    EXPECT_GT(slices_1, 0u) << "seed " << seed;
    EXPECT_GT(visits_1, 0u) << "seed " << seed;
    EXPECT_EQ(slices_1, slices_4) << "seed " << seed;
    EXPECT_EQ(waves_1, waves_4) << "seed " << seed;
    EXPECT_EQ(ops_1, ops_4) << "seed " << seed;
    EXPECT_EQ(visits_1, visits_4) << "seed " << seed;
    EXPECT_EQ(scans_1, scans_4) << "seed " << seed;
  }
}

// The per-pop tallies of the bit engine (popcount of the popped word, and
// popcount * |adj|) must sum to exactly what the scalar engine counts as
// node visits / edge scans for the same sources, one at a time.
TEST_F(MetricsConsistencyTest, BitReachLaneTalliesMatchScalarTotals) {
  for (uint64_t seed : {uint64_t{3}, uint64_t{57}}) {
    ProtectionGraph g = TestGraph(seed);
    tg::AnalysisSnapshot snap(g);
    tg::SnapshotBfsOptions options;
    options.use_implicit = true;
    const tg_util::Dfa& dfa = tg::BridgeOrConnectionDfa();

    const uint64_t visits_before = CounterNow("bfs.node_visits");
    const uint64_t scans_before = CounterNow("bfs.edge_scans");
    for (VertexId v = 0; v < g.VertexCount(); ++v) {
      const VertexId sources[] = {v};
      SnapshotWordReachable(snap, sources, dfa, options);
    }
    const uint64_t scalar_visits = CounterNow("bfs.node_visits") - visits_before;
    const uint64_t scalar_scans = CounterNow("bfs.edge_scans") - scans_before;

    const uint64_t lane_visits_before = CounterNow("bitreach.lane_visits");
    const uint64_t lane_scans_before = CounterNow("bitreach.lane_edge_scans");
    tg::SnapshotWordReachableAll(snap, dfa, options);
    const uint64_t lane_visits = CounterNow("bitreach.lane_visits") - lane_visits_before;
    const uint64_t lane_scans = CounterNow("bitreach.lane_edge_scans") - lane_scans_before;

    EXPECT_GT(scalar_visits, 0u) << "seed " << seed;
    EXPECT_EQ(lane_visits, scalar_visits) << "seed " << seed;
    EXPECT_EQ(lane_scans, scalar_scans) << "seed " << seed;
  }
}

// The cache-threaded audit path (levels + security check + channel scan
// against one cache) must build exactly one snapshot for an unchanged
// graph — the regression this guards is each analysis quietly rebuilding
// its own.
TEST_F(MetricsConsistencyTest, CacheThreadedAuditBuildsOneSnapshot) {
  ProtectionGraph g = TestGraph(17);
  tg_analysis::AnalysisCache cache;
  const uint64_t builds_before = CounterNow("snapshot.builds");
  tg_hier::LevelAssignment levels = tg_hier::ComputeRwtgLevels(g, cache);
  tg_hier::SecurityReport report = tg_hier::CheckSecure(g, levels, cache);
  auto channels = tg_hier::FindCrossLevelChannels(g, levels, cache);
  tg_hier::LevelAssignment again = tg_hier::ComputeRwtgLevels(g, cache);
  EXPECT_EQ(CounterNow("snapshot.builds") - builds_before, 1u);
  // Computed levels are self-consistently secure, so the (snapshot-free)
  // witness reconstruction never ran; sanity-check that claim.
  EXPECT_TRUE(report.secure);
  EXPECT_TRUE(channels.empty());
}

TEST_F(MetricsConsistencyTest, QueriesLeaveTraceSpans) {
  ProtectionGraph g = TestGraph(5);
  tg_util::TraceBuffer::Instance().Clear();
  tg_analysis::AnalysisCache cache;
  cache.Knowable(g, 0);
  bool saw_rebuild = false;
  bool saw_bfs = false;
  for (const tg_util::TraceEvent& e : tg_util::TraceBuffer::Instance().Events()) {
    saw_rebuild |= e.kind == tg_util::TraceKind::kCacheRebuild;
    saw_bfs |= e.kind == tg_util::TraceKind::kProductBfs;
  }
  EXPECT_TRUE(saw_rebuild);
  EXPECT_TRUE(saw_bfs);

  tg_util::TraceBuffer::Instance().Clear();
  cache.KnowableAll(g);
  bool saw_bitreach = false;
  for (const tg_util::TraceEvent& e : tg_util::TraceBuffer::Instance().Events()) {
    saw_bitreach |= e.kind == tg_util::TraceKind::kBitReach;
  }
  EXPECT_TRUE(saw_bitreach);
}

// Causal identity: every span recorded during one CheckSecure call — the
// query root, the nested knowable/batch query scopes, and the leaf BFS /
// bit-reach records from pool workers — must carry the same query id for
// any thread count, and the parent links must form a single rooted tree
// (exactly one root, every parent resolvable, no cycles).
TEST_F(MetricsConsistencyTest, CheckSecureSpansShareOneQueryIdAndFormOneTree) {
  ProtectionGraph g = TestGraph(29);
  tg_hier::LevelAssignment levels = tg_hier::ComputeRwtgLevels(g);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    tg_util::ThreadPool pool(threads);
    tg_util::TraceBuffer::Instance().Clear();
    tg_hier::SecurityReport report = tg_hier::CheckSecure(g, levels, 0, &pool);
    (void)report;

    std::vector<tg_util::TraceEvent> events = tg_util::TraceBuffer::Instance().Events();
    ASSERT_FALSE(events.empty()) << "threads=" << threads;

    const uint64_t query_id = events.front().query_id;
    EXPECT_NE(query_id, 0u) << "threads=" << threads;
    std::map<uint64_t, const tg_util::TraceEvent*> by_span;
    size_t roots = 0;
    for (const tg_util::TraceEvent& e : events) {
      EXPECT_EQ(e.query_id, query_id)
          << "threads=" << threads << " span " << e.span_id << " ("
          << tg_util::TraceKindName(e.kind) << ") escaped the query";
      ASSERT_NE(e.span_id, 0u);
      by_span[e.span_id] = &e;
      if (e.parent_span == 0) {
        ++roots;
        EXPECT_EQ(e.kind, tg_util::TraceKind::kQuery) << "threads=" << threads;
      }
    }
    EXPECT_EQ(roots, 1u) << "threads=" << threads;
    ASSERT_EQ(by_span.size(), events.size()) << "span ids must be unique";

    // Every non-root parent resolves, and every parent chain terminates at
    // the root (bounded walk = no cycles).
    for (const tg_util::TraceEvent& e : events) {
      uint64_t cursor = e.span_id;
      size_t steps = 0;
      while (by_span.at(cursor)->parent_span != 0) {
        uint64_t parent = by_span.at(cursor)->parent_span;
        ASSERT_TRUE(by_span.count(parent))
            << "threads=" << threads << " span " << cursor << " has unknown parent " << parent;
        cursor = parent;
        ASSERT_LT(++steps, events.size()) << "parent chain cycle at span " << e.span_id;
      }
    }
  }
}

// The condensation-first engines keep their work counters thread-count-
// invariant: quotient census (components / quotient edges / closure rows),
// shard sweeps (shards / dirty / stage visits / edge scans / closure
// rounds), and the hybrid-row container census (sparse / dense hits) are
// all per-shard- or per-row-deterministic sums.
TEST_F(MetricsConsistencyTest, CondensationCountersDeterministicAcrossThreadCounts) {
  const char* kNames[] = {
      "condense.components",  "condense.quotient_edges",   "condense.closure_rows",
      "condense.shards",      "condense.shards_dirty",     "condense.stage_visits",
      "condense.stage_edge_scans", "condense.closure_rounds",
      "row.sparse_hits",      "row.dense_hits",
  };
  tg_util::Prng prng(404);
  tg_sim::HierarchicalGraphOptions options;
  options.levels = 3;
  options.clusters_per_level = 2;
  options.subjects_per_cluster = 5;
  options.objects_per_cluster = 2;
  options.planted_channels = 2;
  tg_sim::GeneratedHierarchy h = tg_sim::HierarchicalGraph(options, prng);

  auto run = [&](size_t threads) {
    std::map<std::string, uint64_t> before;
    for (const char* name : kNames) {
      before[name] = CounterNow(name);
    }
    tg_util::ThreadPool pool(threads);
    tg_hier::SecurityReport report =
        tg_hier::CheckSecure(h.graph, h.levels, 0, &pool, tg_hier::AuditEngine::kSharded);
    (void)report;
    auto channels = tg_hier::FindCrossLevelChannels(h.graph, h.levels, 0, &pool,
                                                    tg_hier::AuditEngine::kSharded);
    (void)channels;
    tg_hier::LevelAssignment levels = tg_hier::ComputeRwtgLevels(h.graph, &pool);
    (void)levels;
    std::vector<std::vector<bool>> rows = tg_analysis::KnowableFromAll(h.graph, &pool);
    (void)rows;
    std::map<std::string, uint64_t> delta;
    for (const char* name : kNames) {
      delta[name] = CounterNow(name) - before[name];
    }
    return delta;
  };

  const std::map<std::string, uint64_t> one = run(1);
  const std::map<std::string, uint64_t> four = run(4);
  EXPECT_EQ(one, four);
  EXPECT_GT(one.at("condense.shards"), 0u);
  EXPECT_GT(one.at("condense.shards_dirty"), 0u);  // planted channels dirty a shard
  EXPECT_GT(one.at("condense.stage_visits"), 0u);
  EXPECT_GT(one.at("condense.components"), 0u);
  EXPECT_GT(one.at("row.sparse_hits") + one.at("row.dense_hits"), 0u);
}

// The bridge-enum engine's work tallies — segment closure rows, pivot
// adjacency scans, typed channels emitted — are per-index sums of
// deterministic values (the build is serial, emission is scan-ordered), so
// they must be identical for any thread count.
TEST_F(MetricsConsistencyTest, BridgeEnumCountersDeterministicAcrossThreadCounts) {
  const char* kNames[] = {
      "bridge_enum.segment_closures",
      "bridge_enum.pivot_scans",
      "bridge_enum.channels_emitted",
  };
  tg_util::Prng prng(404);
  tg_sim::HierarchicalGraphOptions options;
  options.levels = 3;
  options.clusters_per_level = 2;
  options.subjects_per_cluster = 5;
  options.objects_per_cluster = 2;
  options.planted_channels = 2;
  tg_sim::GeneratedHierarchy h = tg_sim::HierarchicalGraph(options, prng);

  auto run = [&](size_t threads) {
    std::map<std::string, uint64_t> before;
    for (const char* name : kNames) {
      before[name] = CounterNow(name);
    }
    tg_util::ThreadPool pool(threads);
    tg_hier::SecurityReport report =
        tg_hier::CheckSecure(h.graph, h.levels, 0, &pool, tg_hier::AuditEngine::kBridgeEnum);
    (void)report;
    auto channels = tg_hier::FindCrossLevelChannels(h.graph, h.levels, 0, &pool,
                                                    tg_hier::AuditEngine::kBridgeEnum);
    (void)channels;
    auto typed = tg_hier::FindTypedCrossLevelChannels(h.graph, h.levels);
    (void)typed;
    std::map<std::string, uint64_t> delta;
    for (const char* name : kNames) {
      delta[name] = CounterNow(name) - before[name];
    }
    return delta;
  };

  const std::map<std::string, uint64_t> one = run(1);
  const std::map<std::string, uint64_t> four = run(4);
  EXPECT_EQ(one, four);
  EXPECT_GT(one.at("bridge_enum.segment_closures"), 0u);
  EXPECT_GT(one.at("bridge_enum.pivot_scans"), 0u);
  EXPECT_GT(one.at("bridge_enum.channels_emitted"), 0u);  // planted channels get typed
}

// The cache-threaded bridge-enum audit builds exactly one snapshot for an
// unchanged secure graph, like the other engines (the index itself hangs
// off the shared snapshot, not a private rebuild); and on an insecure
// graph it adds no builds beyond dense — the only per-witness builds are
// FindWordPath's own, identical across engines.
TEST_F(MetricsConsistencyTest, BridgeEnumAuditBuildsOneSnapshot) {
  tg_util::Prng prng(505);
  tg_sim::HierarchicalGraphOptions options;
  options.levels = 3;
  options.clusters_per_level = 2;
  options.subjects_per_cluster = 5;
  options.objects_per_cluster = 2;
  tg_sim::GeneratedHierarchy secure_h = tg_sim::HierarchicalGraph(options, prng);
  {
    tg_analysis::AnalysisCache cache;
    const uint64_t builds_before = CounterNow("snapshot.builds");
    tg_hier::SecurityReport report = tg_hier::CheckSecure(
        secure_h.graph, secure_h.levels, cache, 0, nullptr, tg_hier::AuditEngine::kBridgeEnum);
    auto channels = tg_hier::FindCrossLevelChannels(secure_h.graph, secure_h.levels, cache, 0,
                                                    nullptr, tg_hier::AuditEngine::kBridgeEnum);
    auto typed = tg_hier::FindTypedCrossLevelChannels(secure_h.graph, secure_h.levels, cache);
    EXPECT_EQ(CounterNow("snapshot.builds") - builds_before, 1u);
    EXPECT_TRUE(report.secure);
    EXPECT_TRUE(channels.empty());
    EXPECT_TRUE(typed.empty());
  }
  options.planted_channels = 2;
  tg_sim::GeneratedHierarchy leaky = tg_sim::HierarchicalGraph(options, prng);
  auto builds_for = [&](tg_hier::AuditEngine engine) {
    tg_analysis::AnalysisCache cache;
    const uint64_t before = CounterNow("snapshot.builds");
    tg_hier::SecurityReport report =
        tg_hier::CheckSecure(leaky.graph, leaky.levels, cache, 0, nullptr, engine);
    EXPECT_FALSE(report.secure);
    auto channels =
        tg_hier::FindCrossLevelChannels(leaky.graph, leaky.levels, cache, 0, nullptr, engine);
    EXPECT_FALSE(channels.empty());
    return CounterNow("snapshot.builds") - before;
  };
  EXPECT_EQ(builds_for(tg_hier::AuditEngine::kBridgeEnum),
            builds_for(tg_hier::AuditEngine::kDense));
}

// The bridge-enum audit leaves its own span kind in the trace ring.
TEST_F(MetricsConsistencyTest, BridgeEnumAuditLeavesBridgeEnumSpans) {
  tg_util::Prng prng(808);
  tg_sim::HierarchicalGraphOptions options;
  options.levels = 3;
  options.clusters_per_level = 2;
  options.subjects_per_cluster = 4;
  options.objects_per_cluster = 2;
  tg_sim::GeneratedHierarchy h = tg_sim::HierarchicalGraph(options, prng);
  tg_util::TraceBuffer::Instance().Clear();
  tg_hier::SecurityReport report =
      tg_hier::CheckSecure(h.graph, h.levels, 0, nullptr, tg_hier::AuditEngine::kBridgeEnum);
  (void)report;
  bool saw_bridge_enum = false;
  for (const tg_util::TraceEvent& e : tg_util::TraceBuffer::Instance().Events()) {
    saw_bridge_enum |= e.kind == tg_util::TraceKind::kBridgeEnum;
  }
  EXPECT_TRUE(saw_bridge_enum);
}

// The sharded audit leaves its own span kinds in the trace ring.
TEST_F(MetricsConsistencyTest, ShardedAuditLeavesCondenseAndShardSpans) {
  tg_util::Prng prng(808);
  tg_sim::HierarchicalGraphOptions options;
  options.levels = 3;
  options.clusters_per_level = 2;
  options.subjects_per_cluster = 4;
  options.objects_per_cluster = 2;
  tg_sim::GeneratedHierarchy h = tg_sim::HierarchicalGraph(options, prng);
  tg_util::TraceBuffer::Instance().Clear();
  tg_hier::SecurityReport report =
      tg_hier::CheckSecure(h.graph, h.levels, 0, nullptr, tg_hier::AuditEngine::kSharded);
  (void)report;
  tg_hier::LevelAssignment levels = tg_hier::ComputeRwtgLevels(h.graph);
  (void)levels;
  bool saw_shard_audit = false;
  bool saw_condense = false;
  for (const tg_util::TraceEvent& e : tg_util::TraceBuffer::Instance().Events()) {
    saw_shard_audit |= e.kind == tg_util::TraceKind::kShardAudit;
    saw_condense |= e.kind == tg_util::TraceKind::kCondense;
  }
  EXPECT_TRUE(saw_shard_audit);
  EXPECT_TRUE(saw_condense);
}

TEST_F(MetricsConsistencyTest, MonitorCountersMatchAuditLog) {
  ProtectionGraph g;
  VertexId a = g.AddVertex(tg::VertexKind::kSubject, "a");
  VertexId b = g.AddVertex(tg::VertexKind::kSubject, "b");
  VertexId c = g.AddVertex(tg::VertexKind::kObject, "c");
  ASSERT_TRUE(g.AddExplicit(a, b, tg::RightSet::Of({tg::Right::kTake})).ok());
  ASSERT_TRUE(g.AddExplicit(b, c, tg::RightSet::Of({tg::Right::kRead})).ok());

  const uint64_t requests_before = CounterNow("monitor.requests");
  const uint64_t allowed_before = CounterNow("monitor.allowed");
  tg_sim::ReferenceMonitor monitor(std::move(g), nullptr);
  // One legal take, one malformed request (self-take).
  auto ok =
      monitor.Submit(tg::RuleApplication::Take(a, b, c, tg::RightSet::Of({tg::Right::kRead})));
  EXPECT_TRUE(ok.ok());
  auto bad =
      monitor.Submit(tg::RuleApplication::Take(a, a, a, tg::RightSet::Of({tg::Right::kRead})));
  EXPECT_FALSE(bad.ok());

  EXPECT_EQ(CounterNow("monitor.requests") - requests_before, 2u);
  EXPECT_EQ(CounterNow("monitor.allowed") - allowed_before, monitor.allowed_count());
  EXPECT_EQ(monitor.allowed_count(), 1u);
}

// The admission gate's counters are writer-side-deterministic: a fixed
// transactional workload produces identical admission.* deltas whether one
// or four concurrent readers hammer epoch-pinned graph copies while the
// writer commits — and the pinned copies never observe a partial write
// (their epoch and contents are bit-stable for the whole run).
TEST_F(MetricsConsistencyTest, AdmissionCountersInvariantAcrossReaderThreadCounts) {
  const char* kNames[] = {
      "admission.requests",       "admission.accepted",      "admission.vetoed",
      "admission.rejected",       "admission.txns_begun",    "admission.txns_committed",
      "admission.txns_aborted",   "admission.state_repairs", "admission.state_rebuilds",
      "admission.journal_records_replayed",
  };

  auto run = [&](size_t readers) {
    tg_util::Prng prng(606);
    tg_sim::HierarchicalGraphOptions options;
    options.levels = 2;
    options.clusters_per_level = 1;
    options.subjects_per_cluster = 4;
    options.objects_per_cluster = 2;
    options.planted_channels = 2;  // the stream must exercise vetoes too
    tg_sim::GeneratedHierarchy h = tg_sim::HierarchicalGraph(options, prng);

    std::map<std::string, uint64_t> before;
    for (const char* name : kNames) {
      before[name] = CounterNow(name);
    }

    tg_hier::AdmissionGate::Options gate_options;
    gate_options.abort_txn_on_veto = false;  // vetoes must not derail the stream
    auto gate = tg_hier::AdmissionGate::Create(h.graph, h.levels, gate_options);

    // Readers pin the pre-workload graph by value and query it while the
    // writer commits; every answer and the pin itself must stay identical.
    const ProtectionGraph pin = gate->graph();
    const uint64_t pin_epoch = pin.epoch();
    std::vector<std::thread> pool;
    std::vector<int> reader_failures(readers, 0);
    for (size_t r = 0; r < readers; ++r) {
      pool.emplace_back([&pin, pin_epoch, r, &reader_failures] {
        ProtectionGraph mine = pin;  // reader-local epoch-pinned copy
        const std::vector<bool> baseline = tg_analysis::KnowableFrom(mine, 0);
        for (int iter = 0; iter < 30; ++iter) {
          if (mine.epoch() != pin_epoch ||
              tg_analysis::KnowableFrom(mine, 0) != baseline || !(mine == pin)) {
            ++reader_failures[r];
          }
        }
      });
    }

    // Writer: four transactional batches over the enumerated legal rules
    // (commits and vetoes interleaved), then one malformed autocommit.
    for (int batch = 0; batch < 4; ++batch) {
      std::vector<tg::RuleApplication> rules = tg::EnumerateDeJure(gate->graph());
      gate->Begin();
      for (size_t i = 0; i < rules.size() && i < 6; ++i) {
        gate->Submit(rules[i]);
      }
      auto result = gate->Commit();
      EXPECT_TRUE(result.ok()) << "batch " << batch;
    }
    auto rejected = gate->Admit(
        tg::RuleApplication::Take(0, 0, 0, tg::RightSet::Of({tg::Right::kRead})));
    EXPECT_EQ(rejected.outcome, tg_hier::AdmissionOutcome::kRejected);

    for (std::thread& t : pool) {
      t.join();
    }
    for (size_t r = 0; r < readers; ++r) {
      EXPECT_EQ(reader_failures[r], 0)
          << "reader " << r << " of " << readers << " saw a partial write";
    }

    std::map<std::string, uint64_t> delta;
    for (const char* name : kNames) {
      delta[name] = CounterNow(name) - before[name];
    }
    // The registry deltas must agree with the gate's own ledgers.
    EXPECT_EQ(delta.at("admission.accepted"), gate->accepted_count());
    EXPECT_EQ(delta.at("admission.vetoed"), gate->vetoed_count());
    EXPECT_EQ(delta.at("admission.rejected"), gate->rejected_count());
    EXPECT_EQ(delta.at("admission.txns_committed"), gate->txns_committed());
    EXPECT_EQ(delta.at("admission.txns_aborted"), gate->txns_aborted());
    EXPECT_EQ(delta.at("admission.state_repairs"), gate->state_repairs());
    EXPECT_EQ(delta.at("admission.state_rebuilds"), gate->state_rebuilds());
    return delta;
  };

  const std::map<std::string, uint64_t> one = run(1);
  const std::map<std::string, uint64_t> four = run(4);
  EXPECT_EQ(one, four);
  EXPECT_GT(one.at("admission.accepted"), 0u);
  EXPECT_GT(one.at("admission.vetoed"), 0u);  // planted channels draw vetoes
  EXPECT_EQ(one.at("admission.rejected"), 1u);
  EXPECT_EQ(one.at("admission.txns_begun"), 4u);
  EXPECT_EQ(one.at("admission.txns_committed"), 4u);
}

}  // namespace

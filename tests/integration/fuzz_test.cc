// Randomized and stress tests: invariants under arbitrary operation
// sequences, reference-checked language acceptors, and depth stress.

#include <gtest/gtest.h>

#include "src/take_grant.h"

namespace {

using tg::PathSymbol;
using tg::ProtectionGraph;
using tg::Right;
using tg::VertexId;
using tg::Word;

// ---- graph operation fuzz ----

TEST(GraphFuzzTest, RandomOperationsKeepInvariants) {
  tg_util::Prng prng(20240707);
  for (int round = 0; round < 20; ++round) {
    ProtectionGraph g;
    size_t expected_explicit = 0;
    for (int op = 0; op < 300; ++op) {
      switch (prng.NextBelow(6)) {
        case 0:
          g.AddSubject();
          break;
        case 1:
          g.AddObject();
          break;
        case 2: {  // add explicit
          if (g.VertexCount() < 2) {
            break;
          }
          VertexId a = static_cast<VertexId>(prng.NextBelow(g.VertexCount()));
          VertexId b = static_cast<VertexId>(prng.NextBelow(g.VertexCount()));
          tg::RightSet rights =
              tg::RightSet::FromBits(static_cast<uint8_t>(1 + prng.NextBelow(255)));
          bool had = !g.ExplicitRights(a, b).empty();
          if (g.AddExplicit(a, b, rights).ok() && !had) {
            ++expected_explicit;
          }
          break;
        }
        case 3: {  // add implicit
          if (g.VertexCount() < 2) {
            break;
          }
          VertexId a = static_cast<VertexId>(prng.NextBelow(g.VertexCount()));
          VertexId b = static_cast<VertexId>(prng.NextBelow(g.VertexCount()));
          (void)g.AddImplicit(a, b, tg::kRead);
          break;
        }
        case 4: {  // remove
          if (g.VertexCount() < 2) {
            break;
          }
          VertexId a = static_cast<VertexId>(prng.NextBelow(g.VertexCount()));
          VertexId b = static_cast<VertexId>(prng.NextBelow(g.VertexCount()));
          bool had = !g.ExplicitRights(a, b).empty();
          tg::RightSet rights =
              tg::RightSet::FromBits(static_cast<uint8_t>(1 + prng.NextBelow(255)));
          if (g.RemoveExplicit(a, b, rights).ok() && had &&
              g.ExplicitRights(a, b).empty()) {
            --expected_explicit;
          }
          break;
        }
        case 5:
          if (prng.NextBool(0.05)) {
            g.ClearImplicit();
          }
          break;
      }
    }
    ASSERT_TRUE(g.Validate().ok()) << "round " << round;
    EXPECT_EQ(g.ExplicitEdgeCount(), expected_explicit) << "round " << round;
    // Round trip.
    auto reparsed = tg::ParseGraph(tg::PrintGraph(g));
    ASSERT_TRUE(reparsed.ok()) << "round " << round;
    EXPECT_TRUE(*reparsed == g) << "round " << round;
  }
}

TEST(RuleFuzzTest, RandomRuleSequencesKeepValidity) {
  tg_util::Prng prng(777777);
  for (int round = 0; round < 10; ++round) {
    tg_sim::RandomGraphOptions options;
    options.subjects = 4;
    options.objects = 3;
    options.edge_factor = 1.5;
    ProtectionGraph g = tg_sim::RandomGraph(options, prng);
    tg::RuleEngine engine(g, nullptr);
    for (int step = 0; step < 80; ++step) {
      std::vector<tg::RuleApplication> de_jure = EnumerateDeJure(engine.graph());
      std::vector<tg::RuleApplication> de_facto = EnumerateDeFacto(engine.graph());
      de_jure.insert(de_jure.end(), de_facto.begin(), de_facto.end());
      if (de_jure.empty()) {
        break;
      }
      size_t pick = static_cast<size_t>(prng.NextBelow(de_jure.size()));
      auto result = engine.Apply(de_jure[pick]);
      EXPECT_TRUE(result.ok()) << "enumerated rule failed: "
                               << de_jure[pick].ToString(engine.graph());
    }
    EXPECT_TRUE(engine.graph().Validate().ok()) << "round " << round;
    // The journal must replay to the same graph.
    auto replayed = engine.journal().Replay(g);
    ASSERT_TRUE(replayed.ok());
    EXPECT_TRUE(*replayed == engine.graph());
  }
}

// ---- incremental oracle: cached queries vs fresh-graph analysis ----

// Interleaves rule applications with can_know / can_share queries.  The
// long-lived AnalysisCache answers through the delta-aware pipeline
// (journal -> overlay patch -> scoped entry repair); every answer is
// cross-checked against a from-scratch analysis of the current graph, and
// the mutated-in-place graph itself is cross-checked against its
// serialized rebuild so incremental state cannot drift from the ground
// truth.
TEST(IncrementalOracleFuzzTest, CachedQueriesMatchFreshAnalysisAcrossRules) {
  tg_util::Prng prng(90210);
  for (int round = 0; round < 4; ++round) {
    tg_sim::RandomGraphOptions options;
    options.subjects = 5;
    options.objects = 3;
    options.edge_factor = 1.6;
    ProtectionGraph g = tg_sim::RandomGraph(options, prng);
    tg::RuleEngine engine(g, nullptr);
    tg_analysis::AnalysisCache cache;
    int applied = 0;
    for (int step = 0; step < 60; ++step) {
      const ProtectionGraph& cur = engine.graph();
      if (prng.NextBool(0.5)) {
        std::vector<tg::RuleApplication> rules = EnumerateDeJure(cur);
        std::vector<tg::RuleApplication> de_facto = EnumerateDeFacto(cur);
        rules.insert(rules.end(), de_facto.begin(), de_facto.end());
        if (!rules.empty()) {
          size_t pick = static_cast<size_t>(prng.NextBelow(rules.size()));
          ASSERT_TRUE(engine.Apply(rules[pick]).ok());
          ++applied;
        }
        continue;
      }
      VertexId x = static_cast<VertexId>(prng.NextBelow(cur.VertexCount()));
      VertexId y = static_cast<VertexId>(prng.NextBelow(cur.VertexCount()));
      EXPECT_EQ(cache.CanKnow(cur, x, y), tg_analysis::CanKnow(cur, x, y))
          << "round " << round << " step " << step << " x=" << x << " y=" << y;
      EXPECT_EQ(cache.Knowable(cur, x), tg_analysis::KnowableFrom(cur, x))
          << "round " << round << " step " << step << " x=" << x;
      // can_share runs snapshot-free of the cache; checking it against the
      // reparsed graph verifies the mutated-in-place state it reads.
      auto reparsed = tg::ParseGraph(tg::PrintGraph(cur));
      ASSERT_TRUE(reparsed.ok());
      EXPECT_EQ(tg_analysis::CanShare(cur, Right::kRead, x, y),
                tg_analysis::CanShare(*reparsed, Right::kRead, x, y))
          << "round " << round << " step " << step << " x=" << x << " y=" << y;
    }
    EXPECT_GT(applied, 0) << "round " << round;
    // The journal window over the whole run must reconcile with the net
    // state change the rules produced.
    ASSERT_TRUE(engine.graph().journal().Covers(g.epoch()));
    tg::GraphDiff from_journal = tg::DiffOfJournal(engine.graph().journal().Since(g.epoch()));
    tg::GraphDiff from_graphs = tg::DiffGraphs(g, engine.graph());
    EXPECT_EQ(from_journal.added_vertices, from_graphs.added_vertices) << "round " << round;
    EXPECT_EQ(from_journal.added_explicit, from_graphs.added_explicit) << "round " << round;
    EXPECT_EQ(from_journal.removed_explicit, from_graphs.removed_explicit)
        << "round " << round;
    EXPECT_EQ(from_journal.added_implicit, from_graphs.added_implicit) << "round " << round;
    EXPECT_EQ(from_journal.removed_implicit, from_graphs.removed_implicit)
        << "round " << round;
  }
}

// ---- language acceptors vs reference matchers ----

// Straightforward reference implementations of the word languages.
bool RefTerminal(const Word& w) {
  for (PathSymbol s : w) {
    if (s != PathSymbol::kTakeFwd) {
      return false;
    }
  }
  return true;
}

bool RefInitial(const Word& w) {
  if (w.empty()) {
    return true;
  }
  for (size_t i = 0; i + 1 < w.size(); ++i) {
    if (w[i] != PathSymbol::kTakeFwd) {
      return false;
    }
  }
  return w.back() == PathSymbol::kGrantFwd;
}

bool RefBridge(const Word& w) {
  // t>* | t<* | t>* g> t<* | t>* g< t<*
  size_t i = 0;
  while (i < w.size() && w[i] == PathSymbol::kTakeFwd) {
    ++i;
  }
  if (i == w.size()) {
    return true;  // t>*
  }
  if (i == 0 && w[i] == PathSymbol::kTakeBack) {
    while (i < w.size() && w[i] == PathSymbol::kTakeBack) {
      ++i;
    }
    return i == w.size();  // t<*
  }
  if (w[i] != PathSymbol::kGrantFwd && w[i] != PathSymbol::kGrantBack) {
    return false;
  }
  ++i;
  while (i < w.size() && w[i] == PathSymbol::kTakeBack) {
    ++i;
  }
  return i == w.size();
}

bool RefConnection(const Word& w) {
  // t>* r> | w< t<* | t>* r> w< t<*
  if (w.empty()) {
    return false;
  }
  size_t i = 0;
  while (i < w.size() && w[i] == PathSymbol::kTakeFwd) {
    ++i;
  }
  if (i < w.size() && w[i] == PathSymbol::kReadFwd) {
    ++i;
    if (i == w.size()) {
      return true;
    }
    if (w[i] != PathSymbol::kWriteBack) {
      return false;
    }
    ++i;
    while (i < w.size() && w[i] == PathSymbol::kTakeBack) {
      ++i;
    }
    return i == w.size();
  }
  if (i == 0 && w[0] == PathSymbol::kWriteBack) {
    i = 1;
    while (i < w.size() && w[i] == PathSymbol::kTakeBack) {
      ++i;
    }
    return i == w.size();
  }
  return false;
}

bool RefAdmissible(const Word& w) {
  for (PathSymbol s : w) {
    if (s != PathSymbol::kReadFwd && s != PathSymbol::kWriteBack) {
      return false;
    }
  }
  return true;
}

TEST(LanguageFuzzTest, DfasMatchReferenceMatchers) {
  tg_util::Prng prng(31337);
  for (int trial = 0; trial < 20000; ++trial) {
    size_t len = prng.NextBelow(7);
    Word w;
    for (size_t i = 0; i < len; ++i) {
      w.push_back(static_cast<PathSymbol>(prng.NextBelow(tg::kPathSymbolCount)));
    }
    std::string label = tg::WordToString(w);
    EXPECT_EQ(tg::IsTerminalSpanWord(w), RefTerminal(w)) << label;
    EXPECT_EQ(tg::IsInitialSpanWord(w), RefInitial(w)) << label;
    EXPECT_EQ(tg::IsBridgeWord(w), RefBridge(w)) << label;
    EXPECT_EQ(tg::IsConnectionWord(w), RefConnection(w)) << label;
    EXPECT_EQ(tg::IsAdmissibleRwWord(w), RefAdmissible(w)) << label;
    // The union DFA is exactly the union.
    EXPECT_EQ(tg::BridgeOrConnectionDfa().Accepts(tg::WordToIndices(w)),
              RefBridge(w) || RefConnection(w))
        << label;
    // ... and the seven per-word-type sublanguage DFAs (the bridge-enum
    // decomposition) partition it: their union accepts exactly the same
    // words.
    bool any_type = false;
    for (size_t t = 0; t < tg_analysis::kChannelWordTypeCount; ++t) {
      const auto type = static_cast<tg_analysis::ChannelWordType>(t);
      any_type = any_type || tg_analysis::ChannelWordDfa(type).Accepts(tg::WordToIndices(w));
    }
    EXPECT_EQ(any_type, RefBridge(w) || RefConnection(w)) << label;
  }
}

// ---- procedure vs oracle cross-check ----

TEST(OracleFuzzTest, CanKnowFMatchesOracleOnRandomHierarchies) {
  // OracleCanKnowF answers can_know_f by brute saturation (no de jure
  // moves), so it must agree with the procedural CanKnowF on every pair.
  tg_util::Prng prng(4242);
  for (int trial = 0; trial < 6; ++trial) {
    tg_sim::RandomHierarchyOptions options;
    options.levels = 2 + trial % 2;
    options.subjects_per_level = 2;
    options.objects_per_level = 1;
    options.planted_channels = trial % 3;
    ProtectionGraph g = tg_sim::RandomHierarchy(options, prng).graph;
    for (VertexId x = 0; x < g.VertexCount(); ++x) {
      for (VertexId y = 0; y < g.VertexCount(); ++y) {
        EXPECT_EQ(tg_analysis::CanKnowF(g, x, y), tg_analysis::OracleCanKnowF(g, x, y))
            << "trial " << trial << " x=" << g.NameOf(x) << " y=" << g.NameOf(y);
      }
    }
  }
}

// ---- stress ----

TEST(StressTest, LongChainCanShareAndWitness) {
  ProtectionGraph g = tg_sim::ChainGraph(3000);
  VertexId head = g.FindVertex("head");
  VertexId target = g.FindVertex("target");
  EXPECT_TRUE(tg_analysis::CanShare(g, Right::kRead, head, target));
  ProtectionGraph small = tg_sim::ChainGraph(500);
  VertexId shead = small.FindVertex("head");
  VertexId starget = small.FindVertex("target");
  auto witness = tg_analysis::BuildCanShareWitness(small, Right::kRead, shead, starget);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->size(), 498u);  // one take per chain hop plus the final pull
  EXPECT_TRUE(witness->VerifyAddsExplicit(small, shead, starget, Right::kRead).ok());
}

TEST(StressTest, DeepSccRecursionSafe) {
  // 200k-node path digraph: the iterative Tarjan must not overflow.
  constexpr size_t kN = 200000;
  std::vector<std::vector<VertexId>> adj(kN);
  for (size_t i = 0; i + 1 < kN; ++i) {
    adj[i].push_back(static_cast<VertexId>(i + 1));
  }
  auto comp = tg_hier::StronglyConnectedComponents(adj);
  EXPECT_EQ(comp.size(), kN);
  EXPECT_NE(comp[0], comp[kN - 1]);
}

TEST(StressTest, WideStarGraphAnalyses) {
  // One hub subject with 2000 spokes; everything should stay fast & sane.
  ProtectionGraph g;
  VertexId hub = g.AddSubject("hub");
  for (int i = 0; i < 2000; ++i) {
    VertexId spoke = g.AddObject();
    ASSERT_TRUE(g.AddExplicit(hub, spoke, tg::kReadWrite).ok());
  }
  EXPECT_TRUE(g.Validate().ok());
  tg_analysis::Islands islands(g);
  EXPECT_EQ(islands.Count(), 1u);
  auto knowable = tg_analysis::KnowableFrom(g, hub);
  size_t count = 0;
  for (bool b : knowable) {
    count += b ? 1 : 0;
  }
  EXPECT_EQ(count, g.VertexCount());  // hub reads every spoke
}

// ---- hybrid compressed rows vs dense engine, every path DFA ----

// The hybrid ReachRow engine must agree with the dense bit-parallel
// engine bit-for-bit for every language DFA the analyses use, at word
// boundary sizes (63/64/65/129) and at a four-digit size where multiple
// slices and container promotions occur.
TEST(StressTest, HybridRowsMatchDenseAcrossAllDfasAndSizes) {
  const struct {
    const char* name;
    const tg_util::Dfa* dfa;
  } kDfas[] = {
      {"terminal", &tg::TerminalSpanDfa()},
      {"initial", &tg::InitialSpanDfa()},
      {"bridge", &tg::BridgeDfa()},
      {"rw_terminal", &tg::RwTerminalSpanDfa()},
      {"rw_initial", &tg::RwInitialSpanDfa()},
      {"connection", &tg::ConnectionDfa()},
      {"admissible_rw", &tg::AdmissibleRwDfa()},
      {"bridge_or_connection", &tg::BridgeOrConnectionDfa()},
      {"rev_terminal", &tg::ReverseTerminalSpanDfa()},
      {"rev_initial", &tg::ReverseInitialSpanDfa()},
      {"rev_rw_terminal", &tg::ReverseRwTerminalSpanDfa()},
      {"rev_rw_initial", &tg::ReverseRwInitialSpanDfa()},
      {"grant_fwd_bridge", &tg::GrantFwdBridgeDfa()},
      {"grant_back_bridge", &tg::GrantBackBridgeDfa()},
      {"full_connection", &tg::FullConnectionDfa()},
  };
  tg_util::Prng prng(6060);
  for (size_t n : {size_t{63}, size_t{64}, size_t{65}, size_t{129}, size_t{1024}}) {
    tg_sim::RandomGraphOptions options;
    options.subjects = n * 2 / 3;
    options.objects = n - options.subjects;
    options.edge_factor = 1.5;
    ProtectionGraph g = tg_sim::RandomGraph(options, prng);
    ASSERT_EQ(g.VertexCount(), n);
    tg::AnalysisSnapshot snap(g);
    tg::SnapshotBfsOptions bfs;
    bfs.use_implicit = true;
    std::vector<VertexId> sources(n);
    for (size_t v = 0; v < n; ++v) {
      sources[v] = static_cast<VertexId>(v);
    }
    for (const auto& entry : kDfas) {
      tg::BitMatrix dense = tg::SnapshotWordReachableAll(snap, sources, *entry.dfa, bfs);
      std::vector<tg::ReachRow> rows =
          tg::SnapshotWordReachableAllRows(snap, sources, *entry.dfa, bfs);
      ASSERT_EQ(rows.size(), n) << entry.name << " n=" << n;
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(rows[i].ToDenseWords(),
                  std::vector<uint64_t>(dense.Row(i).begin(), dense.Row(i).end()))
            << entry.name << " n=" << n << " row " << i;
      }
    }
  }
}

// Randomized generator graphs through the full audit engines: the sharded
// path must agree with the dense path on arbitrary (non-hierarchical)
// level assignments too.
TEST(StressTest, ShardedAuditMatchesDenseOnRandomGraphs) {
  tg_util::Prng prng(515151);
  for (int trial = 0; trial < 8; ++trial) {
    tg_sim::RandomGraphOptions options;
    options.subjects = 14;
    options.objects = 10;
    options.edge_factor = 1.8;
    ProtectionGraph g = tg_sim::RandomGraph(options, prng);
    // A random 3-level chain assignment over a random subset of vertices.
    tg_hier::LevelAssignment levels(g.VertexCount(), 3);
    for (tg_hier::LevelId a = 1; a < 3; ++a) {
      for (tg_hier::LevelId b = 0; b < a; ++b) {
        levels.DeclareHigher(a, b);
      }
    }
    for (VertexId v = 0; v < g.VertexCount(); ++v) {
      if (!prng.NextBool(0.2)) {
        levels.Assign(v, static_cast<tg_hier::LevelId>(prng.NextBelow(3)));
      }
    }
    ASSERT_TRUE(levels.Finalize());
    tg_hier::SecurityReport dense =
        tg_hier::CheckSecure(g, levels, 0, nullptr, tg_hier::AuditEngine::kDense);
    auto dense_ch = tg_hier::FindCrossLevelChannels(g, levels, 0, nullptr,
                                                    tg_hier::AuditEngine::kDense);
    // Both scaled engines — the level-sharded sweep and the per-word-type
    // bridge-enum decomposition — must match the dense reference exactly.
    for (tg_hier::AuditEngine engine :
         {tg_hier::AuditEngine::kSharded, tg_hier::AuditEngine::kBridgeEnum}) {
      const char* name = engine == tg_hier::AuditEngine::kSharded ? "sharded" : "bridge_enum";
      tg_hier::SecurityReport scaled = tg_hier::CheckSecure(g, levels, 0, nullptr, engine);
      ASSERT_EQ(dense.secure, scaled.secure) << name << " trial " << trial;
      ASSERT_EQ(dense.violations.size(), scaled.violations.size()) << name << " trial " << trial;
      for (size_t i = 0; i < dense.violations.size(); ++i) {
        EXPECT_EQ(dense.violations[i].lower, scaled.violations[i].lower)
            << name << " trial " << trial;
        EXPECT_EQ(dense.violations[i].higher, scaled.violations[i].higher)
            << name << " trial " << trial;
        EXPECT_EQ(dense.violations[i].detail, scaled.violations[i].detail)
            << name << " trial " << trial;
      }
      auto scaled_ch = tg_hier::FindCrossLevelChannels(g, levels, 0, nullptr, engine);
      ASSERT_EQ(dense_ch.size(), scaled_ch.size()) << name << " trial " << trial;
      for (size_t i = 0; i < dense_ch.size(); ++i) {
        EXPECT_EQ(dense_ch[i].from, scaled_ch[i].from) << name << " trial " << trial;
        EXPECT_EQ(dense_ch[i].to, scaled_ch[i].to) << name << " trial " << trial;
        EXPECT_EQ(dense_ch[i].path, scaled_ch[i].path) << name << " trial " << trial;
      }
    }
  }
}

// ---- admission gate vs full re-audit (Theorem 5.5 differential) ----

// One random candidate rule: a legal enumerated rule most of the time (so
// the stream actually exercises accept/veto), raw garbage otherwise (so it
// exercises rejection too).
tg::RuleApplication RandomAdmissionRule(const ProtectionGraph& g, tg_util::Prng& prng) {
  if (!prng.NextBool(0.35)) {
    std::vector<tg::RuleApplication> legal = EnumerateDeJure(g);
    std::vector<tg::RuleApplication> de_facto = EnumerateDeFacto(g);
    legal.insert(legal.end(), de_facto.begin(), de_facto.end());
    if (!legal.empty()) {
      return legal[prng.NextBelow(legal.size())];
    }
  }
  const auto pick = [&] { return static_cast<VertexId>(prng.NextBelow(g.VertexCount())); };
  static constexpr Right kRights[] = {Right::kRead, Right::kWrite, Right::kTake,
                                      Right::kGrant};
  tg::RightSet d = tg::RightSet::Of({kRights[prng.NextBelow(4)]});
  switch (prng.NextBelow(5)) {
    case 0:
      return tg::RuleApplication::Take(pick(), pick(), pick(), d);
    case 1:
      return tg::RuleApplication::Grant(pick(), pick(), pick(), d);
    case 2:
      return tg::RuleApplication::Create(
          pick(), prng.NextBool(0.3) ? tg::VertexKind::kSubject : tg::VertexKind::kObject, d);
    case 3:
      return tg::RuleApplication::Remove(pick(), pick(), d);
    default:
      return tg::RuleApplication::Post(pick(), pick(), pick());
  }
}

// Connection-mode gate decisions cross-checked against from-scratch
// CheckSecure verdicts on the would-be graph, for both audit engines:
//
//  * kRejected  => CheckRule fails on the current graph (and vice versa:
//    any rule reaching the restriction check was CheckRule-legal);
//  * kVetoed    => applying the rule anyway yields a CheckSecure-insecure
//    graph (the connection veto is exact — Theorem 5.5 soundness);
//  * kAccepted on a CheckSecure-secure graph leaves it secure (Theorem 5.5
//    completeness: a legal step whose new edge completes no forbidden
//    connection cannot introduce a violation that was not already
//    derivable).
//
// Seeds alternate clean hierarchies and hierarchies with planted
// cross-level channels, so both the always-secure path and the
// veto-under-latent-insecurity path get real traffic.
TEST(AdmissionFuzzTest, ConnectionGateDecisionsMatchFullReaudit) {
  for (tg_hier::AuditEngine engine :
       {tg_hier::AuditEngine::kDense, tg_hier::AuditEngine::kSharded}) {
    tg_util::Prng prng(engine == tg_hier::AuditEngine::kDense ? 811001 : 811002);
    size_t decisions = 0;
    size_t accepted = 0, vetoed = 0, rejected = 0;
    for (int round = 0; decisions < 10000; ++round) {
      tg_sim::HierarchicalGraphOptions options;
      options.levels = 2 + round % 2;
      options.clusters_per_level = 1;
      options.subjects_per_cluster = 3;
      options.objects_per_cluster = 2;
      options.tg_chords_per_cluster = 1;
      options.planted_channels = (round % 2 == 1) ? 2 : 0;
      tg_sim::GeneratedHierarchy seed = tg_sim::HierarchicalGraph(options, prng);
      auto gate = tg_hier::AdmissionGate::Create(seed.graph, seed.levels, {});
      ASSERT_EQ(gate->mode(), tg_hier::AdmissionMode::kConnection);
      bool cur_secure =
          tg_hier::CheckSecure(gate->graph(), gate->levels(), 0, nullptr, engine).secure;
      for (int step = 0; step < 150 && decisions < 10000; ++step) {
        tg::RuleApplication rule = RandomAdmissionRule(gate->graph(), prng);
        const bool legal = tg::CheckRule(gate->graph(), rule).ok();
        // The would-be graph: the current graph with the rule force-applied.
        ProtectionGraph would_be = gate->graph();
        tg::RuleApplication forced = rule;
        if (legal) {
          ASSERT_TRUE(tg::ApplyRule(would_be, forced).ok());
        }
        tg_hier::AdmissionDecision d = gate->Admit(rule);
        ++decisions;
        switch (d.outcome) {
          case tg_hier::AdmissionOutcome::kRejected:
            ++rejected;
            ASSERT_FALSE(legal) << "engine " << static_cast<int>(engine) << " round "
                                << round << " step " << step << ": gate rejected a "
                                << "CheckRule-legal rule: " << d.rule << " -- " << d.reason;
            break;
          case tg_hier::AdmissionOutcome::kVetoed: {
            ++vetoed;
            ASSERT_TRUE(legal);
            tg_hier::SecurityReport report =
                tg_hier::CheckSecure(would_be, gate->levels(), 0, nullptr, engine);
            ASSERT_FALSE(report.secure)
                << "engine " << static_cast<int>(engine) << " round " << round << " step "
                << step << ": veto of " << d.rule << " (" << d.reason
                << ") but the would-be graph re-audits secure";
            break;
          }
          case tg_hier::AdmissionOutcome::kAccepted: {
            ++accepted;
            ASSERT_TRUE(legal);
            bool now_secure =
                tg_hier::CheckSecure(gate->graph(), gate->levels(), 0, nullptr, engine)
                    .secure;
            ASSERT_TRUE(now_secure || !cur_secure)
                << "engine " << static_cast<int>(engine) << " round " << round << " step "
                << step << ": accepted " << d.rule
                << " turned a secure graph insecure (missed veto)";
            cur_secure = now_secure;
            break;
          }
        }
      }
    }
    ASSERT_GE(decisions, 10000u);
    // The stream must actually exercise all three verdicts.
    EXPECT_GT(accepted, 0u);
    EXPECT_GT(vetoed, 0u);
    EXPECT_GT(rejected, 0u);
  }
}

// Edge-level (endpoint) gate decisions cross-checked against the
// Corollary 5.6 audit differential and against BishopRestrictionPolicy:
// a take/grant is vetoed iff the O(E) audit of the would-be graph reports
// more offending edges than the current graph's audit, and the gate's
// verdict on every legal rule matches the policy's Vet.  The stream is
// de jure only: de facto rules add *implicit* edges the whole-graph audit
// also covers, which would make the per-edge differential inexact (a
// vetoed explicit read-up over a pair already carrying a flagged implicit
// flow does not grow the edge count).  On a de-jure-only stream from a
// clean seed the equivalence is exact.
TEST(AdmissionFuzzTest, EdgeLevelGateMatchesCorollary56AuditDifferential) {
  tg_util::Prng prng(811003);
  size_t decisions = 0;
  size_t vetoed = 0;
  for (int round = 0; decisions < 10000; ++round) {
    tg_sim::HierarchicalGraphOptions options;
    options.levels = 2 + round % 2;
    options.clusters_per_level = 1;
    options.subjects_per_cluster = 3;
    options.objects_per_cluster = 2;
    options.tg_chords_per_cluster = 1;
    options.planted_channels = (round % 2 == 1) ? 2 : 0;
    tg_sim::GeneratedHierarchy seed = tg_sim::HierarchicalGraph(options, prng);
    tg_hier::AdmissionGate::Options gate_options;
    gate_options.mode = tg_hier::AdmissionMode::kEdgeLevel;
    auto gate = tg_hier::AdmissionGate::Create(seed.graph, seed.levels, gate_options);
    for (int step = 0; step < 150 && decisions < 10000; ++step) {
      tg::RuleApplication rule = RandomAdmissionRule(gate->graph(), prng);
      while (rule.kind != tg::RuleKind::kTake && rule.kind != tg::RuleKind::kGrant &&
             rule.kind != tg::RuleKind::kCreate && rule.kind != tg::RuleKind::kRemove) {
        rule = RandomAdmissionRule(gate->graph(), prng);
      }
      const bool legal = tg::CheckRule(gate->graph(), rule).ok();
      const bool is_transfer = rule.kind == tg::RuleKind::kTake ||
                               rule.kind == tg::RuleKind::kGrant;
      size_t audit_before =
          tg_hier::AuditBishopRestriction(gate->graph(), gate->levels()).size();
      size_t audit_after = audit_before;
      if (legal) {
        ProtectionGraph would_be = gate->graph();
        tg::RuleApplication forced = rule;
        ASSERT_TRUE(tg::ApplyRule(would_be, forced).ok());
        audit_after = tg_hier::AuditBishopRestriction(would_be, gate->levels()).size();
      }
      tg_hier::BishopRestrictionPolicy policy(gate->levels());
      bool policy_allows = legal && policy.Vet(gate->graph(), rule).ok();
      tg_hier::AdmissionDecision d = gate->Admit(rule);
      ++decisions;
      if (!legal) {
        ASSERT_EQ(d.outcome, tg_hier::AdmissionOutcome::kRejected) << d.rule;
        continue;
      }
      if (d.outcome == tg_hier::AdmissionOutcome::kVetoed) {
        ++vetoed;
        ASSERT_TRUE(is_transfer) << d.rule;
        ASSERT_GT(audit_after, audit_before)
            << "round " << round << " step " << step << ": endpoint veto of " << d.rule
            << " but the Corollary 5.6 audit of the would-be graph did not grow";
        ASSERT_FALSE(policy_allows) << d.rule;
      } else {
        ASSERT_EQ(d.outcome, tg_hier::AdmissionOutcome::kAccepted) << d.rule;
        ASSERT_EQ(audit_after, audit_before)
            << "round " << round << " step " << step << ": accepted " << d.rule
            << " added an edge the Corollary 5.6 audit flags";
        ASSERT_TRUE(policy_allows) << d.rule << " -- " << d.reason;
      }
    }
  }
  ASSERT_GE(decisions, 10000u);
  EXPECT_GT(vetoed, 0u);
}

TEST(StressTest, SaturationOnDenseRwClique) {
  // 14 subjects all reading each other: saturation must reach the full
  // clique of implicit edges and terminate.
  ProtectionGraph g;
  std::vector<VertexId> subjects;
  for (int i = 0; i < 14; ++i) {
    subjects.push_back(g.AddSubject());
  }
  for (VertexId a : subjects) {
    VertexId next = (a + 1) % static_cast<VertexId>(subjects.size());
    ASSERT_TRUE(g.AddExplicit(a, next, tg::kRead).ok());
  }
  ProtectionGraph saturated = tg_analysis::SaturateDeFacto(g);
  // Ring of reads among subjects: everyone ends up knowing everyone.
  for (VertexId a : subjects) {
    for (VertexId b : subjects) {
      if (a != b) {
        EXPECT_TRUE(tg_analysis::KnowEdgePresent(saturated, a, b));
      }
    }
  }
}

}  // namespace

// End-to-end tests of the command-line tools, driven as subprocesses.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#ifndef TG_TGSH_PATH
#define TG_TGSH_PATH ""
#endif
#ifndef TG_AUDIT_TOOL_PATH
#define TG_AUDIT_TOOL_PATH ""
#endif
#ifndef TG_CORPUS_DIR
#define TG_CORPUS_DIR "data"
#endif

// Runs a command, feeding `input` to stdin, returning captured stdout.
std::string RunWithInput(const std::string& command, const std::string& input) {
  std::string full = "printf '%s' \"$(cat <<'TG_EOF'\n" + input + "\nTG_EOF\n)\" | " +
                     command + " 2>&1";
  std::array<char, 4096> buffer;
  std::string output;
  FILE* pipe = popen(full.c_str(), "r");
  if (pipe == nullptr) {
    return "<popen failed>";
  }
  while (fgets(buffer.data(), static_cast<int>(buffer.size()), pipe) != nullptr) {
    output += buffer.data();
  }
  pclose(pipe);
  return output;
}

std::string RunCommand(const std::string& command) { return RunWithInput(command, ""); }

TEST(TgshCliTest, ScriptedSessionAnswersQueries) {
  std::string script =
      "subject a\n"
      "object b\n"
      "subject c\n"
      "edge a c t\n"
      "edge c b r\n"
      "share r a b\n"
      "islands\n"
      "quit\n";
  std::string out = RunWithInput(std::string(TG_TGSH_PATH) + " -", script);
  EXPECT_NE(out.find("can_share(r, a, b) = true"), std::string::npos) << out;
  EXPECT_NE(out.find("takes (r to b) from c"), std::string::npos) << out;
  EXPECT_NE(out.find("I1: a c"), std::string::npos) << out;
}

TEST(TgshCliTest, RejectsBadCommandsGracefully) {
  std::string out = RunWithInput(std::string(TG_TGSH_PATH) + " -",
                                 "frobnicate\nsubject a\nedge a ghost r\nquit\n");
  EXPECT_NE(out.find("unknown command"), std::string::npos) << out;
  EXPECT_NE(out.find("unknown vertex"), std::string::npos) << out;
}

TEST(TgshCliTest, SaturateAndKnowf) {
  std::string script =
      "subject x\n"
      "object m\n"
      "subject z\n"
      "edge x m r\n"
      "edge z m w\n"
      "knowf x z\n"
      "saturate\n"
      "show\n"
      "quit\n";
  std::string out = RunWithInput(std::string(TG_TGSH_PATH) + " -", script);
  EXPECT_NE(out.find("can_know_f(x, z) = true"), std::string::npos) << out;
  EXPECT_NE(out.find("new implicit edge"), std::string::npos) << out;
  EXPECT_NE(out.find("implicit x z r"), std::string::npos) << out;
}

TEST(TgshCliTest, KnowPrintsWitness) {
  std::string script =
      "subject x\n"
      "object o\n"
      "object y\n"
      "edge x o t\n"
      "edge o y r\n"
      "know x y\n"
      "quit\n";
  std::string out = RunWithInput(std::string(TG_TGSH_PATH) + " -", script);
  EXPECT_NE(out.find("can_know(x, y) = true"), std::string::npos) << out;
  EXPECT_NE(out.find("take"), std::string::npos) << out;  // witness listed
}

TEST(TgshCliTest, StatsReportsCacheHitsAndBfsWork) {
  // The second `know` for the same pair must be answered from the cache,
  // so `stats` reports a non-zero cache.hits alongside the BFS work the
  // first query did.
  std::string script =
      "subject a\n"
      "subject b\n"
      "edge a b r\n"
      "know a b\n"
      "know a b\n"
      "stats\n"
      "quit\n";
  std::string out = RunWithInput(std::string(TG_TGSH_PATH) + " -", script);
  EXPECT_EQ(out.find("cache.hits 0"), std::string::npos) << out;
  EXPECT_NE(out.find("cache.hits"), std::string::npos) << out;
  EXPECT_EQ(out.find("bfs.node_visits 0"), std::string::npos) << out;
  EXPECT_NE(out.find("bfs.node_visits"), std::string::npos) << out;
  EXPECT_NE(out.find("snapshot.builds"), std::string::npos) << out;
}

TEST(TgshCliTest, StatsResetZeroesAndTraceListsSpans) {
  std::string script =
      "subject a\n"
      "subject b\n"
      "edge a b r\n"
      "know a b\n"
      "trace\n"
      "stats reset\n"
      "stats\n"
      "quit\n";
  std::string out = RunWithInput(std::string(TG_TGSH_PATH) + " -", script);
  EXPECT_NE(out.find("product_bfs"), std::string::npos) << out;
  // After the reset, the registry renders with every counter at zero.
  EXPECT_NE(out.find("cache.misses 0"), std::string::npos) << out;
}

TEST(TgshCliTest, JournalListsMutationRecords) {
  // Three effective mutations plus one no-op: the journal shows the
  // effective records (with per-record epochs and resolved names) and the
  // no-op re-add leaves the epoch untouched.
  std::string script =
      "subject a\n"
      "object b\n"
      "edge a b r\n"
      "edge a b r\n"
      "journal\n"
      "journal 2\n"
      "quit\n";
  std::string out = RunWithInput(std::string(TG_TGSH_PATH) + " -", script);
  EXPECT_NE(out.find("epoch 3, 3 record(s) retained since epoch 0"), std::string::npos)
      << out;
  EXPECT_NE(out.find("e1 add-vertex a"), std::string::npos) << out;
  EXPECT_NE(out.find("e2 add-vertex b"), std::string::npos) << out;
  EXPECT_NE(out.find("e3 add-explicit a -> b [r]"), std::string::npos) << out;
  // journal 2 truncates to the last two records, dropping the first.
  size_t second = out.find("epoch 3, 3 record(s)", out.find("epoch 3, 3 record(s)") + 1);
  ASSERT_NE(second, std::string::npos) << out;
  EXPECT_EQ(out.find("e1 add-vertex a", second), std::string::npos) << out;
  EXPECT_NE(out.find("e3 add-explicit a -> b [r]", second), std::string::npos) << out;
}

TEST(TgshCliTest, StatsReportsIncrementalCounters) {
  // A know query builds the snapshot; the edge mutation afterwards is
  // patched through the overlay, so the incremental counters must be live.
  std::string script =
      "subject a\n"
      "subject b\n"
      "subject c\n"
      "edge a b r\n"
      "know a b\n"
      "edge b c r\n"
      "know a b\n"
      "stats\n"
      "quit\n";
  std::string out = RunWithInput(std::string(TG_TGSH_PATH) + " -", script);
  EXPECT_EQ(out.find("incremental.journal_records 0"), std::string::npos) << out;
  EXPECT_NE(out.find("incremental.journal_records"), std::string::npos) << out;
  EXPECT_NE(out.find("incremental.overlay_patches"), std::string::npos) << out;
}

TEST(TgshCliTest, ExplainPrintsProvenanceWithVerifiedWitness) {
  // A true can_know through a spy chain: the provenance record must carry
  // the verdict, the cache/snapshot source, the Theorem 3.2 chain, and a
  // replay-verified witness.
  std::string script =
      "subject x\n"
      "subject y\n"
      "object z\n"
      "edge x y r\n"
      "edge y z r\n"
      "explain know x z\n"
      "explain know x z\n"
      "quit\n";
  std::string out = RunWithInput(std::string(TG_TGSH_PATH) + " -", script);
  EXPECT_NE(out.find("provenance: can_know x z"), std::string::npos) << out;
  EXPECT_NE(out.find("verdict: true"), std::string::npos) << out;
  EXPECT_NE(out.find("snapshot: rebuilt"), std::string::npos) << out;
  // The repeat is answered from the memoized row.
  EXPECT_NE(out.find("snapshot: cached-row"), std::string::npos) << out;
  EXPECT_NE(out.find("tails_in_closure="), std::string::npos) << out;
  EXPECT_NE(out.find("replay VERIFIED"), std::string::npos) << out;
}

TEST(TgshCliTest, ProfileReportsPercentilesAndResets) {
  std::string script =
      "subject a\n"
      "subject b\n"
      "edge a b r\n"
      "know a b\n"
      "profile\n"
      "profile reset\n"
      "profile\n"
      "quit\n";
  std::string out = RunWithInput(std::string(TG_TGSH_PATH) + " -", script);
  EXPECT_NE(out.find("p50_us<="), std::string::npos) << out;
  EXPECT_NE(out.find("p99_us<="), std::string::npos) << out;
  EXPECT_NE(out.find("query"), std::string::npos) << out;
  EXPECT_NE(out.find("ok: span profile reset"), std::string::npos) << out;
  EXPECT_NE(out.find("(no spans recorded)"), std::string::npos) << out;
}

TEST(TgshCliTest, TraceExportWritesChromeTraceJson) {
  std::string path = ::testing::TempDir() + "/tgsh_trace_export.json";
  std::remove(path.c_str());
  std::string script =
      "subject a\n"
      "subject b\n"
      "edge a b r\n"
      "know a b\n"
      "trace export " + path + "\n"
      "quit\n";
  std::string out = RunWithInput(std::string(TG_TGSH_PATH) + " -", script);
  EXPECT_NE(out.find("-> " + path), std::string::npos) << out;
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace export did not create " << path;
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(content.str().find("\"ph\":\"X\""), std::string::npos);
  // tgsh `know` answers through the cache, so the query root is the
  // cache's knowable-row scope.
  EXPECT_NE(content.str().find("\"query:knowable\""), std::string::npos) << content.str();
  std::remove(path.c_str());
}

TEST(AuditToolCliTest, AnalyzesCorpusGraph) {
  std::string out = RunCommand(std::string(TG_AUDIT_TOOL_PATH) + " " + TG_CORPUS_DIR +
                        "/fig22_terms.tgg");
  EXPECT_NE(out.find("islands (3)"), std::string::npos) << out;
  EXPECT_NE(out.find("p, u"), std::string::npos) << out;
}

TEST(AuditToolCliTest, DesignerLevelsSurfaceViolations) {
  std::string out = RunCommand(std::string(TG_AUDIT_TOOL_PATH) + " " + TG_CORPUS_DIR +
                        "/org_chart.tgg --levels " + TG_CORPUS_DIR + "/org_chart.lvl");
  EXPECT_NE(out.find("designer levels: 3 levels"), std::string::npos) << out;
  EXPECT_NE(out.find("forbidden edges"), std::string::npos) << out;
  EXPECT_NE(out.find("secure against all conspiracies: NO"), std::string::npos) << out;
}

TEST(AuditToolCliTest, MetricsJsonDumpHasNonZeroEngineCounters) {
  std::string out = RunCommand(std::string(TG_AUDIT_TOOL_PATH) + " --demo --metrics-json -");
  // The demo audit runs knowable-set queries through the AnalysisCache and
  // then re-reads rows for the mutual-knowledge summary, so the dump must
  // show real hits and BFS work.
  size_t json_start = out.find("\n{\"");
  ASSERT_NE(json_start, std::string::npos) << out;
  std::string json = out.substr(json_start + 1);
  EXPECT_EQ(json.find("\"cache.hits\":0,"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache.hits\":"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"bfs.node_visits\":0,"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bfs.node_visits\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"snapshot.build_ns.count\":"), std::string::npos) << json;
}

TEST(AuditToolCliTest, TraceAndProvenanceExports) {
  std::string trace_path = ::testing::TempDir() + "/audit_trace.json";
  std::string prov_path = ::testing::TempDir() + "/audit_provenance.jsonl";
  std::remove(trace_path.c_str());
  std::remove(prov_path.c_str());
  std::string out = RunCommand(std::string(TG_AUDIT_TOOL_PATH) + " --demo --trace-json " +
                               trace_path + " --provenance-json " + prov_path);
  EXPECT_NE(out.find("provenance record(s)"), std::string::npos) << out;

  std::ifstream trace_in(trace_path);
  ASSERT_TRUE(trace_in.good()) << out;
  std::stringstream trace;
  trace << trace_in.rdbuf();
  EXPECT_NE(trace.str().find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.str().find("\"ph\":\"X\""), std::string::npos);

  // JSONL: every line is one provenance object for a can_know query.
  std::ifstream prov_in(prov_path);
  ASSERT_TRUE(prov_in.good()) << out;
  std::string line;
  size_t lines = 0;
  while (std::getline(prov_in, line)) {
    if (line.empty()) {
      continue;
    }
    ++lines;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"predicate\":\"can_know\""), std::string::npos) << line;
  }
  EXPECT_GT(lines, 0u);
  std::remove(trace_path.c_str());
  std::remove(prov_path.c_str());
}

TEST(AuditToolCliTest, MissingFileFails) {
  std::string out = RunCommand(std::string(TG_AUDIT_TOOL_PATH) + " /no/such/graph.tgg; echo rc=$?");
  EXPECT_NE(out.find("rc=1"), std::string::npos) << out;
}

}  // namespace

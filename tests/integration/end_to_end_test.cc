// End-to-end flows across the whole stack: build a classified system, run
// conspiracies through the reference monitor, serialize and reload, audit.

#include <gtest/gtest.h>

#include "src/take_grant.h"

namespace {

using tg::ProtectionGraph;
using tg::Right;
using tg::VertexId;

TEST(EndToEndTest, DocumentSystemLifecycle) {
  // Build a 3-level document system behind the Bishop restriction.
  tg_hier::LinearOptions options;
  options.levels = 3;
  options.subjects_per_level = 2;
  tg_hier::ClassifiedSystem system = tg_hier::LinearClassification(options);
  auto policy = std::make_shared<tg_hier::BishopRestrictionPolicy>(system.levels);
  tg_sim::ReferenceMonitor monitor(system.graph, policy);

  VertexId author = system.level_subjects[1][0];
  VertexId peer = system.level_subjects[1][1];
  VertexId low = system.level_subjects[0][0];

  // The author creates a working document at its own level.
  auto created = monitor.Submit(
      tg::RuleApplication::Create(author, tg::VertexKind::kObject, tg::kReadWrite, "draft"));
  ASSERT_TRUE(created.ok());
  VertexId draft = created->created;

  // Sharing with a same-level peer requires a grant edge; the peer gets rw.
  ASSERT_TRUE(monitor.engine().mutable_graph().AddExplicit(author, peer, tg::kGrant).ok());
  ASSERT_TRUE(
      monitor.Submit(tg::RuleApplication::Grant(author, peer, draft, tg::kReadWrite)).ok());
  EXPECT_TRUE(monitor.graph().HasExplicit(peer, draft, Right::kRead));

  // Same-level sharing keeps the graph fully secure.
  tg_hier::SecurityReport mid_report =
      tg_hier::CheckSecure(monitor.graph(), policy->assignment());
  EXPECT_TRUE(mid_report.secure)
      << (mid_report.violations.empty() ? "" : mid_report.violations[0].detail);

  // A cross-level grant edge is a latent channel: Theorem 5.2's analysis
  // now (rightly) reports the graph insecure against unrestricted rules...
  ASSERT_TRUE(monitor.engine().mutable_graph().AddExplicit(author, low, tg::kGrant).ok());
  EXPECT_FALSE(tg_hier::CheckSecure(monitor.graph(), policy->assignment(), 1).secure);

  // ...but the monitored system vetoes the exploit: granting the draft's
  // read right to the low subject would complete a read-up edge.
  auto leak = monitor.Submit(tg::RuleApplication::Grant(author, low, draft, tg::kRead));
  EXPECT_FALSE(leak.ok());
  EXPECT_EQ(leak.status().code(), tg_util::StatusCode::kPolicyViolation);
  EXPECT_EQ(monitor.vetoed_count(), 1u);

  // No forbidden information edge ever materialized.
  EXPECT_TRUE(tg_hier::AuditBishopRestriction(
                  tg_analysis::SaturateDeFacto(monitor.graph()), policy->assignment())
                  .empty());
}

TEST(EndToEndTest, SerializeAnalyzeReload) {
  tg_sim::Fig22 fig = tg_sim::MakeFig22();
  std::string text = tg::PrintGraph(fig.graph);
  auto reloaded = tg::ParseGraph(text);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(*reloaded == fig.graph);
  // Analyses agree across the round trip.
  for (VertexId x = 0; x < fig.graph.VertexCount(); ++x) {
    for (VertexId y = 0; y < fig.graph.VertexCount(); ++y) {
      EXPECT_EQ(tg_analysis::CanKnow(fig.graph, x, y), tg_analysis::CanKnow(*reloaded, x, y));
      EXPECT_EQ(tg_analysis::CanShare(fig.graph, Right::kRead, x, y),
                tg_analysis::CanShare(*reloaded, Right::kRead, x, y));
    }
  }
  // DOT export renders every vertex.
  std::string dot = tg::ToDot(fig.graph);
  for (VertexId v = 0; v < fig.graph.VertexCount(); ++v) {
    EXPECT_NE(dot.find("\"" + fig.graph.NameOf(v) + "\""), std::string::npos);
  }
}

TEST(EndToEndTest, ConspiracySweepAcrossPolicies) {
  // The same planted-channel hierarchy under four policies: unrestricted
  // breaches; all three restrictions hold the line.
  tg_util::Prng prng(246810);
  tg_sim::RandomHierarchyOptions options;
  options.levels = 2;
  options.subjects_per_level = 2;
  options.objects_per_level = 1;
  options.planted_channels = 2;
  tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
  VertexId low = h.level_subjects[0][0];
  VertexId high = h.level_subjects[1][0];

  auto attack = [&](std::shared_ptr<tg::RulePolicy> policy, uint64_t seed) {
    tg_sim::ReferenceMonitor monitor(h.graph, std::move(policy));
    tg_sim::AttackOptions attack_options;
    attack_options.strategy = tg_sim::AdversaryStrategy::kGreedy;
    attack_options.max_steps = 150;
    tg_util::Prng attack_prng(seed);
    return tg_sim::RunConspiracy(monitor, h.levels, low, high, attack_options, attack_prng);
  };

  tg_sim::AttackOutcome unrestricted = attack(std::make_shared<tg::AllowAllPolicy>(), 1);
  tg_sim::AttackOutcome bishop =
      attack(std::make_shared<tg_hier::BishopRestrictionPolicy>(h.levels), 1);

  // Unrestricted rules leak across the planted channels; the Bishop
  // restriction holds even though bridges exist (its soundness only needs
  // the *edges* of the initial graph to be clean, not bridge-freedom).
  // Lemmas 5.3/5.4 promise soundness for the other two restrictions only on
  // bridge-free graphs, so they are not asserted here.
  EXPECT_TRUE(unrestricted.breached);
  EXPECT_FALSE(bishop.breached);
}

TEST(EndToEndTest, WitnessesSurviveSerialization) {
  tg_sim::Fig21 fig = tg_sim::MakeFig21();
  auto witness =
      tg_analysis::BuildCanShareWitness(fig.graph, Right::kRead, fig.lo, fig.secret);
  ASSERT_TRUE(witness.has_value());
  auto reloaded = tg::ParseGraph(tg::PrintGraph(fig.graph));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(witness->VerifyAddsExplicit(*reloaded, fig.lo, fig.secret, Right::kRead).ok());
}

}  // namespace

#include "src/hierarchy/blp.h"

#include <gtest/gtest.h>

#include "src/hierarchy/classification.h"
#include "src/hierarchy/restrictions.h"
#include "src/sim/generator.h"
#include "src/util/prng.h"

namespace tg_hier {
namespace {

using tg::ProtectionGraph;
using tg::VertexId;

LevelAssignment TwoLevels(const ProtectionGraph& g, VertexId lo, VertexId hi) {
  LevelAssignment levels(g.VertexCount(), 2);
  levels.Assign(lo, 0);
  levels.Assign(hi, 1);
  levels.DeclareHigher(1, 0);
  EXPECT_TRUE(levels.Finalize());
  return levels;
}

TEST(BlpTest, SimpleSecurityFlagsReadUp) {
  ProtectionGraph g;
  VertexId lo = g.AddSubject("lo");
  VertexId hi = g.AddObject("hidoc");
  ASSERT_TRUE(g.AddExplicit(lo, hi, tg::kRead).ok());
  LevelAssignment levels = TwoLevels(g, lo, hi);
  auto violations = SimpleSecurityViolations(g, levels);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].src, lo);
  EXPECT_TRUE(StarPropertyViolations(g, levels).empty());
  EXPECT_FALSE(BlpSecure(g, levels));
}

TEST(BlpTest, StarPropertyFlagsWriteDown) {
  ProtectionGraph g;
  VertexId lo = g.AddObject("lodoc");
  VertexId hi = g.AddSubject("hi");
  ASSERT_TRUE(g.AddExplicit(hi, lo, tg::kWrite).ok());
  LevelAssignment levels = TwoLevels(g, lo, hi);
  auto violations = StarPropertyViolations(g, levels);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].src, hi);
  EXPECT_TRUE(SimpleSecurityViolations(g, levels).empty());
}

TEST(BlpTest, ReadDownAndWriteUpAllowed) {
  ProtectionGraph g;
  VertexId lo = g.AddObject("lodoc");
  VertexId hi = g.AddSubject("hi");
  VertexId lo2 = g.AddSubject("lo2");
  VertexId hidoc = g.AddObject("hidoc");
  ASSERT_TRUE(g.AddExplicit(hi, lo, tg::kRead).ok());     // read down
  ASSERT_TRUE(g.AddExplicit(lo2, hidoc, tg::kWrite).ok());  // write (append) up
  LevelAssignment levels(g.VertexCount(), 2);
  levels.Assign(lo, 0);
  levels.Assign(lo2, 0);
  levels.Assign(hi, 1);
  levels.Assign(hidoc, 1);
  levels.DeclareHigher(1, 0);
  ASSERT_TRUE(levels.Finalize());
  EXPECT_TRUE(BlpSecure(g, levels));
}

TEST(BlpTest, ImplicitEdgesCount) {
  ProtectionGraph g;
  VertexId lo = g.AddSubject("lo");
  VertexId hi = g.AddSubject("hi");
  ASSERT_TRUE(g.AddImplicit(lo, hi, tg::kRead).ok());
  LevelAssignment levels = TwoLevels(g, lo, hi);
  EXPECT_EQ(SimpleSecurityViolations(g, levels).size(), 1u);
}

TEST(BlpTest, ClassificationBuildersAreBlpSecure) {
  ClassifiedSystem linear = LinearClassification(LinearOptions{});
  EXPECT_TRUE(BlpSecure(linear.graph, linear.levels));
  ClassifiedSystem military = MilitaryClassification(MilitaryOptions{});
  EXPECT_TRUE(BlpSecure(military.graph, military.levels));
}

// Section 6's claim: the Bishop restriction audit and the BLP properties
// coincide — an edge violates restriction (a)/(b) iff it violates simple
// security / the *-property.
TEST(BlpTest, AuditEquivalentToBlpOnRandomGraphs) {
  tg_util::Prng prng(6868);
  for (int trial = 0; trial < 10; ++trial) {
    tg_sim::RandomHierarchyOptions options;
    options.levels = 3;
    options.subjects_per_level = 2;
    options.objects_per_level = 2;
    options.planted_channels = trial % 3;
    tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
    // Plant some violating r/w edges too.
    if (trial % 2 == 0 && h.level_subjects.size() >= 2) {
      (void)h.graph.AddExplicit(h.level_subjects[0][0], h.level_subjects.back()[0],
                                tg::kRead);
    }
    size_t blp_count = SimpleSecurityViolations(h.graph, h.levels).size() +
                       StarPropertyViolations(h.graph, h.levels).size();
    size_t audit_count = AuditBishopRestriction(h.graph, h.levels).size();
    // An edge carrying both a read-up and a write-down (impossible for one
    // ordered pair under a strict order) would count twice in BLP; with a
    // strict hierarchy the counts agree edge-for-edge.
    EXPECT_EQ(blp_count, audit_count) << "trial " << trial;
    EXPECT_EQ(blp_count == 0, BlpSecure(h.graph, h.levels));
  }
}

}  // namespace
}  // namespace tg_hier

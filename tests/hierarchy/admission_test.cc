#include "src/hierarchy/admission.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/hierarchy/restrictions.h"
#include "src/hierarchy/secure.h"
#include "src/sim/generator.h"
#include "src/sim/monitor.h"
#include "src/tg/rules.h"
#include "src/util/prng.h"

namespace tg_hier {
namespace {

using tg::ProtectionGraph;
using tg::Right;
using tg::RuleApplication;
using tg::VertexId;

// Two levels, one exploitable object and one inert one.
//
//   hi (L1) -t-> lo (L0)          hi -r-> hidoc (L1)   hi -g-> lo
//   lo (L0) -r-> lodoc (L0)       lo -g-> hi           lo -w-> lodoc
//   hi -g-> inert (L0, object)    hi -g-> exposed (L1, object)
//   lo -t-> exposed               hi -r-> hidoc
//
// floor/ceil after rebuild: hi {1,1}; lo {0,1} (hi t-reaches lo);
// exposed {0,1} (lo and hi t-reach it); inert, docs: none.
struct GateFixture {
  ProtectionGraph g;
  LevelAssignment levels;
  VertexId hi, lo, hidoc, lodoc, inert, exposed;

  // `with_grant_down` adds hi -g-> lo.  Note the fixture is never
  // CheckSecure-secure: lo -t-> exposed plus hi -g-> exposed is a latent
  // channel (hi can grant its r on hidoc to exposed, then lo takes it), and
  // CheckSecure closes over every derivable graph.  It *is* edge-clean under
  // the Corollary 5.6 endpoint audit when built without the grant-down.
  explicit GateFixture(bool with_grant_down = true) {
    hi = g.AddSubject("hi");
    lo = g.AddSubject("lo");
    hidoc = g.AddObject("hidoc");
    lodoc = g.AddObject("lodoc");
    inert = g.AddObject("inert");
    exposed = g.AddObject("exposed");
    EXPECT_TRUE(g.AddExplicit(hi, lo, tg::kTake).ok());
    EXPECT_TRUE(g.AddExplicit(hi, hidoc, tg::kRead).ok());
    if (with_grant_down) {
      EXPECT_TRUE(g.AddExplicit(hi, lo, tg::kGrant).ok());
    }
    EXPECT_TRUE(g.AddExplicit(hi, inert, tg::kGrant).ok());
    EXPECT_TRUE(g.AddExplicit(hi, exposed, tg::kGrant).ok());
    EXPECT_TRUE(g.AddExplicit(lo, lodoc, tg::RightSet::Of({Right::kRead, Right::kWrite})).ok());
    EXPECT_TRUE(g.AddExplicit(lo, hi, tg::kGrant).ok());
    EXPECT_TRUE(g.AddExplicit(lo, exposed, tg::kTake).ok());
    levels = LevelAssignment(g.VertexCount(), 2);
    levels.Assign(hi, 1);
    levels.Assign(lo, 0);
    levels.Assign(hidoc, 1);
    levels.Assign(lodoc, 0);
    levels.Assign(inert, 0);
    levels.Assign(exposed, 1);
    levels.DeclareHigher(1, 0);
    EXPECT_TRUE(levels.Finalize());
  }

  std::unique_ptr<AdmissionGate> Gate(AdmissionGate::Options options = {}) {
    return AdmissionGate::Create(g, levels, options);
  }
};

TEST(AdmissionGateTest, ExposureRanksAfterRebuild) {
  GateFixture f;
  auto gate = f.Gate();
  ASSERT_EQ(gate->mode(), AdmissionMode::kConnection);
  const ExposureState& state = gate->exposure();
  EXPECT_EQ(state.floor_rank[f.hi], 1u);
  EXPECT_EQ(state.ceil_rank_plus1[f.hi], 2u);
  EXPECT_EQ(state.floor_rank[f.lo], 0u);
  EXPECT_EQ(state.ceil_rank_plus1[f.lo], 2u);  // hi t-reaches lo
  EXPECT_EQ(state.floor_rank[f.exposed], 0u);  // lo t-reaches exposed
  EXPECT_FALSE(state.HasFloor(f.inert));
  EXPECT_FALSE(state.HasCeil(f.lodoc));
}

TEST(AdmissionGateTest, AcceptsReadDownGrant) {
  GateFixture f;
  auto gate = f.Gate();
  // lo grants (r on lodoc) to hi: new edge hi -r-> lodoc, a read-down.
  auto d = gate->Admit(RuleApplication::Grant(f.lo, f.hi, f.lodoc, tg::kRead));
  EXPECT_EQ(d.outcome, AdmissionOutcome::kAccepted);
  EXPECT_TRUE(gate->graph().HasExplicit(f.hi, f.lodoc, Right::kRead));
  EXPECT_EQ(gate->accepted_count(), 1u);
}

TEST(AdmissionGateTest, VetoesReadUpInBothModes) {
  for (AdmissionMode mode : {AdmissionMode::kConnection, AdmissionMode::kEdgeLevel}) {
    GateFixture f;
    AdmissionGate::Options options;
    options.mode = mode;
    auto gate = f.Gate(options);
    // hi grants (r on hidoc) to lo: new edge lo -r-> hidoc, a read-up.
    auto d = gate->Admit(RuleApplication::Grant(f.hi, f.lo, f.hidoc, tg::kRead));
    EXPECT_EQ(d.outcome, AdmissionOutcome::kVetoed) << AdmissionModeName(mode);
    EXPECT_FALSE(gate->graph().HasExplicit(f.lo, f.hidoc, Right::kRead));
    EXPECT_EQ(gate->vetoed_count(), 1u);
    EXPECT_EQ(d.status.code(), tg_util::StatusCode::kPolicyViolation);
  }
}

TEST(AdmissionGateTest, VetoesWriteDownInBothModes) {
  for (AdmissionMode mode : {AdmissionMode::kConnection, AdmissionMode::kEdgeLevel}) {
    GateFixture f;
    AdmissionGate::Options options;
    options.mode = mode;
    auto gate = f.Gate(options);
    // hi takes (w on lodoc) from lo: new edge hi -w-> lodoc, a write-down.
    auto d = gate->Admit(RuleApplication::Take(f.hi, f.lo, f.lodoc, tg::kWrite));
    EXPECT_EQ(d.outcome, AdmissionOutcome::kVetoed) << AdmissionModeName(mode);
  }
}

// The completeness sharpening of the connection check: a read-up edge
// whose source no subject can take from completes no connection.  The
// endpoint check refuses it; the connection check admits it, and on a
// genuinely secure seed (no t edges at all, so no latent channels) the
// would-be graph stays CheckSecure-secure.
TEST(AdmissionGateTest, ConnectionModeAdmitsInertObjectGrant) {
  ProtectionGraph g;
  VertexId hi = g.AddSubject("hi");
  VertexId lo = g.AddSubject("lo");
  VertexId hidoc = g.AddObject("hidoc");
  VertexId lodoc = g.AddObject("lodoc");
  VertexId inert = g.AddObject("inert");
  ASSERT_TRUE(g.AddExplicit(hi, hidoc, tg::kRead).ok());
  ASSERT_TRUE(g.AddExplicit(hi, inert, tg::kGrant).ok());
  ASSERT_TRUE(g.AddExplicit(lo, lodoc, tg::RightSet::Of({Right::kRead, Right::kWrite})).ok());
  LevelAssignment levels(g.VertexCount(), 2);
  levels.Assign(hi, 1);
  levels.Assign(lo, 0);
  levels.Assign(hidoc, 1);
  levels.Assign(lodoc, 0);
  levels.Assign(inert, 0);
  levels.DeclareHigher(1, 0);
  ASSERT_TRUE(levels.Finalize());
  ASSERT_TRUE(CheckSecure(g, levels).secure);

  RuleApplication rule = RuleApplication::Grant(hi, inert, hidoc, tg::kRead);

  AdmissionGate::Options edge;
  edge.mode = AdmissionMode::kEdgeLevel;
  auto edge_gate = AdmissionGate::Create(g, levels, edge);
  EXPECT_EQ(edge_gate->Admit(rule).outcome, AdmissionOutcome::kVetoed);

  auto conn_gate = AdmissionGate::Create(g, levels, {});
  auto d = conn_gate->Admit(rule);
  EXPECT_EQ(d.outcome, AdmissionOutcome::kAccepted);
  SecurityReport report = CheckSecure(conn_gate->graph(), conn_gate->levels());
  EXPECT_TRUE(report.secure);
}

// The soundness sharpening: a same-level edge on an object a *lower*
// subject can take from completes a read-up connection.  The fixture's
// lo -t-> exposed is a latent channel — the graph is edge-clean under the
// Corollary 5.6 audit, but the completing grant realizes the leak.  The
// endpoint check waves the grant through (both endpoints sit at L1); the
// connection check vetoes it at the completing step.
TEST(AdmissionGateTest, ConnectionModeVetoesExposedObjectGrant) {
  GateFixture f(/*with_grant_down=*/false);
  ASSERT_TRUE(AuditBishopRestriction(f.g, f.levels).empty());  // edge-clean
  // hi grants (r on hidoc) to exposed: new edge exposed -r-> hidoc.  Both
  // endpoints sit at L1, but lo -t-> exposed gives lo the terminal span
  // lo t̄* exposed r̄ hidoc.
  RuleApplication rule = RuleApplication::Grant(f.hi, f.exposed, f.hidoc, tg::kRead);

  AdmissionGate::Options edge;
  edge.mode = AdmissionMode::kEdgeLevel;
  auto edge_gate = f.Gate(edge);
  EXPECT_EQ(edge_gate->Admit(rule).outcome, AdmissionOutcome::kAccepted);
  // Still edge-clean after the accept — the endpoint audit cannot see the
  // leak the edge just realized, but CheckSecure can.
  EXPECT_TRUE(AuditBishopRestriction(edge_gate->graph(), edge_gate->levels()).empty());
  SecurityReport after_edge = CheckSecure(edge_gate->graph(), edge_gate->levels());
  EXPECT_FALSE(after_edge.secure);

  auto conn_gate = f.Gate();
  auto d = conn_gate->Admit(rule);
  EXPECT_EQ(d.outcome, AdmissionOutcome::kVetoed);
  EXPECT_EQ(d.src_floor, 0u);
  EXPECT_EQ(d.dst_rank, 1u);
  EXPECT_FALSE(conn_gate->graph().HasExplicit(f.exposed, f.hidoc, Right::kRead));
}

TEST(AdmissionGateTest, CreateInheritsLevelThroughGate) {
  GateFixture f;
  auto gate = f.Gate();
  auto d = gate->Admit(RuleApplication::Create(
      f.lo, tg::VertexKind::kObject, tg::RightSet::Of({Right::kRead, Right::kWrite}),
      "scratchpad"));
  ASSERT_EQ(d.outcome, AdmissionOutcome::kAccepted);
  VertexId created = d.applied.created;
  ASSERT_NE(created, tg::kInvalidVertex);
  EXPECT_EQ(gate->levels().LevelOf(created), 0u);
  // lo grants (r on scratchpad) to hi: read-down, accepted.
  EXPECT_EQ(gate->Admit(RuleApplication::Grant(f.lo, f.hi, created, tg::kRead)).outcome,
            AdmissionOutcome::kAccepted);
}

TEST(AdmissionGateTest, CreateThenGrantUpIsVetoedAtTheGrant) {
  GateFixture f;
  auto gate = f.Gate();
  // hi creates a secret (inherits L1), then tries to grant lo read on it.
  auto d = gate->Admit(RuleApplication::Create(
      f.hi, tg::VertexKind::kObject, tg::kRead, "secret"));
  ASSERT_EQ(d.outcome, AdmissionOutcome::kAccepted);
  VertexId secret = d.applied.created;
  EXPECT_EQ(gate->levels().LevelOf(secret), 1u);
  auto grant = gate->Admit(RuleApplication::Grant(f.hi, f.lo, secret, tg::kRead));
  EXPECT_EQ(grant.outcome, AdmissionOutcome::kVetoed);
}

TEST(AdmissionGateTest, NonLinearHierarchyFallsBackToEdgeLevel) {
  GateFixture f;
  LevelAssignment partial(f.g.VertexCount(), 3);
  partial.Assign(f.hi, 1);
  partial.Assign(f.lo, 0);
  partial.DeclareHigher(1, 0);  // level 2 incomparable to both
  ASSERT_TRUE(partial.Finalize());
  auto gate = AdmissionGate::Create(f.g, partial, {});
  EXPECT_EQ(gate->mode(), AdmissionMode::kEdgeLevel);
  EXPECT_TRUE(gate->mode_fell_back());
}

TEST(AdmissionGateTest, TxnCommitGroupAppliesAtomically) {
  GateFixture f;
  auto gate = f.Gate();
  uint64_t base_epoch = gate->graph().epoch();
  uint64_t txn = gate->Begin();
  EXPECT_NE(txn, 0u);
  auto d1 = gate->Submit(RuleApplication::Create(f.lo, tg::VertexKind::kObject,
                                                 tg::RightSet::Of({Right::kRead, Right::kWrite}),
                                                 "pad"));
  ASSERT_EQ(d1.outcome, AdmissionOutcome::kAccepted);
  VertexId pad = d1.applied.created;
  auto d2 = gate->Submit(RuleApplication::Grant(f.lo, f.hi, pad, tg::kRead));
  ASSERT_EQ(d2.outcome, AdmissionOutcome::kAccepted);
  // Staged, not published: the real graph has not moved.
  EXPECT_EQ(gate->graph().epoch(), base_epoch);
  EXPECT_EQ(gate->graph().VertexCount(), f.g.VertexCount());
  EXPECT_EQ(gate->staged_count(), 2u);

  auto result = gate->Commit();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->committed);
  EXPECT_EQ(result->applied, 2u);
  EXPECT_EQ(result->first_epoch, base_epoch);
  EXPECT_GT(result->last_epoch, base_epoch);
  EXPECT_FALSE(gate->in_txn());
  EXPECT_EQ(gate->graph().VertexCount(), f.g.VertexCount() + 1);
  EXPECT_TRUE(gate->graph().HasExplicit(f.hi, pad, Right::kRead));
  EXPECT_EQ(gate->levels().LevelOf(pad), 0u);
  EXPECT_EQ(gate->txns_committed(), 1u);
}

TEST(AdmissionGateTest, MidBatchVetoRollsBackBitIdentically) {
  GateFixture f;
  auto gate = f.Gate();
  // Warm the published state, then snapshot everything a rollback must
  // restore bit-identically.
  ASSERT_EQ(gate->Admit(RuleApplication::Grant(f.lo, f.hi, f.lodoc, tg::kRead)).outcome,
            AdmissionOutcome::kAccepted);
  ProtectionGraph pre_graph = gate->graph();
  uint64_t pre_epoch = gate->graph().epoch();
  size_t pre_journal = gate->graph().journal().size();
  ExposureState pre_state = gate->exposure();
  size_t pre_vertices = gate->graph().VertexCount();

  gate->Begin();
  auto d1 = gate->Submit(RuleApplication::Create(f.hi, tg::VertexKind::kSubject,
                                                 tg::RightSet::Of({Right::kTake, Right::kGrant}),
                                                 "spawn"));
  ASSERT_EQ(d1.outcome, AdmissionOutcome::kAccepted);
  // Mid-batch veto: hi grants lo read on hidoc.  abort_txn_on_veto (the
  // default) must throw the whole batch away.
  auto d2 = gate->Submit(RuleApplication::Grant(f.hi, f.lo, f.hidoc, tg::kRead));
  EXPECT_EQ(d2.outcome, AdmissionOutcome::kVetoed);
  EXPECT_FALSE(gate->in_txn());
  EXPECT_EQ(gate->txns_aborted(), 1u);

  // Bit-identical rollback: graph (values + epoch + journal), exposure
  // state, and level assignment (no drift from the scratch create).
  EXPECT_TRUE(gate->graph() == pre_graph);
  EXPECT_EQ(gate->graph().epoch(), pre_epoch);
  EXPECT_EQ(gate->graph().journal().size(), pre_journal);
  EXPECT_EQ(gate->graph().VertexCount(), pre_vertices);
  EXPECT_TRUE(gate->exposure() == pre_state);
  EXPECT_EQ(gate->levels().LevelOf(pre_vertices), kNoLevel);
}

TEST(AdmissionGateTest, MidBatchRejectionAlsoAborts) {
  GateFixture f;
  auto gate = f.Gate();
  ProtectionGraph pre_graph = gate->graph();
  gate->Begin();
  ASSERT_EQ(gate->Submit(RuleApplication::Grant(f.lo, f.hi, f.lodoc, tg::kRead)).outcome,
            AdmissionOutcome::kAccepted);
  // Precondition failure: lo holds no t over hi.
  auto d = gate->Submit(RuleApplication::Take(f.lo, f.hi, f.hidoc, tg::kRead));
  EXPECT_EQ(d.outcome, AdmissionOutcome::kRejected);
  EXPECT_FALSE(gate->in_txn());
  EXPECT_TRUE(gate->graph() == pre_graph);
}

TEST(AdmissionGateTest, VetoSurvivableBatchesWhenConfigured) {
  GateFixture f;
  AdmissionGate::Options options;
  options.abort_txn_on_veto = false;
  auto gate = f.Gate(options);
  gate->Begin();
  ASSERT_EQ(gate->Submit(RuleApplication::Grant(f.lo, f.hi, f.lodoc, tg::kRead)).outcome,
            AdmissionOutcome::kAccepted);
  EXPECT_EQ(gate->Submit(RuleApplication::Grant(f.hi, f.lo, f.hidoc, tg::kRead)).outcome,
            AdmissionOutcome::kVetoed);
  EXPECT_TRUE(gate->in_txn());  // batch survives, offending rule dropped
  auto result = gate->Commit();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->committed);
  EXPECT_EQ(result->applied, 1u);
  EXPECT_TRUE(gate->graph().HasExplicit(f.hi, f.lodoc, Right::kRead));
  EXPECT_FALSE(gate->graph().HasExplicit(f.lo, f.hidoc, Right::kRead));
}

TEST(AdmissionGateTest, CommitRefusesAfterOutOfBandMutation) {
  GateFixture f;
  auto gate = f.Gate();
  gate->Begin();
  ASSERT_EQ(gate->Submit(RuleApplication::Grant(f.lo, f.hi, f.lodoc, tg::kRead)).outcome,
            AdmissionOutcome::kAccepted);
  // An unmediated writer advances the published epoch under the txn.
  ASSERT_TRUE(gate->engine()->mutable_graph().AddExplicit(f.lo, f.inert, tg::kRead).ok());
  auto result = gate->Commit();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->committed);
  EXPECT_NE(result->reason.find("conflict"), std::string::npos);
  EXPECT_FALSE(gate->in_txn());
  // The staged grant never reached the published graph.
  EXPECT_FALSE(gate->graph().HasExplicit(f.hi, f.lodoc, Right::kRead));
}

TEST(AdmissionGateTest, PinnedReaderSeesNoPartialWrites) {
  GateFixture f;
  auto gate = f.Gate();
  // An MVCC-style reader pins the pre-txn epoch by value.
  ProtectionGraph pinned = gate->graph();
  gate->Begin();
  ASSERT_EQ(gate->Submit(RuleApplication::Grant(f.lo, f.hi, f.lodoc, tg::kRead)).outcome,
            AdmissionOutcome::kAccepted);
  ASSERT_EQ(gate->Submit(RuleApplication::Create(f.lo, tg::VertexKind::kObject,
                                                 tg::kRead, "tmp")).outcome,
            AdmissionOutcome::kAccepted);
  // While the txn is open the published graph is indistinguishable from
  // the reader's pin: nothing partial ever shows.
  EXPECT_TRUE(gate->graph() == pinned);
  ASSERT_TRUE(gate->Commit().ok());
  EXPECT_FALSE(gate->graph() == pinned);
  EXPECT_EQ(pinned.VertexCount(), f.g.VertexCount());  // the pin never moves
}

TEST(AdmissionGateTest, AdmitInsideTxnIsRejected) {
  GateFixture f;
  auto gate = f.Gate();
  gate->Begin();
  auto d = gate->Admit(RuleApplication::Grant(f.lo, f.hi, f.lodoc, tg::kRead));
  EXPECT_EQ(d.outcome, AdmissionOutcome::kRejected);
  EXPECT_TRUE(gate->in_txn());
  gate->Abort();
}

TEST(AdmissionGateTest, CommitWithoutTxnFails) {
  GateFixture f;
  auto gate = f.Gate();
  EXPECT_FALSE(gate->Commit().ok());
}

TEST(AdmissionGateTest, EmptyTxnCommitsTrivially) {
  GateFixture f;
  auto gate = f.Gate();
  uint64_t epoch = gate->graph().epoch();
  gate->Begin();
  auto result = gate->Commit();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->committed);
  EXPECT_EQ(result->applied, 0u);
  EXPECT_EQ(gate->graph().epoch(), epoch);
}

TEST(AdmissionGateTest, DecisionLogIsBounded) {
  GateFixture f;
  AdmissionGate::Options options;
  options.decision_log_limit = 3;
  auto gate = f.Gate(options);
  for (int i = 0; i < 8; ++i) {
    gate->Admit(RuleApplication::Grant(f.lo, f.hi, f.lodoc, tg::kRead));
  }
  EXPECT_EQ(gate->decisions().size(), 3u);
  EXPECT_EQ(gate->decisions().back().sequence, 7u);
}

// The incremental footprint repair must stay bit-identical to a from-
// scratch rebuild across a random mediated workload, including removes of
// t rights (the rebuild fallback) and creates inside transactions.
TEST(AdmissionGateTest, ExposureRepairMatchesRebuildUnderChurn) {
  tg_util::Prng prng(20260808);
  tg_sim::HierarchicalGraphOptions options;
  options.levels = 3;
  options.clusters_per_level = 2;
  options.subjects_per_cluster = 4;
  options.objects_per_cluster = 2;
  options.planted_channels = 1;
  tg_sim::GeneratedHierarchy h = tg_sim::HierarchicalGraph(options, prng);
  auto gate = AdmissionGate::Create(h.graph, h.levels, {});
  ASSERT_EQ(gate->mode(), AdmissionMode::kConnection);

  size_t checked = 0;
  for (int step = 0; step < 300; ++step) {
    const ProtectionGraph& g = gate->graph();
    VertexId x = static_cast<VertexId>(prng.NextBelow(g.VertexCount()));
    if (!g.IsSubject(x)) continue;
    RuleApplication rule;
    switch (prng.NextBelow(4)) {
      case 0: {
        // take something through a random out-edge
        std::vector<tg::Edge> outs;
        g.ForEachOutEdge(x, [&](const tg::Edge& e) { outs.push_back(e); });
        if (outs.empty()) continue;
        const tg::Edge& via = outs[prng.NextBelow(outs.size())];
        if (!via.explicit_rights.Has(Right::kTake)) continue;
        std::vector<tg::Edge> sources;
        g.ForEachOutEdge(via.dst, [&](const tg::Edge& e) { sources.push_back(e); });
        if (sources.empty()) continue;
        const tg::Edge& src = sources[prng.NextBelow(sources.size())];
        if (src.explicit_rights.empty()) continue;
        rule = RuleApplication::Take(x, via.dst, src.dst, src.explicit_rights);
        break;
      }
      case 1:
        rule = RuleApplication::Create(
            x, prng.NextBelow(2) ? tg::VertexKind::kSubject : tg::VertexKind::kObject,
            tg::RightSet::Of({Right::kRead, Right::kTake}));
        break;
      case 2: {
        std::vector<tg::Edge> outs;
        g.ForEachOutEdge(x, [&](const tg::Edge& e) { outs.push_back(e); });
        if (outs.empty()) continue;
        const tg::Edge& e = outs[prng.NextBelow(outs.size())];
        if (e.explicit_rights.empty()) continue;
        rule = RuleApplication::Remove(x, e.dst, e.explicit_rights);
        break;
      }
      default: {
        std::vector<tg::Edge> outs;
        g.ForEachOutEdge(x, [&](const tg::Edge& e) { outs.push_back(e); });
        if (outs.empty()) continue;
        const tg::Edge& to = outs[prng.NextBelow(outs.size())];
        if (!to.explicit_rights.Has(Right::kGrant)) continue;
        std::vector<tg::Edge> of;
        g.ForEachOutEdge(x, [&](const tg::Edge& e) { of.push_back(e); });
        const tg::Edge& z = of[prng.NextBelow(of.size())];
        if (z.explicit_rights.empty()) continue;
        rule = RuleApplication::Grant(x, to.dst, z.dst, z.explicit_rights);
        break;
      }
    }
    gate->Admit(rule);
    // Differential: incremental state vs a from-scratch rebuild.
    ExposureState incremental = gate->exposure();
    auto fresh = AdmissionGate::Create(gate->graph(), gate->levels(), {});
    ASSERT_TRUE(incremental == fresh->exposure()) << "diverged at step " << step;
    ++checked;
  }
  EXPECT_GT(checked, 50u);
  EXPECT_GT(gate->accepted_count(), 0u);
}

// Gated monitor: the analysis cache keys on the published epoch, so an
// aborted transaction invalidates nothing — the next query is a pure hit.
TEST(AdmissionGateTest, MonitorCacheSurvivesAbortedTxn) {
  GateFixture f;
  tg_sim::ReferenceMonitor monitor(f.g, f.levels, {});
  ASSERT_TRUE(monitor.gated());
  bool before = monitor.CanKnow(f.lo, f.lodoc);
  size_t hits_before = monitor.analysis_cache().hits();
  monitor.BeginTxn();
  ASSERT_TRUE(monitor.Submit(RuleApplication::Grant(f.lo, f.hi, f.lodoc, tg::kRead)).ok());
  monitor.AbortTxn();
  EXPECT_EQ(monitor.CanKnow(f.lo, f.lodoc), before);
  EXPECT_GT(monitor.analysis_cache().hits(), hits_before);  // same-epoch hit

  // And a committed txn publishes for real: Submit outside a txn works too.
  ASSERT_TRUE(monitor.Submit(RuleApplication::Grant(f.lo, f.hi, f.lodoc, tg::kRead)).ok());
  EXPECT_TRUE(monitor.graph().HasExplicit(f.hi, f.lodoc, Right::kRead));
  EXPECT_EQ(monitor.allowed_count(), 2u);
}

TEST(AdmissionGateTest, MonitorTxnCommitPublishes) {
  GateFixture f;
  tg_sim::ReferenceMonitor monitor(f.g, f.levels, {});
  uint64_t txn = monitor.BeginTxn();
  EXPECT_NE(txn, 0u);
  ASSERT_TRUE(monitor.Submit(RuleApplication::Grant(f.lo, f.hi, f.lodoc, tg::kRead)).ok());
  EXPECT_FALSE(monitor.graph().HasExplicit(f.hi, f.lodoc, Right::kRead));
  auto result = monitor.CommitTxn();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->committed);
  EXPECT_TRUE(monitor.graph().HasExplicit(f.hi, f.lodoc, Right::kRead));
  // A vetoed submit shows in the audit trail with the gate's reason.
  EXPECT_FALSE(monitor.Submit(RuleApplication::Grant(f.hi, f.lo, f.hidoc, tg::kRead)).ok());
  EXPECT_EQ(monitor.vetoed_count(), 1u);
  EXPECT_EQ(monitor.audit_log().back().outcome, tg_sim::AuditOutcome::kVetoed);
}

}  // namespace
}  // namespace tg_hier

#include "src/hierarchy/composite_policy.h"

#include <gtest/gtest.h>

#include "src/hierarchy/restrictions.h"

namespace tg_hier {
namespace {

using tg::ProtectionGraph;
using tg::Right;
using tg::RuleApplication;
using tg::VertexId;

struct CompositeFixture {
  ProtectionGraph g;
  LevelAssignment levels;
  VertexId hi, lo, doc;

  CompositeFixture() {
    hi = g.AddSubject("hi");
    lo = g.AddSubject("lo");
    doc = g.AddObject("doc");
    EXPECT_TRUE(g.AddExplicit(hi, lo, tg::kTake).ok());
    EXPECT_TRUE(g.AddExplicit(
        lo, doc, tg::RightSet::Of({Right::kWrite, Right::kRead, Right::kExecute})).ok());
    levels = LevelAssignment(g.VertexCount(), 2);
    levels.Assign(hi, 1);
    levels.Assign(lo, 0);
    levels.Assign(doc, 0);
    levels.DeclareHigher(1, 0);
    EXPECT_TRUE(levels.Finalize());
  }
};

TEST(CompositePolicyTest, VetoWhenAnyMemberVetoes) {
  CompositeFixture f;
  CompositePolicy policy({std::make_shared<BishopRestrictionPolicy>(f.levels),
                          std::make_shared<ApplicationRestrictionPolicy>(
                              f.levels, tg::RightSet(Right::kExecute))});
  // Bishop alone allows the execute take; the application member blocks it.
  RuleApplication take_e =
      RuleApplication::Take(f.hi, f.lo, f.doc, tg::RightSet(Right::kExecute));
  EXPECT_FALSE(policy.Vet(f.g, take_e).ok());
  // The application member alone allows the write take; Bishop blocks it
  // (write-down).
  RuleApplication take_w = RuleApplication::Take(f.hi, f.lo, f.doc, tg::kWrite);
  EXPECT_FALSE(policy.Vet(f.g, take_w).ok());
  // Read-down passes both.
  RuleApplication take_r = RuleApplication::Take(f.hi, f.lo, f.doc, tg::kRead);
  EXPECT_TRUE(policy.Vet(f.g, take_r).ok());
}

TEST(CompositePolicyTest, EmptyCompositeAllowsAll) {
  CompositeFixture f;
  CompositePolicy policy({});
  EXPECT_EQ(policy.Name(), "allow-all");
  EXPECT_TRUE(policy.Vet(f.g, RuleApplication::Take(f.hi, f.lo, f.doc, tg::kWrite)).ok());
}

TEST(CompositePolicyTest, NameJoinsMembers) {
  CompositeFixture f;
  CompositePolicy policy({std::make_shared<BishopRestrictionPolicy>(f.levels),
                          std::make_shared<DirectionRestrictionPolicy>(f.levels)});
  EXPECT_EQ(policy.Name(), "bishop-restriction&direction-restriction");
}

TEST(CompositePolicyTest, NotifyFansOutToMembers) {
  CompositeFixture f;
  auto bishop = std::make_shared<BishopRestrictionPolicy>(f.levels);
  auto direction = std::make_shared<DirectionRestrictionPolicy>(f.levels);
  auto composite = std::make_shared<CompositePolicy>(
      std::vector<std::shared_ptr<tg::RulePolicy>>{bishop, direction});
  tg::RuleEngine engine(f.g, composite);
  auto created = engine.Apply(
      RuleApplication::Create(f.hi, tg::VertexKind::kObject, tg::kReadWrite));
  ASSERT_TRUE(created.ok());
  // Both members learned the created vertex's level.
  EXPECT_EQ(bishop->assignment().LevelOf(created->created), f.levels.LevelOf(f.hi));
  EXPECT_EQ(direction->assignment().LevelOf(created->created), f.levels.LevelOf(f.hi));
}

}  // namespace
}  // namespace tg_hier

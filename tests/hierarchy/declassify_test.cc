#include "src/hierarchy/declassify.h"

#include <gtest/gtest.h>

#include "src/hierarchy/classification.h"
#include "src/hierarchy/restrictions.h"

namespace tg_hier {
namespace {

using tg::ProtectionGraph;
using tg::VertexId;

struct DeclassFixture {
  ClassifiedSystem system;
  VertexId doc;      // level-1 (middle) document
  VertexId writer;   // level-1 subject with rw on it
  VertexId high;     // level-2 subject reading down

  DeclassFixture() {
    LinearOptions options;
    options.levels = 3;
    options.subjects_per_level = 2;
    system = LinearClassification(options);
    doc = system.level_documents[1];
    writer = system.level_subjects[1][0];
    high = system.level_subjects[2][0];
  }
};

TEST(DeclassifyTest, LoweringFlagsHigherWriters) {
  DeclassFixture f;
  // Lower the middle doc to level 0: its level-1 writers become
  // higher-level writers of a low object -- write-downs.
  ReclassificationReport report =
      AnalyzeReclassification(f.system.graph, f.system.levels, f.doc, 0);
  EXPECT_FALSE(report.safe);
  EXPECT_FALSE(report.violating_edges.empty());
  // Every violating edge touches the document.
  for (const tg::Edge& e : report.violating_edges) {
    EXPECT_TRUE(e.src == f.doc || e.dst == f.doc);
  }
  // The level-1 writers' w edges are revocable.
  EXPECT_FALSE(report.revocable_writes.empty());
}

TEST(DeclassifyTest, LoweringAlsoFlagsIrrevocableKnowledge) {
  DeclassFixture f;
  ReclassificationReport report =
      AnalyzeReclassification(f.system.graph, f.system.levels, f.doc, 0);
  // Level-1 subjects can know the doc today; after lowering they'd sit
  // strictly above it... they are not *below* it, so the knowledge hazard
  // list concerns level-0 only.  Level-0 subjects cannot know the doc in a
  // clean hierarchy, so the hazards are the edges, not the knowers.
  EXPECT_TRUE(report.irrevocable_knowers.empty());
}

TEST(DeclassifyTest, RaisingFlagsPriorReaders) {
  DeclassFixture f;
  // Raise the middle doc to level 2: level-1 subjects (who can know it
  // today) end up strictly below it -- the paper's private-copy hazard.
  ReclassificationReport report =
      AnalyzeReclassification(f.system.graph, f.system.levels, f.doc, 2);
  EXPECT_FALSE(report.safe);
  EXPECT_FALSE(report.irrevocable_knowers.empty());
  bool writer_flagged = false;
  for (VertexId v : report.irrevocable_knowers) {
    EXPECT_TRUE(f.system.levels.Higher(2, f.system.levels.LevelOf(v)));
    writer_flagged |= (v == f.writer);
  }
  EXPECT_TRUE(writer_flagged);
  // And the level-1 writers' rw edges become read-up/write-... the r edge
  // from a now-lower subject is a read-up: edge hazards too.
  EXPECT_FALSE(report.violating_edges.empty());
}

TEST(DeclassifyTest, NoOpMoveIsSafe) {
  DeclassFixture f;
  ReclassificationReport report =
      AnalyzeReclassification(f.system.graph, f.system.levels, f.doc, 1);
  EXPECT_TRUE(report.safe);
  EXPECT_TRUE(report.violating_edges.empty());
  EXPECT_TRUE(report.irrevocable_knowers.empty());
}

TEST(DeclassifyTest, FreshObjectLowersSafely) {
  // A document nobody writes can be lowered: create a high read-only
  // archive and lower it.
  DeclassFixture f;
  ProtectionGraph& g = f.system.graph;
  VertexId archive = g.AddObject("archive");
  ASSERT_TRUE(g.AddExplicit(f.high, archive, tg::kRead).ok());
  LevelAssignment levels = f.system.levels;
  levels.Assign(archive, 2);
  ReclassificationReport report = AnalyzeReclassification(g, levels, archive, 0);
  // high reading the now-low archive is read-down: fine; nobody writes it.
  EXPECT_TRUE(report.safe) << report.violating_edges.size() << " edges, "
                           << report.irrevocable_knowers.size() << " knowers";
}

TEST(DeclassifyTest, RevocationProtocolClearsWriteDowns) {
  DeclassFixture f;
  ProtectionGraph g = f.system.graph;
  ReclassificationReport after = RevokeAndReanalyze(g, f.system.levels, f.doc, 0);
  // After removing the writers' w edges, no write-down remains...
  for (const tg::Edge& e : after.violating_edges) {
    EXPECT_FALSE(e.explicit_rights.Has(tg::Right::kWrite) && g.IsSubject(e.src))
        << "revocable write survived revocation";
  }
  // ...and in this clean hierarchy the move becomes entirely safe.
  EXPECT_TRUE(after.safe);
  // The writers really lost their w (but kept r).
  EXPECT_FALSE(g.HasExplicit(f.writer, f.doc, tg::Right::kWrite));
  EXPECT_TRUE(g.HasExplicit(f.writer, f.doc, tg::Right::kRead));
}

TEST(DeclassifyTest, ImplicitContaminationIsNotRevocable) {
  // If a higher subject's write access is only implicit (derived flow), the
  // remove rule cannot revoke it; the protocol must report failure.
  ProtectionGraph g;
  VertexId hi = g.AddSubject("hi");
  VertexId doc = g.AddObject("doc");
  ASSERT_TRUE(g.AddImplicit(hi, doc, tg::kWrite).ok());
  LevelAssignment levels(g.VertexCount(), 2);
  levels.Assign(hi, 1);
  levels.Assign(doc, 1);
  levels.DeclareHigher(1, 0);
  ASSERT_TRUE(levels.Finalize());
  ReclassificationReport after = RevokeAndReanalyze(g, levels, doc, 0);
  EXPECT_FALSE(after.safe);
  EXPECT_TRUE(after.revocable_writes.empty());
  ASSERT_EQ(after.violating_edges.size(), 1u);
  EXPECT_TRUE(after.violating_edges[0].implicit_rights.Has(tg::Right::kWrite));
}

}  // namespace
}  // namespace tg_hier

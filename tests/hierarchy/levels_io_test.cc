#include "src/hierarchy/levels_io.h"

#include <gtest/gtest.h>

#include "src/hierarchy/classification.h"

namespace tg_hier {
namespace {

using tg::ProtectionGraph;
using tg::VertexId;

ProtectionGraph SmallGraph() {
  ProtectionGraph g;
  g.AddSubject("alice");
  g.AddSubject("bob");
  g.AddObject("doc");
  return g;
}

TEST(LevelsIoTest, ParsesBasicDocument) {
  ProtectionGraph g = SmallGraph();
  auto result = ParseLevels(R"(
# a two-level system
level public
level secret
higher secret public
assign alice secret
assign doc public
)",
                            g);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const LevelAssignment& levels = *result;
  EXPECT_EQ(levels.LevelCount(), 2u);
  EXPECT_EQ(levels.LevelName(0), "public");
  EXPECT_EQ(levels.LevelName(1), "secret");
  EXPECT_TRUE(levels.Higher(1, 0));
  EXPECT_EQ(levels.LevelOf(g.FindVertex("alice")), 1u);
  EXPECT_EQ(levels.LevelOf(g.FindVertex("doc")), 0u);
  EXPECT_FALSE(levels.IsAssigned(g.FindVertex("bob")));
}

TEST(LevelsIoTest, TransitiveClosureOnLoad) {
  ProtectionGraph g = SmallGraph();
  auto result =
      ParseLevels("level a\nlevel b\nlevel c\nhigher c b\nhigher b a\n", g);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Higher(2, 0));
}

TEST(LevelsIoTest, ErrorsCarryLineNumbers) {
  ProtectionGraph g = SmallGraph();
  auto result = ParseLevels("level a\nassign ghost a\n", g);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(result.status().message().find("ghost"), std::string::npos);
}

TEST(LevelsIoTest, UnknownLevelRejected) {
  ProtectionGraph g = SmallGraph();
  EXPECT_FALSE(ParseLevels("assign alice nowhere\n", g).ok());
  EXPECT_FALSE(ParseLevels("level a\nhigher a nowhere\n", g).ok());
}

TEST(LevelsIoTest, CycleRejected) {
  ProtectionGraph g = SmallGraph();
  auto result = ParseLevels("level a\nlevel b\nhigher a b\nhigher b a\n", g);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("cycle"), std::string::npos);
}

TEST(LevelsIoTest, SelfHigherRejected) {
  ProtectionGraph g = SmallGraph();
  EXPECT_FALSE(ParseLevels("level a\nhigher a a\n", g).ok());
}

TEST(LevelsIoTest, DuplicateLevelRejected) {
  ProtectionGraph g = SmallGraph();
  EXPECT_FALSE(ParseLevels("level a\nlevel a\n", g).ok());
}

TEST(LevelsIoTest, HigherMayPrecedeLevelDeclaration) {
  // Statements are wired after all declarations, so order is free.
  ProtectionGraph g = SmallGraph();
  auto result = ParseLevels("higher b a\nlevel a\nlevel b\n", g);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Higher(1, 0));
}

TEST(LevelsIoTest, RoundTripThroughPrint) {
  ClassifiedSystem system = MilitaryClassification(MilitaryOptions{});
  std::string text = PrintLevels(system.levels, system.graph);
  auto reparsed = ParseLevels(text, system.graph);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->LevelCount(), system.levels.LevelCount());
  for (VertexId v = 0; v < system.graph.VertexCount(); ++v) {
    EXPECT_EQ(reparsed->LevelOf(v), system.levels.LevelOf(v)) << system.graph.NameOf(v);
  }
  for (LevelId a = 0; a < system.levels.LevelCount(); ++a) {
    for (LevelId b = 0; b < system.levels.LevelCount(); ++b) {
      EXPECT_EQ(reparsed->Higher(a, b), system.levels.Higher(a, b));
    }
  }
}

TEST(LevelsIoTest, LoadMissingFileFails) {
  ProtectionGraph g = SmallGraph();
  auto result = LoadLevelsFile("/no/such/file.lvl", g);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), tg_util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace tg_hier

#include "src/hierarchy/restrictions.h"

#include <gtest/gtest.h>

#include "src/analysis/oracle.h"
#include "src/hierarchy/classification.h"
#include "src/hierarchy/secure.h"
#include "src/sim/generator.h"
#include "src/tg/rule_engine.h"
#include "src/util/prng.h"

namespace tg_hier {
namespace {

using tg::ProtectionGraph;
using tg::Right;
using tg::RuleApplication;
using tg::VertexId;

// Two-level fixture modelled on Figure 5.1: high-level hi holds t over
// low-level mid, which holds {w, e} over the low document and r over the
// low subject.  The initial graph is audit-clean; violations only arise
// from rule applications that pull rights across the boundary.
struct TwoLevel {
  ProtectionGraph g;
  LevelAssignment levels;
  VertexId hi, mid, lodoc, losub;

  TwoLevel() : levels() {
    hi = g.AddSubject("hi");
    mid = g.AddSubject("mid");
    lodoc = g.AddObject("lodoc");
    losub = g.AddSubject("losub");
    EXPECT_TRUE(g.AddExplicit(hi, mid, tg::kTake).ok());
    EXPECT_TRUE(
        g.AddExplicit(mid, lodoc, tg::RightSet::Of({Right::kWrite, Right::kExecute})).ok());
    EXPECT_TRUE(g.AddExplicit(mid, losub, tg::kRead).ok());
    levels = LevelAssignment(g.VertexCount(), 2);
    levels.Assign(hi, 1);
    levels.Assign(mid, 0);
    levels.Assign(lodoc, 0);
    levels.Assign(losub, 0);
    levels.DeclareHigher(1, 0);
    EXPECT_TRUE(levels.Finalize());
  }
};

TEST(BishopRestrictionTest, BlocksWriteDown) {
  TwoLevel f;
  BishopRestrictionPolicy policy(f.levels);
  // hi takes (w to lodoc) from mid: adds hi -w-> lodoc, a write-down.
  RuleApplication rule = RuleApplication::Take(f.hi, f.mid, f.lodoc, tg::kWrite);
  ASSERT_TRUE(CheckRule(f.g, rule).ok());
  EXPECT_FALSE(policy.Vet(f.g, rule).ok());
}

TEST(BishopRestrictionTest, AllowsInertRightsAcrossLevels) {
  TwoLevel f;
  BishopRestrictionPolicy policy(f.levels);
  // Figure 5.1's point: the execute right still crosses.
  RuleApplication rule =
      RuleApplication::Take(f.hi, f.mid, f.lodoc, tg::RightSet(Right::kExecute));
  ASSERT_TRUE(CheckRule(f.g, rule).ok());
  EXPECT_TRUE(policy.Vet(f.g, rule).ok());
}

TEST(BishopRestrictionTest, AllowsReadDown) {
  TwoLevel f;
  BishopRestrictionPolicy policy(f.levels);
  // Reading down is legal (the incompleteness of Lemma 5.4's restriction).
  RuleApplication rule = RuleApplication::Take(f.hi, f.mid, f.losub, tg::kRead);
  ASSERT_TRUE(CheckRule(f.g, rule).ok());
  EXPECT_TRUE(policy.Vet(f.g, rule).ok());
}

TEST(BishopRestrictionTest, BlocksReadUp) {
  // lo -t-> hi2, hi2 -r-> hidoc (both high): lo taking r would read up.
  ProtectionGraph g;
  VertexId lo = g.AddSubject("lo");
  VertexId hi2 = g.AddSubject("hi2");
  VertexId hidoc = g.AddObject("hidoc");
  ASSERT_TRUE(g.AddExplicit(lo, hi2, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(hi2, hidoc, tg::kRead).ok());
  LevelAssignment levels(g.VertexCount(), 2);
  levels.Assign(lo, 0);
  levels.Assign(hi2, 1);
  levels.Assign(hidoc, 1);
  levels.DeclareHigher(1, 0);
  ASSERT_TRUE(levels.Finalize());
  BishopRestrictionPolicy policy(levels);
  RuleApplication rule = RuleApplication::Take(lo, hi2, hidoc, tg::kRead);
  ASSERT_TRUE(CheckRule(g, rule).ok());
  auto status = policy.Vet(g, rule);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("restriction a"), std::string::npos);
}

TEST(BishopRestrictionTest, GrantEffectChecked) {
  // hi grants (w to lodoc) to hi2 -- fine (both high); granting to losub's
  // level... grant's added edge originates at the recipient.
  ProtectionGraph g;
  VertexId hi = g.AddSubject("hi");
  VertexId losub = g.AddSubject("losub");
  VertexId lodoc = g.AddObject("lodoc");
  ASSERT_TRUE(g.AddExplicit(hi, losub, tg::kGrant).ok());
  ASSERT_TRUE(g.AddExplicit(hi, lodoc, tg::kReadWrite).ok());
  LevelAssignment levels(g.VertexCount(), 2);
  levels.Assign(hi, 1);
  levels.Assign(losub, 0);
  levels.Assign(lodoc, 0);
  levels.DeclareHigher(1, 0);
  ASSERT_TRUE(levels.Finalize());
  BishopRestrictionPolicy policy(levels);
  // losub -w-> lodoc: same level, fine.
  RuleApplication grant_w = RuleApplication::Grant(hi, losub, lodoc, tg::kWrite);
  EXPECT_TRUE(policy.Vet(g, grant_w).ok());
}

TEST(BishopRestrictionTest, RemoveAndDeFactoAlwaysPass) {
  TwoLevel f;
  BishopRestrictionPolicy policy(f.levels);
  EXPECT_TRUE(policy.Vet(f.g, RuleApplication::Remove(f.mid, f.lodoc, tg::kWrite)).ok());
  EXPECT_TRUE(policy.Vet(f.g, RuleApplication::Post(f.hi, f.lodoc, f.mid)).ok());
}

TEST(BishopRestrictionTest, CreatedVertexInheritsCreatorLevel) {
  TwoLevel f;
  auto policy = std::make_shared<BishopRestrictionPolicy>(f.levels);
  tg::RuleEngine engine(f.g, policy);
  auto created = engine.Apply(RuleApplication::Create(f.hi, tg::VertexKind::kObject,
                                                      tg::kReadWrite));
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(policy->assignment().LevelOf(created->created), f.levels.LevelOf(f.hi));
}

// Create-then-grant sequences crossing levels: a created vertex's
// inherited level must gate follow-up transfers exactly as a statically
// assigned vertex would.
TEST(BishopRestrictionTest, CreateThenGrantDownVetoedAtTheGrant) {
  ProtectionGraph g;
  VertexId hi = g.AddSubject("hi");
  VertexId lo = g.AddSubject("lo");
  ASSERT_TRUE(g.AddExplicit(hi, lo, tg::kGrant).ok());
  LevelAssignment levels(g.VertexCount(), 2);
  levels.Assign(hi, 1);
  levels.Assign(lo, 0);
  levels.DeclareHigher(1, 0);
  ASSERT_TRUE(levels.Finalize());
  auto policy = std::make_shared<BishopRestrictionPolicy>(levels);
  tg::RuleEngine engine(g, policy);
  // hi creates a private doc: it inherits hi's level.
  auto created = engine.Apply(RuleApplication::Create(hi, tg::VertexKind::kObject,
                                                      tg::kReadWrite));
  ASSERT_TRUE(created.ok());
  VertexId doc = created->created;
  ASSERT_EQ(policy->assignment().LevelOf(doc), levels.LevelOf(hi));
  // Granting read on it down to lo would add lo -r-> doc, a read-up: veto.
  auto grant_r = engine.Apply(RuleApplication::Grant(hi, lo, doc, tg::kRead));
  EXPECT_FALSE(grant_r.ok());
  EXPECT_EQ(grant_r.status().code(), tg_util::StatusCode::kPolicyViolation);
  EXPECT_FALSE(engine.graph().HasExplicit(lo, doc, Right::kRead));
  // Granting write down is a write-up edge (lo -w-> doc): allowed.
  EXPECT_TRUE(engine.Apply(RuleApplication::Grant(hi, lo, doc, tg::kWrite)).ok());
  EXPECT_TRUE(engine.graph().HasExplicit(lo, doc, Right::kWrite));
}

TEST(BishopRestrictionTest, CreateThenGrantUpAllowsReadDown) {
  ProtectionGraph g;
  VertexId hi = g.AddSubject("hi");
  VertexId lo = g.AddSubject("lo");
  ASSERT_TRUE(g.AddExplicit(lo, hi, tg::kGrant).ok());
  LevelAssignment levels(g.VertexCount(), 2);
  levels.Assign(hi, 1);
  levels.Assign(lo, 0);
  levels.DeclareHigher(1, 0);
  ASSERT_TRUE(levels.Finalize());
  auto policy = std::make_shared<BishopRestrictionPolicy>(levels);
  tg::RuleEngine engine(g, policy);
  // lo creates a doc at its own level, then shares it up.
  auto created = engine.Apply(RuleApplication::Create(lo, tg::VertexKind::kObject,
                                                      tg::kReadWrite));
  ASSERT_TRUE(created.ok());
  VertexId doc = created->created;
  ASSERT_EQ(policy->assignment().LevelOf(doc), levels.LevelOf(lo));
  // hi -r-> doc is a read-down: allowed.
  EXPECT_TRUE(engine.Apply(RuleApplication::Grant(lo, hi, doc, tg::kRead)).ok());
  EXPECT_TRUE(engine.graph().HasExplicit(hi, doc, Right::kRead));
  // hi -w-> doc is a write-down: vetoed.
  auto grant_w = engine.Apply(RuleApplication::Grant(lo, hi, doc, tg::kWrite));
  EXPECT_FALSE(grant_w.ok());
  EXPECT_FALSE(engine.graph().HasExplicit(hi, doc, Right::kWrite));
}

TEST(BishopRestrictionTest, ChainedCreatesInheritTransitively) {
  ProtectionGraph g;
  VertexId hi = g.AddSubject("hi");
  VertexId lo = g.AddSubject("lo");
  ASSERT_TRUE(g.AddExplicit(hi, lo, tg::kGrant).ok());
  LevelAssignment levels(g.VertexCount(), 2);
  levels.Assign(hi, 1);
  levels.Assign(lo, 0);
  levels.DeclareHigher(1, 0);
  ASSERT_TRUE(levels.Finalize());
  auto policy = std::make_shared<BishopRestrictionPolicy>(levels);
  tg::RuleEngine engine(g, policy);
  // hi creates a subject, which creates an object: both land at hi's level,
  // and the second-generation vertex is just as protected as the first.
  auto mid = engine.Apply(RuleApplication::Create(hi, tg::VertexKind::kSubject,
                                                  tg::kTakeGrant));
  ASSERT_TRUE(mid.ok());
  ASSERT_EQ(policy->assignment().LevelOf(mid->created), levels.LevelOf(hi));
  auto leaf = engine.Apply(RuleApplication::Create(mid->created, tg::VertexKind::kObject,
                                                   tg::kReadWrite));
  ASSERT_TRUE(leaf.ok());
  EXPECT_EQ(policy->assignment().LevelOf(leaf->created), levels.LevelOf(hi));
  // Pulling read on the grandchild down to lo is still a read-up: hi first
  // takes r from its child, then the grant down to lo must fail.
  ASSERT_TRUE(engine.Apply(RuleApplication::Take(hi, mid->created, leaf->created,
                                                 tg::kRead)).ok());
  auto grant_r =
      engine.Apply(RuleApplication::Grant(hi, lo, leaf->created, tg::kRead));
  EXPECT_FALSE(grant_r.ok());
  EXPECT_FALSE(engine.graph().HasExplicit(lo, leaf->created, Right::kRead));
}

TEST(BishopRestrictionTest, UnassignedCreatorLeavesCreatedUnconstrained) {
  ProtectionGraph g;
  VertexId out = g.AddSubject("outsider");  // not in the hierarchy
  VertexId lo = g.AddSubject("lo");
  ASSERT_TRUE(g.AddExplicit(out, lo, tg::kGrant).ok());
  LevelAssignment levels(g.VertexCount(), 2);
  levels.Assign(lo, 0);
  levels.DeclareHigher(1, 0);
  ASSERT_TRUE(levels.Finalize());
  auto policy = std::make_shared<BishopRestrictionPolicy>(levels);
  tg::RuleEngine engine(g, policy);
  auto created = engine.Apply(RuleApplication::Create(out, tg::VertexKind::kObject,
                                                      tg::kReadWrite));
  ASSERT_TRUE(created.ok());
  // No drift: the created vertex stays unassigned...
  EXPECT_FALSE(policy->assignment().IsAssigned(created->created));
  // ...and transfers touching it are unconstrained (no comparable pair).
  EXPECT_TRUE(
      engine.Apply(RuleApplication::Grant(out, lo, created->created, tg::kRead)).ok());
  EXPECT_TRUE(engine.graph().HasExplicit(lo, created->created, Right::kRead));
}

TEST(ViolatesKernelTest, ExactShapes) {
  LevelAssignment levels(2, 2);
  levels.Assign(0, 0);  // low
  levels.Assign(1, 1);  // high
  levels.DeclareHigher(1, 0);
  ASSERT_TRUE(levels.Finalize());
  // (a) read up.
  EXPECT_TRUE(ViolatesBishopRestriction(levels, 0, 1, tg::kRead));
  // (b) write down.
  EXPECT_TRUE(ViolatesBishopRestriction(levels, 1, 0, tg::kWrite));
  // Allowed shapes.
  EXPECT_FALSE(ViolatesBishopRestriction(levels, 1, 0, tg::kRead));       // read down
  EXPECT_FALSE(ViolatesBishopRestriction(levels, 0, 1, tg::kWrite));      // write up
  EXPECT_FALSE(ViolatesBishopRestriction(levels, 0, 1, tg::kTakeGrant));  // authority
  EXPECT_FALSE(ViolatesBishopRestriction(
      levels, 1, 0, tg::RightSet(Right::kExecute)));  // inert
}

TEST(AuditTest, CleanFixturePassesAudit) {
  TwoLevel f;
  EXPECT_TRUE(AuditBishopRestriction(f.g, f.levels).empty());
}

TEST(AuditTest, FlagsWriteDownAndReadUp) {
  ProtectionGraph g;
  VertexId lo = g.AddSubject("lo");
  VertexId hi = g.AddSubject("hi");
  ASSERT_TRUE(g.AddExplicit(lo, hi, tg::kRead).ok());   // read up
  ASSERT_TRUE(g.AddExplicit(hi, lo, tg::kWrite).ok());  // write down
  ASSERT_TRUE(g.AddExplicit(hi, lo, tg::kRead).ok());   // read down: fine
  LevelAssignment levels(g.VertexCount(), 2);
  levels.Assign(lo, 0);
  levels.Assign(hi, 1);
  levels.DeclareHigher(1, 0);
  ASSERT_TRUE(levels.Finalize());
  auto offending = AuditBishopRestriction(g, levels);
  EXPECT_EQ(offending.size(), 2u);
}

TEST(DirectionRestrictionTest, BlocksUpwardEnablingEdge) {
  TwoLevel f;
  // losub -t-> hi would be an upward enabling edge for losub's takes.
  ASSERT_TRUE(f.g.AddExplicit(f.losub, f.hi, tg::kTake).ok());
  ASSERT_TRUE(f.g.AddExplicit(f.hi, f.lodoc, tg::RightSet(Right::kExecute)).ok());
  DirectionRestrictionPolicy policy(f.levels);
  RuleApplication up =
      RuleApplication::Take(f.losub, f.hi, f.lodoc, tg::RightSet(Right::kExecute));
  ASSERT_TRUE(CheckRule(f.g, up).ok());
  EXPECT_FALSE(policy.Vet(f.g, up).ok());
  // Downward / same-level enabling edges pass.
  RuleApplication down = RuleApplication::Take(f.hi, f.mid, f.lodoc, tg::kWrite);
  EXPECT_TRUE(policy.Vet(f.g, down).ok());
}

TEST(DirectionRestrictionTest, IncompleteForDownwardInertTransfer) {
  // Lemma 5.3 incompleteness: hi cannot grant an inert right to losub when
  // the only enabling g edge points upward.
  ProtectionGraph g;
  VertexId hi = g.AddSubject("hi");
  VertexId losub = g.AddSubject("losub");
  VertexId tool = g.AddObject("tool");
  ASSERT_TRUE(g.AddExplicit(losub, hi, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(hi, tool, tg::RightSet(Right::kExecute)).ok());
  LevelAssignment levels(g.VertexCount(), 2);
  levels.Assign(hi, 1);
  levels.Assign(losub, 0);
  levels.Assign(tool, 1);
  levels.DeclareHigher(1, 0);
  ASSERT_TRUE(levels.Finalize());
  DirectionRestrictionPolicy direction(levels);
  BishopRestrictionPolicy bishop(levels);
  RuleApplication rule =
      RuleApplication::Take(losub, hi, tool, tg::RightSet(Right::kExecute));
  ASSERT_TRUE(CheckRule(g, rule).ok());
  EXPECT_FALSE(direction.Vet(g, rule).ok());  // direction restriction blocks
  EXPECT_TRUE(bishop.Vet(g, rule).ok());      // Bishop restriction allows
}

TEST(ApplicationRestrictionTest, BlocksForbiddenRights) {
  TwoLevel f;
  ApplicationRestrictionPolicy policy(f.levels);  // default {r, w}
  RuleApplication take_w = RuleApplication::Take(f.hi, f.mid, f.lodoc, tg::kWrite);
  EXPECT_FALSE(policy.Vet(f.g, take_w).ok());
  RuleApplication take_e =
      RuleApplication::Take(f.hi, f.mid, f.lodoc, tg::RightSet(Right::kExecute));
  EXPECT_TRUE(policy.Vet(f.g, take_e).ok());
}

TEST(ApplicationRestrictionTest, IncompleteForLegalReadDown) {
  // Lemma 5.4 incompleteness: hi taking read rights to a LOWER vertex is
  // legal, yet the application restriction blocks it.
  TwoLevel f;
  ApplicationRestrictionPolicy application(f.levels);
  BishopRestrictionPolicy bishop(f.levels);
  RuleApplication read_down = RuleApplication::Take(f.hi, f.mid, f.losub, tg::kRead);
  ASSERT_TRUE(CheckRule(f.g, read_down).ok());
  EXPECT_FALSE(application.Vet(f.g, read_down).ok());
  EXPECT_TRUE(bishop.Vet(f.g, read_down).ok());
}

TEST(ApplicationRestrictionTest, CustomForbiddenSet) {
  TwoLevel f;
  ApplicationRestrictionPolicy policy(f.levels, tg::RightSet(Right::kExecute));
  RuleApplication take_e =
      RuleApplication::Take(f.hi, f.mid, f.lodoc, tg::RightSet(Right::kExecute));
  EXPECT_FALSE(policy.Vet(f.g, take_e).ok());
  RuleApplication take_w = RuleApplication::Take(f.hi, f.mid, f.lodoc, tg::kWrite);
  EXPECT_TRUE(policy.Vet(f.g, take_w).ok());
}

// ---- Strict (dominance) variant ----

struct LatticeFixture {
  ProtectionGraph g;
  LevelAssignment levels;
  VertexId a_high, a_low, b_side;

  LatticeFixture() {
    a_high = g.AddSubject("a_high");
    a_low = g.AddSubject("a_low");
    b_side = g.AddSubject("b_side");
    levels = LevelAssignment(g.VertexCount(), 3);
    levels.Assign(a_high, 0);
    levels.Assign(a_low, 1);
    levels.Assign(b_side, 2);  // incomparable with both A levels
    levels.DeclareHigher(0, 1);
    EXPECT_TRUE(levels.Finalize());
  }
};

TEST(StrictRestrictionTest, ModesAgreeOnComparableLevels) {
  LatticeFixture f;
  for (auto strictness :
       {RestrictionStrictness::kPaper, RestrictionStrictness::kStrict}) {
    // read-up forbidden, read-down allowed, in both modes.
    EXPECT_TRUE(ViolatesBishopRestriction(f.levels, f.a_low, f.a_high, tg::kRead, strictness));
    EXPECT_FALSE(
        ViolatesBishopRestriction(f.levels, f.a_high, f.a_low, tg::kRead, strictness));
    // write-down forbidden, write-up allowed.
    EXPECT_TRUE(
        ViolatesBishopRestriction(f.levels, f.a_high, f.a_low, tg::kWrite, strictness));
    EXPECT_FALSE(
        ViolatesBishopRestriction(f.levels, f.a_low, f.a_high, tg::kWrite, strictness));
    // same-level r/w always fine.
    EXPECT_FALSE(
        ViolatesBishopRestriction(f.levels, f.a_low, f.a_low, tg::kReadWrite, strictness));
  }
}

TEST(StrictRestrictionTest, OnlyStrictConstrainsIncomparable) {
  LatticeFixture f;
  // b_side reading a_high: incomparable, so the literal restriction allows
  // it while the strict one does not.
  EXPECT_FALSE(ViolatesBishopRestriction(f.levels, f.b_side, f.a_high, tg::kRead,
                                         RestrictionStrictness::kPaper));
  EXPECT_TRUE(ViolatesBishopRestriction(f.levels, f.b_side, f.a_high, tg::kRead,
                                        RestrictionStrictness::kStrict));
  // Same for writes across incomparable levels.
  EXPECT_FALSE(ViolatesBishopRestriction(f.levels, f.a_high, f.b_side, tg::kWrite,
                                         RestrictionStrictness::kPaper));
  EXPECT_TRUE(ViolatesBishopRestriction(f.levels, f.a_high, f.b_side, tg::kWrite,
                                        RestrictionStrictness::kStrict));
}

TEST(StrictRestrictionTest, UnassignedVerticesUnconstrainedInBothModes) {
  LatticeFixture f;
  VertexId ghost = f.g.AddSubject("ghost");  // never assigned a level
  for (auto strictness :
       {RestrictionStrictness::kPaper, RestrictionStrictness::kStrict}) {
    EXPECT_FALSE(
        ViolatesBishopRestriction(f.levels, ghost, f.a_high, tg::kRead, strictness));
    EXPECT_FALSE(
        ViolatesBishopRestriction(f.levels, f.a_high, ghost, tg::kWrite, strictness));
  }
}

TEST(StrictRestrictionTest, IncomparableRelayLeakClosedByStrict) {
  // a_low reads b_side reads a_high: each edge passes the literal check but
  // the composition leaks a_high's information down.
  LatticeFixture f;
  ASSERT_TRUE(f.g.AddExplicit(f.a_low, f.b_side, tg::kRead).ok());
  ASSERT_TRUE(f.g.AddExplicit(f.b_side, f.a_high, tg::kRead).ok());
  EXPECT_TRUE(AuditBishopRestriction(f.g, f.levels, RestrictionStrictness::kPaper).empty());
  EXPECT_EQ(
      AuditBishopRestriction(f.g, f.levels, RestrictionStrictness::kStrict).size(), 2u);
  // And the leak is real: after saturation a_low knows a_high.
  tg::ProtectionGraph saturated = tg_analysis::SaturateDeFacto(f.g);
  EXPECT_TRUE(tg_analysis::KnowEdgePresent(saturated, f.a_low, f.a_high));
  // The strict audit of the saturated surface flags the implicit read-up...
  EXPECT_FALSE(
      AuditBishopRestriction(saturated, f.levels, RestrictionStrictness::kStrict).empty());
}

TEST(StrictRestrictionTest, PolicyNameReflectsMode) {
  LatticeFixture f;
  BishopRestrictionPolicy paper(f.levels);
  BishopRestrictionPolicy strict(f.levels, RestrictionStrictness::kStrict);
  EXPECT_EQ(paper.Name(), "bishop-restriction");
  EXPECT_EQ(strict.Name(), "bishop-restriction-strict");
}

TEST(StrictRestrictionTest, StrictVetsIncomparableGrant) {
  LatticeFixture f;
  // b_side holds r over a_high's document... model directly with subjects:
  // helper at a_high grants its read over a_high to b_side.
  VertexId helper = f.g.AddSubject("helper");
  f.levels.Assign(helper, 0);
  ASSERT_TRUE(f.g.AddExplicit(helper, f.b_side, tg::kGrant).ok());
  ASSERT_TRUE(f.g.AddExplicit(helper, f.a_high, tg::kRead).ok());
  tg::RuleApplication grant =
      tg::RuleApplication::Grant(helper, f.b_side, f.a_high, tg::kRead);
  BishopRestrictionPolicy paper(f.levels);
  BishopRestrictionPolicy strict(f.levels, RestrictionStrictness::kStrict);
  EXPECT_TRUE(paper.Vet(f.g, grant).ok());
  EXPECT_FALSE(strict.Vet(f.g, grant).ok());
}

// Theorem 5.5 soundness, operationally: random rule derivations through the
// Bishop policy never create a forbidden explicit or implicit edge.
TEST(SoundnessTest, RandomDerivationsStayClean) {
  tg_util::Prng prng(5555);
  for (int trial = 0; trial < 6; ++trial) {
    tg_sim::RandomHierarchyOptions options;
    options.levels = 3;
    options.subjects_per_level = 2;
    options.objects_per_level = 1;
    options.planted_channels = 2;  // bridges exist; the policy must tame them
    tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
    auto policy = std::make_shared<BishopRestrictionPolicy>(h.levels);
    tg::RuleEngine engine(h.graph, policy);
    for (int step = 0; step < 60; ++step) {
      std::vector<RuleApplication> moves = tg::EnumerateDeJure(engine.graph());
      if (moves.empty()) {
        break;
      }
      size_t pick = static_cast<size_t>(prng.NextBelow(moves.size()));
      (void)engine.Apply(moves[pick]);
    }
    // Saturate information flow and audit the full surface.
    ProtectionGraph final_graph = tg_analysis::SaturateDeFacto(engine.graph());
    auto offending = AuditBishopRestriction(final_graph, policy->assignment());
    EXPECT_TRUE(offending.empty())
        << "trial " << trial << ": " << offending.size() << " forbidden edges, first: "
        << final_graph.NameOf(offending[0].src) << " -> "
        << final_graph.NameOf(offending[0].dst);
  }
}

// Contrast: without the policy the same graphs are breached.
TEST(SoundnessTest, UnrestrictedDerivationsDoBreach) {
  tg_util::Prng prng(7777);
  bool any_breach = false;
  for (int trial = 0; trial < 6 && !any_breach; ++trial) {
    tg_sim::RandomHierarchyOptions options;
    options.levels = 2;
    options.subjects_per_level = 2;
    options.planted_channels = 3;
    tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
    tg::RuleEngine engine(h.graph, nullptr);
    for (int step = 0; step < 80; ++step) {
      std::vector<RuleApplication> moves = tg::EnumerateDeJure(engine.graph());
      if (moves.empty()) {
        break;
      }
      size_t pick = static_cast<size_t>(prng.NextBelow(moves.size()));
      (void)engine.Apply(moves[pick]);
    }
    ProtectionGraph final_graph = tg_analysis::SaturateDeFacto(engine.graph());
    any_breach = !AuditBishopRestriction(final_graph, h.levels).empty();
  }
  EXPECT_TRUE(any_breach);
}

}  // namespace
}  // namespace tg_hier

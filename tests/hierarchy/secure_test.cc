#include "src/hierarchy/secure.h"

#include <gtest/gtest.h>

#include "src/analysis/can_know.h"
#include "src/hierarchy/classification.h"
#include "src/sim/generator.h"
#include "src/util/prng.h"

namespace tg_hier {
namespace {

using tg::ProtectionGraph;
using tg::VertexId;

TEST(SecureTest, LinearClassificationIsSecure) {
  LinearOptions options;
  options.levels = 4;
  options.subjects_per_level = 2;
  ClassifiedSystem system = LinearClassification(options);
  SecurityReport report = CheckSecure(system.graph, system.levels);
  EXPECT_TRUE(report.secure) << (report.violations.empty() ? "" : report.violations[0].detail);
  EXPECT_TRUE(SecureByTheorem52(system.graph, system.levels));
}

TEST(SecureTest, MilitaryClassificationIsSecure) {
  MilitaryOptions options;
  ClassifiedSystem system = MilitaryClassification(options);
  SecurityReport report = CheckSecure(system.graph, system.levels);
  EXPECT_TRUE(report.secure) << (report.violations.empty() ? "" : report.violations[0].detail);
  EXPECT_TRUE(SecureByTheorem52(system.graph, system.levels));
}

TEST(SecureTest, ReadUpEdgeViolates) {
  LinearOptions options;
  options.levels = 2;
  options.subjects_per_level = 1;
  ClassifiedSystem system = LinearClassification(options);
  VertexId lo = system.level_subjects[0][0];
  VertexId hi = system.level_subjects[1][0];
  ASSERT_TRUE(system.graph.AddExplicit(lo, hi, tg::kRead).ok());
  SecurityReport report = CheckSecure(system.graph, system.levels);
  EXPECT_FALSE(report.secure);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations[0].lower, lo);
  EXPECT_FALSE(SecureByTheorem52(system.graph, system.levels));
}

TEST(SecureTest, WriteDownEdgeViolates) {
  LinearOptions options;
  options.levels = 2;
  options.subjects_per_level = 1;
  ClassifiedSystem system = LinearClassification(options);
  VertexId lo = system.level_subjects[0][0];
  VertexId hi = system.level_subjects[1][0];
  ASSERT_TRUE(system.graph.AddExplicit(hi, lo, tg::kWrite).ok());
  SecurityReport report = CheckSecure(system.graph, system.levels);
  EXPECT_FALSE(report.secure);
}

TEST(SecureTest, CrossLevelTakeEdgeIsABreachableChannel) {
  // Theorem 5.2: a bridge between levels (t edge from low to high) breaks
  // security even with no direct r/w crossing.
  LinearOptions options;
  options.levels = 2;
  options.subjects_per_level = 2;
  ClassifiedSystem system = LinearClassification(options);
  VertexId lo = system.level_subjects[0][0];
  VertexId hi = system.level_subjects[1][0];
  ASSERT_TRUE(system.graph.AddExplicit(lo, hi, tg::kTake).ok());
  SecurityReport report = CheckSecure(system.graph, system.levels);
  EXPECT_FALSE(report.secure);
  auto channels = FindCrossLevelChannels(system.graph, system.levels);
  EXPECT_FALSE(channels.empty());
}

TEST(SecureTest, ChannelReportNamesPath) {
  LinearOptions options;
  options.levels = 2;
  options.subjects_per_level = 1;
  ClassifiedSystem system = LinearClassification(options);
  VertexId lo = system.level_subjects[0][0];
  VertexId hi = system.level_subjects[1][0];
  ASSERT_TRUE(system.graph.AddExplicit(lo, hi, tg::kTake).ok());
  auto channels = FindCrossLevelChannels(system.graph, system.levels);
  ASSERT_FALSE(channels.empty());
  EXPECT_EQ(channels[0].from, lo);
  EXPECT_EQ(channels[0].to, hi);
  EXPECT_NE(channels[0].path.find("t>"), std::string::npos);
}

TEST(SecureTest, PlantedChannelsDetected) {
  tg_util::Prng prng(909);
  tg_sim::RandomHierarchyOptions options;
  options.levels = 3;
  options.subjects_per_level = 3;
  options.planted_channels = 2;
  tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
  // A planted t/g edge between levels is exactly a cross-level bridge.
  EXPECT_FALSE(SecureByTheorem52(h.graph, h.levels));
}

TEST(SecureTest, CleanHierarchiesSecureAcrossSeeds) {
  tg_util::Prng prng(1234);
  for (int trial = 0; trial < 8; ++trial) {
    tg_sim::RandomHierarchyOptions options;
    options.levels = 2 + trial % 3;
    options.subjects_per_level = 2 + trial % 2;
    options.planted_channels = 0;
    tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
    SecurityReport report = CheckSecure(h.graph, h.levels);
    EXPECT_TRUE(report.secure)
        << "trial " << trial << ": "
        << (report.violations.empty() ? "" : report.violations[0].detail);
  }
}

// Definition agreement: CheckSecure flags exactly the pairs where a lower
// vertex can_know a higher one.
TEST(SecureTest, ReportMatchesCanKnowPairs) {
  LinearOptions options;
  options.levels = 3;
  options.subjects_per_level = 1;
  ClassifiedSystem system = LinearClassification(options);
  VertexId lo = system.level_subjects[0][0];
  VertexId hi = system.level_subjects[2][0];
  ASSERT_TRUE(system.graph.AddExplicit(lo, hi, tg::kTake).ok());
  SecurityReport report = CheckSecure(system.graph, system.levels);
  for (const SecurityViolation& v : report.violations) {
    EXPECT_TRUE(system.levels.HigherVertex(v.higher, v.lower));
    EXPECT_TRUE(tg_analysis::CanKnow(system.graph, v.lower, v.higher)) << v.detail;
  }
  EXPECT_FALSE(report.secure);
}

TEST(SecureTest, MaxViolationsBoundsReport) {
  LinearOptions options;
  options.levels = 3;
  options.subjects_per_level = 2;
  ClassifiedSystem system = LinearClassification(options);
  VertexId lo = system.level_subjects[0][0];
  VertexId hi = system.level_subjects[2][0];
  ASSERT_TRUE(system.graph.AddExplicit(lo, hi, tg::kTake).ok());
  SecurityReport report = CheckSecure(system.graph, system.levels, /*max_violations=*/1);
  EXPECT_FALSE(report.secure);
  EXPECT_EQ(report.violations.size(), 1u);
}

}  // namespace
}  // namespace tg_hier

#include "src/hierarchy/classification.h"

#include <gtest/gtest.h>

#include "src/analysis/can_know.h"
#include "src/hierarchy/secure.h"
#include "src/hierarchy/levels.h"

namespace tg_hier {
namespace {

using tg::VertexId;

TEST(LinearClassificationTest, BuildsRequestedShape) {
  LinearOptions options;
  options.levels = 4;
  options.subjects_per_level = 3;
  ClassifiedSystem system = LinearClassification(options);
  ASSERT_EQ(system.level_subjects.size(), 4u);
  for (const auto& level : system.level_subjects) {
    EXPECT_EQ(level.size(), 3u);
  }
  EXPECT_EQ(system.graph.SubjectCount(), 12u);
  EXPECT_EQ(system.graph.VertexCount(), 16u);  // + one document per level
}

TEST(LinearClassificationTest, LevelsAreATotalOrder) {
  ClassifiedSystem system = LinearClassification(LinearOptions{});
  for (LevelId a = 0; a < system.levels.LevelCount(); ++a) {
    for (LevelId b = 0; b < system.levels.LevelCount(); ++b) {
      EXPECT_EQ(system.levels.Higher(a, b), a > b);
    }
  }
}

TEST(LinearClassificationTest, InformationFlowsUpOnly) {
  // Theorem 4.3: l_k knows l_j for k > j; never the reverse.
  LinearOptions options;
  options.levels = 3;
  options.subjects_per_level = 2;
  ClassifiedSystem system = LinearClassification(options);
  for (size_t hi = 0; hi < 3; ++hi) {
    for (size_t lo = 0; lo < 3; ++lo) {
      for (VertexId h : system.level_subjects[hi]) {
        for (VertexId l : system.level_subjects[lo]) {
          if (hi > lo) {
            EXPECT_TRUE(tg_analysis::CanKnowF(system.graph, h, l))
                << system.graph.NameOf(h) << " should know " << system.graph.NameOf(l);
            EXPECT_FALSE(tg_analysis::CanKnowF(system.graph, l, h));
          }
        }
      }
    }
  }
}

TEST(LinearClassificationTest, SameLevelSubjectsMutuallyKnow) {
  LinearOptions options;
  options.levels = 2;
  options.subjects_per_level = 3;
  ClassifiedSystem system = LinearClassification(options);
  for (const auto& level : system.level_subjects) {
    for (VertexId a : level) {
      for (VertexId b : level) {
        EXPECT_TRUE(tg_analysis::CanKnowF(system.graph, a, b));
      }
    }
  }
}

TEST(LinearClassificationTest, DocumentsBelongToTheirLevel) {
  LinearOptions options;
  options.levels = 3;
  ClassifiedSystem system = LinearClassification(options);
  for (size_t level = 0; level < 3; ++level) {
    ASSERT_NE(system.level_documents[level], tg::kInvalidVertex);
    EXPECT_EQ(system.levels.LevelOf(system.level_documents[level]),
              static_cast<LevelId>(level));
  }
}

TEST(LinearClassificationTest, ObjectLevelRuleAgreesWithBuilder) {
  // Recomputing object levels from access (Theorem 4.5's rule) reproduces
  // the builder's assignment.
  LinearOptions options;
  options.levels = 3;
  ClassifiedSystem system = LinearClassification(options);
  LevelAssignment recomputed(system.graph.VertexCount(), system.levels.LevelCount());
  for (LevelId l = 0; l + 1 <= system.levels.LevelCount(); ++l) {
    for (LevelId below = 0; below < l; ++below) {
      recomputed.DeclareHigher(l, below);
    }
  }
  for (size_t level = 0; level < system.level_subjects.size(); ++level) {
    for (VertexId s : system.level_subjects[level]) {
      recomputed.Assign(s, static_cast<LevelId>(level));
    }
  }
  ASSERT_TRUE(recomputed.Finalize());
  AssignObjectLevels(system.graph, recomputed);
  for (size_t level = 0; level < system.level_documents.size(); ++level) {
    EXPECT_EQ(recomputed.LevelOf(system.level_documents[level]),
              static_cast<LevelId>(level));
  }
}

TEST(LinearClassificationTest, ComputedRwtgLevelsRefineDesignerLevels) {
  // Subjects sharing a designer level end up in one computed level, and the
  // computed higher relation respects the designer's order.
  LinearOptions options;
  options.levels = 3;
  options.subjects_per_level = 2;
  ClassifiedSystem system = LinearClassification(options);
  LevelAssignment computed = ComputeRwtgLevels(system.graph);
  for (const auto& level : system.level_subjects) {
    for (VertexId a : level) {
      EXPECT_EQ(computed.LevelOf(a), computed.LevelOf(level[0]));
    }
  }
  VertexId hi = system.level_subjects[2][0];
  VertexId lo = system.level_subjects[0][0];
  EXPECT_TRUE(computed.HigherVertex(hi, lo));
}

TEST(MilitaryClassificationTest, NodeCount) {
  MilitaryOptions options;
  options.authority_levels = 4;
  options.categories = 2;
  ClassifiedSystem system = MilitaryClassification(options);
  // bottom + 2 categories x 3 classified authorities = 7 level nodes.
  EXPECT_EQ(system.levels.LevelCount(), 7u);
}

TEST(MilitaryClassificationTest, CategoriesIncomparable) {
  MilitaryOptions options;
  options.authority_levels = 3;
  options.categories = 2;
  ClassifiedSystem system = MilitaryClassification(options);
  // Find two same-authority nodes of different categories via names A1, B1.
  LevelId a1 = kNoLevel;
  LevelId b1 = kNoLevel;
  for (LevelId l = 0; l < system.levels.LevelCount(); ++l) {
    if (system.levels.LevelName(l) == "A1") {
      a1 = l;
    }
    if (system.levels.LevelName(l) == "B1") {
      b1 = l;
    }
  }
  ASSERT_NE(a1, kNoLevel);
  ASSERT_NE(b1, kNoLevel);
  EXPECT_FALSE(system.levels.Comparable(a1, b1));
}

TEST(MilitaryClassificationTest, AuthorityChainsOrdered) {
  MilitaryOptions options;
  options.authority_levels = 4;
  options.categories = 1;
  ClassifiedSystem system = MilitaryClassification(options);
  LevelId a1 = kNoLevel, a3 = kNoLevel, bottom = kNoLevel;
  for (LevelId l = 0; l < system.levels.LevelCount(); ++l) {
    if (system.levels.LevelName(l) == "A1") {
      a1 = l;
    }
    if (system.levels.LevelName(l) == "A3") {
      a3 = l;
    }
    if (system.levels.LevelName(l) == "U") {
      bottom = l;
    }
  }
  ASSERT_NE(a1, kNoLevel);
  ASSERT_NE(a3, kNoLevel);
  ASSERT_NE(bottom, kNoLevel);
  EXPECT_TRUE(system.levels.Higher(a3, a1));
  EXPECT_TRUE(system.levels.Higher(a1, bottom));
  EXPECT_TRUE(system.levels.Higher(a3, bottom));  // transitive
}

TEST(MilitaryClassificationTest, NoCrossCategoryFlow) {
  MilitaryOptions options;
  options.authority_levels = 3;
  options.categories = 2;
  ClassifiedSystem system = MilitaryClassification(options);
  // Subjects named A1s0 and B1s0 must not know each other at all.
  VertexId a = system.graph.FindVertex("A1s0");
  VertexId b = system.graph.FindVertex("B1s0");
  ASSERT_NE(a, tg::kInvalidVertex);
  ASSERT_NE(b, tg::kInvalidVertex);
  EXPECT_FALSE(tg_analysis::CanKnow(system.graph, a, b));
  EXPECT_FALSE(tg_analysis::CanKnow(system.graph, b, a));
}

TEST(TreeClassificationTest, NodeCountAndNames) {
  TreeOptions options;
  options.depth = 2;
  options.fanout = 2;
  ClassifiedSystem system = TreeClassification(options);
  // 1 + 2 + 4 = 7 level nodes.
  EXPECT_EQ(system.levels.LevelCount(), 7u);
  EXPECT_EQ(system.levels.LevelName(0), "n");
  EXPECT_NE(system.graph.FindVertex("n01s0"), tg::kInvalidVertex);
}

TEST(TreeClassificationTest, DominanceIsAncestry) {
  TreeOptions options;
  options.depth = 2;
  options.fanout = 2;
  ClassifiedSystem system = TreeClassification(options);
  auto level_named = [&](const std::string& name) {
    for (LevelId l = 0; l < system.levels.LevelCount(); ++l) {
      if (system.levels.LevelName(l) == name) {
        return l;
      }
    }
    return kNoLevel;
  };
  LevelId root = level_named("n");
  LevelId n0 = level_named("n0");
  LevelId n1 = level_named("n1");
  LevelId n01 = level_named("n01");
  LevelId n10 = level_named("n10");
  ASSERT_NE(n01, kNoLevel);
  EXPECT_TRUE(system.levels.Higher(root, n01));  // transitive ancestry
  EXPECT_TRUE(system.levels.Higher(n0, n01));
  EXPECT_FALSE(system.levels.Comparable(n0, n1));    // siblings
  EXPECT_FALSE(system.levels.Comparable(n01, n10));  // cousins
  EXPECT_FALSE(system.levels.Higher(n01, root));
}

TEST(TreeClassificationTest, SecureAndFlowsFollowReportingChain) {
  TreeOptions options;
  options.depth = 2;
  options.fanout = 2;
  ClassifiedSystem system = TreeClassification(options);
  EXPECT_TRUE(tg_hier::CheckSecure(system.graph, system.levels, 1).secure);
  VertexId root = system.graph.FindVertex("ns0");
  VertexId leaf = system.graph.FindVertex("n01s0");
  VertexId other_leaf = system.graph.FindVertex("n10s0");
  ASSERT_NE(root, tg::kInvalidVertex);
  // The root learns everything below it (spy chains down the tree)...
  EXPECT_TRUE(tg_analysis::CanKnowF(system.graph, root, leaf));
  // ...leaves learn nothing about their ancestors or cousins.
  EXPECT_FALSE(tg_analysis::CanKnow(system.graph, leaf, root));
  EXPECT_FALSE(tg_analysis::CanKnow(system.graph, leaf, other_leaf));
}

TEST(TreeClassificationTest, SingleNodeDegenerateTree) {
  TreeOptions options;
  options.depth = 0;
  ClassifiedSystem system = TreeClassification(options);
  EXPECT_EQ(system.levels.LevelCount(), 1u);
  EXPECT_TRUE(tg_hier::CheckSecure(system.graph, system.levels, 1).secure);
}

TEST(MilitaryClassificationTest, ReadDownWithinCategory) {
  MilitaryOptions options;
  options.authority_levels = 3;
  options.categories = 1;
  ClassifiedSystem system = MilitaryClassification(options);
  VertexId a2 = system.graph.FindVertex("A2s0");
  VertexId a1 = system.graph.FindVertex("A1s0");
  VertexId u = system.graph.FindVertex("Us0");
  ASSERT_NE(a2, tg::kInvalidVertex);
  EXPECT_TRUE(tg_analysis::CanKnowF(system.graph, a2, a1));
  EXPECT_TRUE(tg_analysis::CanKnowF(system.graph, a2, u));  // via chain
  EXPECT_FALSE(tg_analysis::CanKnowF(system.graph, u, a2));
}

}  // namespace
}  // namespace tg_hier

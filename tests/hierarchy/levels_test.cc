#include "src/hierarchy/levels.h"

#include <gtest/gtest.h>

#include "src/analysis/can_know.h"

namespace tg_hier {
namespace {

using tg::ProtectionGraph;
using tg::VertexId;

TEST(LevelAssignmentTest, AssignAndQuery) {
  LevelAssignment a(3, 2);
  a.Assign(0, 1);
  a.Assign(1, 0);
  EXPECT_EQ(a.LevelOf(0), 1u);
  EXPECT_EQ(a.LevelOf(1), 0u);
  EXPECT_FALSE(a.IsAssigned(2));
  EXPECT_EQ(a.LevelOf(99), kNoLevel);
}

TEST(LevelAssignmentTest, HigherIsTransitivelyClosed) {
  LevelAssignment a(0, 3);
  a.DeclareHigher(2, 1);
  a.DeclareHigher(1, 0);
  ASSERT_TRUE(a.Finalize());
  EXPECT_TRUE(a.Higher(2, 1));
  EXPECT_TRUE(a.Higher(2, 0));  // transitivity
  EXPECT_FALSE(a.Higher(0, 2));
  EXPECT_FALSE(a.Higher(1, 1));  // irreflexive
  EXPECT_TRUE(a.Comparable(2, 0));
  EXPECT_TRUE(a.Comparable(1, 1));
}

TEST(LevelAssignmentTest, CycleDetected) {
  LevelAssignment a(0, 2);
  a.DeclareHigher(0, 1);
  a.DeclareHigher(1, 0);
  EXPECT_FALSE(a.Finalize());
}

TEST(LevelAssignmentTest, IncomparableLevels) {
  LevelAssignment a(0, 3);
  a.DeclareHigher(1, 0);
  a.DeclareHigher(2, 0);
  ASSERT_TRUE(a.Finalize());
  EXPECT_FALSE(a.Comparable(1, 2));
}

TEST(LevelAssignmentTest, HigherVertexUsesLevels) {
  LevelAssignment a(3, 2);
  a.Assign(0, 1);
  a.Assign(1, 0);
  a.DeclareHigher(1, 0);
  ASSERT_TRUE(a.Finalize());
  EXPECT_TRUE(a.HigherVertex(0, 1));
  EXPECT_FALSE(a.HigherVertex(1, 0));
  EXPECT_FALSE(a.HigherVertex(0, 2));  // unassigned compares with nothing
}

TEST(LevelAssignmentTest, MembersGroupsByLevel) {
  LevelAssignment a(4, 2);
  a.Assign(0, 0);
  a.Assign(2, 0);
  a.Assign(3, 1);
  auto members = a.Members();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0], (std::vector<VertexId>{0, 2}));
  EXPECT_EQ(members[1], (std::vector<VertexId>{3}));
}

TEST(LevelAssignmentTest, NamesDefaultAndCustom) {
  LevelAssignment a(0, 2);
  EXPECT_EQ(a.LevelName(0), "L0");
  a.SetLevelName(1, "top secret");
  EXPECT_EQ(a.LevelName(1), "top secret");
  EXPECT_EQ(a.LevelName(77), "<none>");
}

TEST(KnowStepDigraphTest, EdgesFollowInformationFlow) {
  ProtectionGraph g;
  VertexId s = g.AddSubject("s");
  VertexId o = g.AddObject("o");
  ASSERT_TRUE(g.AddExplicit(s, o, tg::kReadWrite).ok());
  auto adj = KnowStepDigraph(g);
  // s reads o: s -> o.  s writes o: o -> s.
  EXPECT_EQ(adj[s], std::vector<VertexId>{o});
  EXPECT_EQ(adj[o], std::vector<VertexId>{s});
}

TEST(KnowStepDigraphTest, ObjectSourcesContributeNothing) {
  ProtectionGraph g;
  VertexId o = g.AddObject("o");
  VertexId t = g.AddObject("t");
  ASSERT_TRUE(g.AddExplicit(o, t, tg::kReadWrite).ok());
  auto adj = KnowStepDigraph(g);
  EXPECT_TRUE(adj[o].empty());
  EXPECT_TRUE(adj[t].empty());
}

TEST(SccTest, SimpleCycleOneComponent) {
  std::vector<std::vector<VertexId>> adj = {{1}, {2}, {0}, {}};
  auto comp = StronglyConnectedComponents(adj);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(SccTest, DagAllSingletons) {
  std::vector<std::vector<VertexId>> adj = {{1, 2}, {2}, {}};
  auto comp = StronglyConnectedComponents(adj);
  EXPECT_NE(comp[0], comp[1]);
  EXPECT_NE(comp[1], comp[2]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(SccTest, TwoCyclesLinked) {
  std::vector<std::vector<VertexId>> adj = {{1}, {0, 2}, {3}, {2}};
  auto comp = StronglyConnectedComponents(adj);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(RwLevelsTest, MutualReadersShareLevel) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddSubject("b");
  VertexId c = g.AddSubject("c");
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kRead).ok());
  ASSERT_TRUE(g.AddExplicit(b, a, tg::kRead).ok());
  ASSERT_TRUE(g.AddExplicit(a, c, tg::kRead).ok());  // one-way: c below
  LevelAssignment levels = ComputeRwLevels(g);
  EXPECT_EQ(levels.LevelOf(a), levels.LevelOf(b));
  EXPECT_NE(levels.LevelOf(a), levels.LevelOf(c));
  EXPECT_TRUE(levels.HigherVertex(a, c));
  EXPECT_FALSE(levels.HigherVertex(c, a));
}

TEST(RwLevelsTest, WriterSharedObjectMerges) {
  // a -rw-> o <-rw- b: both know each other through o.
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId o = g.AddObject("o");
  VertexId b = g.AddSubject("b");
  ASSERT_TRUE(g.AddExplicit(a, o, tg::kReadWrite).ok());
  ASSERT_TRUE(g.AddExplicit(b, o, tg::kReadWrite).ok());
  LevelAssignment levels = ComputeRwLevels(g);
  EXPECT_EQ(levels.LevelOf(a), levels.LevelOf(b));
  EXPECT_EQ(levels.LevelOf(a), levels.LevelOf(o));
}

TEST(RwLevelsTest, LevelsAgreeWithCanKnowF) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddSubject("b");
  VertexId c = g.AddSubject("c");
  VertexId o = g.AddObject("o");
  ASSERT_TRUE(g.AddExplicit(a, o, tg::kReadWrite).ok());
  ASSERT_TRUE(g.AddExplicit(b, o, tg::kReadWrite).ok());
  ASSERT_TRUE(g.AddExplicit(c, a, tg::kRead).ok());
  LevelAssignment levels = ComputeRwLevels(g);
  for (VertexId x = 0; x < g.VertexCount(); ++x) {
    for (VertexId y = 0; y < g.VertexCount(); ++y) {
      bool same_level = levels.LevelOf(x) == levels.LevelOf(y);
      bool mutual = tg_analysis::CanKnowF(g, x, y) && tg_analysis::CanKnowF(g, y, x);
      EXPECT_EQ(same_level, mutual) << g.NameOf(x) << " vs " << g.NameOf(y);
    }
  }
}

TEST(RwtgLevelsTest, IslandIsOneLevel) {
  // Lemma 5.1: every island is contained in exactly one rwtg-level.
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddSubject("b");
  VertexId c = g.AddSubject("c");
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(b, c, tg::kGrant).ok());
  LevelAssignment levels = ComputeRwtgLevels(g);
  EXPECT_EQ(levels.LevelOf(a), levels.LevelOf(b));
  EXPECT_EQ(levels.LevelOf(b), levels.LevelOf(c));
}

TEST(RwtgLevelsTest, ObjectsUnassigned) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId o = g.AddObject("o");
  ASSERT_TRUE(g.AddExplicit(a, o, tg::kRead).ok());
  LevelAssignment levels = ComputeRwtgLevels(g);
  EXPECT_TRUE(levels.IsAssigned(a));
  EXPECT_FALSE(levels.IsAssigned(o));
}

TEST(RwtgLevelsTest, CrossLevelReadMakesHigher) {
  ProtectionGraph g;
  VertexId hi = g.AddSubject("hi");
  VertexId lo = g.AddSubject("lo");
  ASSERT_TRUE(g.AddExplicit(hi, lo, tg::kRead).ok());
  LevelAssignment levels = ComputeRwtgLevels(g);
  EXPECT_NE(levels.LevelOf(hi), levels.LevelOf(lo));
  EXPECT_TRUE(levels.HigherVertex(hi, lo));
}

TEST(ObjectLevelTest, LowestAccessorWins) {
  // Theorem 4.5 setup: document accessed rw by low, r by high.
  ProtectionGraph g;
  VertexId lo = g.AddSubject("lo");
  VertexId hi = g.AddSubject("hi");
  VertexId doc = g.AddObject("doc");
  ASSERT_TRUE(g.AddExplicit(lo, doc, tg::kReadWrite).ok());
  ASSERT_TRUE(g.AddExplicit(hi, doc, tg::kRead).ok());
  LevelAssignment levels(g.VertexCount(), 2);
  levels.Assign(lo, 0);
  levels.Assign(hi, 1);
  levels.DeclareHigher(1, 0);
  ASSERT_TRUE(levels.Finalize());
  AssignObjectLevels(g, levels);
  EXPECT_EQ(levels.LevelOf(doc), 0u);
}

TEST(ObjectLevelTest, IncomparableAccessorsLeaveUnassigned) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddSubject("b");
  VertexId doc = g.AddObject("doc");
  ASSERT_TRUE(g.AddExplicit(a, doc, tg::kRead).ok());
  ASSERT_TRUE(g.AddExplicit(b, doc, tg::kRead).ok());
  LevelAssignment levels(g.VertexCount(), 3);
  levels.Assign(a, 1);
  levels.Assign(b, 2);
  levels.DeclareHigher(1, 0);
  levels.DeclareHigher(2, 0);  // 1 and 2 incomparable
  ASSERT_TRUE(levels.Finalize());
  AssignObjectLevels(g, levels);
  EXPECT_FALSE(levels.IsAssigned(doc));
}

TEST(LevelAssignmentTest, AssignRejectsInvalidInputs) {
  LevelAssignment levels(3, 2);
  EXPECT_FALSE(levels.Assign(tg::kInvalidVertex, 0));
  EXPECT_FALSE(levels.Assign(0, 2));   // level out of range
  EXPECT_FALSE(levels.Assign(0, 99));  // far out of range
  EXPECT_TRUE(levels.Assign(0, 1));
  EXPECT_EQ(levels.LevelOf(0), 1u);
  EXPECT_TRUE(levels.Assign(0, kNoLevel));  // explicit unassignment is fine
  EXPECT_FALSE(levels.IsAssigned(0));
}

TEST(LevelAssignmentTest, AssignGrowsForLaterCreatedVertices) {
  // Vertices created after construction (create rules) join the table
  // lazily; the gap stays unassigned.
  LevelAssignment levels(2, 3);
  EXPECT_TRUE(levels.Assign(5, 2));
  EXPECT_EQ(levels.LevelOf(5), 2u);
  EXPECT_FALSE(levels.IsAssigned(2));
  EXPECT_FALSE(levels.IsAssigned(3));
  EXPECT_FALSE(levels.IsAssigned(4));
  // Out-of-range queries stay safe after growth.
  EXPECT_EQ(levels.LevelOf(100), kNoLevel);
}

TEST(ObjectLevelTest, TakeEdgesDoNotAssign) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId doc = g.AddObject("doc");
  ASSERT_TRUE(g.AddExplicit(a, doc, tg::kTake).ok());
  LevelAssignment levels(g.VertexCount(), 1);
  levels.Assign(a, 0);
  ASSERT_TRUE(levels.Finalize());
  AssignObjectLevels(g, levels);
  EXPECT_FALSE(levels.IsAssigned(doc));
}

}  // namespace
}  // namespace tg_hier

#include "src/hierarchy/higher.h"

#include <gtest/gtest.h>

#include "src/sim/generator.h"
#include "src/util/prng.h"

namespace tg_hier {
namespace {

using tg::ProtectionGraph;
using tg::VertexId;

TEST(HigherTest, ReadDownMakesHigher) {
  ProtectionGraph g;
  VertexId hi = g.AddSubject("hi");
  VertexId lo = g.AddSubject("lo");
  ASSERT_TRUE(g.AddExplicit(hi, lo, tg::kRead).ok());
  EXPECT_TRUE(HigherF(g, hi, lo));
  EXPECT_FALSE(HigherF(g, lo, hi));
  EXPECT_TRUE(Higher(g, hi, lo));
}

TEST(HigherTest, MutualKnowledgeIsNotHigher) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddSubject("b");
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kRead).ok());
  ASSERT_TRUE(g.AddExplicit(b, a, tg::kRead).ok());
  EXPECT_FALSE(HigherF(g, a, b));
  EXPECT_FALSE(HigherF(g, b, a));
  EXPECT_TRUE(SameRwLevel(g, a, b));
}

TEST(HigherTest, Irreflexive) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  EXPECT_FALSE(HigherF(g, a, a));
  EXPECT_FALSE(Higher(g, a, a));
  EXPECT_FALSE(RwJoined(g, a, a));
}

TEST(HigherTest, RwJoinedMatchesDefinition) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId y = g.AddSubject("y");
  ASSERT_TRUE(g.AddExplicit(x, y, tg::kRead).ok());
  EXPECT_TRUE(RwJoined(g, x, y));
  EXPECT_FALSE(RwJoined(g, y, x));
}

TEST(HigherTest, DeJureChannelSeparatesHigherFromHigherF) {
  // x can take its way to reading y: higher de jure but not de facto.
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId o = g.AddObject("o");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(x, o, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(o, y, tg::kRead).ok());
  EXPECT_FALSE(HigherF(g, x, y));
  EXPECT_TRUE(Higher(g, x, y));
}

// Proposition 4.4: higher is a strict partial order.  Verify transitivity
// and irreflexivity on random graphs.
TEST(HigherTest, PartialOrderPropertiesOnRandomGraphs) {
  tg_util::Prng prng(424242);
  tg_sim::RandomGraphOptions options;
  options.subjects = 5;
  options.objects = 3;
  options.edge_factor = 1.3;
  for (int trial = 0; trial < 10; ++trial) {
    ProtectionGraph g = tg_sim::RandomGraph(options, prng);
    const VertexId n = static_cast<VertexId>(g.VertexCount());
    // Precompute the relation.
    std::vector<std::vector<bool>> higher(n, std::vector<bool>(n, false));
    for (VertexId x = 0; x < n; ++x) {
      for (VertexId y = 0; y < n; ++y) {
        if (x != y) {
          higher[x][y] = HigherF(g, x, y);
        }
      }
    }
    for (VertexId x = 0; x < n; ++x) {
      EXPECT_FALSE(higher[x][x]);
      for (VertexId y = 0; y < n; ++y) {
        // Antisymmetry.
        if (higher[x][y]) {
          EXPECT_FALSE(higher[y][x]) << g.NameOf(x) << "," << g.NameOf(y);
        }
        for (VertexId z = 0; z < n; ++z) {
          if (higher[x][y] && higher[y][z]) {
            EXPECT_TRUE(higher[x][z])
                << "transitivity fails: " << g.NameOf(x) << ">" << g.NameOf(y) << ">"
                << g.NameOf(z) << " trial " << trial;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace tg_hier

// Differential tests for the condensation-first audit engines: the
// level-sharded CheckSecure / FindCrossLevelChannels must be bit-identical
// to the dense per-candidate engines — contents, order, and cutoffs — on
// secure and planted-channel hierarchies, for any thread count; and the
// hybrid (allocation-guard) BOC digraph path must yield the identical
// rwtg-level assignment when the dense matrix cap forces it on.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/take_grant.h"

namespace {

using tg_hier::AuditEngine;
using tg_hier::CrossLevelChannel;
using tg_hier::LevelAssignment;
using tg_hier::SecurityReport;

tg_sim::GeneratedHierarchy Hierarchy(size_t planted, uint64_t seed, size_t levels = 4,
                                     size_t clusters = 3) {
  tg_util::Prng prng(seed);
  tg_sim::HierarchicalGraphOptions options;
  options.levels = levels;
  options.clusters_per_level = clusters;
  options.subjects_per_cluster = 5;
  options.objects_per_cluster = 2;
  options.tg_chords_per_cluster = 2;
  options.reads_down_per_subject = 1;
  options.planted_channels = planted;
  return tg_sim::HierarchicalGraph(options, prng);
}

void ExpectSameReports(const SecurityReport& a, const SecurityReport& b, const char* what) {
  EXPECT_EQ(a.secure, b.secure) << what;
  ASSERT_EQ(a.violations.size(), b.violations.size()) << what;
  for (size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].lower, b.violations[i].lower) << what << " violation " << i;
    EXPECT_EQ(a.violations[i].higher, b.violations[i].higher) << what << " violation " << i;
    EXPECT_EQ(a.violations[i].detail, b.violations[i].detail) << what << " violation " << i;
  }
}

void ExpectSameChannels(const std::vector<CrossLevelChannel>& a,
                        const std::vector<CrossLevelChannel>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].from, b[i].from) << what << " channel " << i;
    EXPECT_EQ(a[i].to, b[i].to) << what << " channel " << i;
    EXPECT_EQ(a[i].path, b[i].path) << what << " channel " << i;
  }
}

TEST(ScaleAuditTest, ShardedCheckSecureMatchesDense) {
  for (size_t planted : {size_t{0}, size_t{2}, size_t{6}}) {
    for (uint64_t seed : {uint64_t{5}, uint64_t{77}}) {
      tg_sim::GeneratedHierarchy h = Hierarchy(planted, seed);
      const std::string what =
          "planted=" + std::to_string(planted) + " seed=" + std::to_string(seed);
      SecurityReport dense =
          tg_hier::CheckSecure(h.graph, h.levels, 0, nullptr, AuditEngine::kDense);
      EXPECT_EQ(dense.secure, planted == 0) << what;
      for (size_t threads : {size_t{1}, size_t{4}}) {
        tg_util::ThreadPool pool(threads);
        SecurityReport sharded =
            tg_hier::CheckSecure(h.graph, h.levels, 0, &pool, AuditEngine::kSharded);
        ExpectSameReports(dense, sharded,
                          (what + " threads=" + std::to_string(threads)).c_str());
      }
    }
  }
}

TEST(ScaleAuditTest, ShardedCutoffMatchesDense) {
  tg_sim::GeneratedHierarchy h = Hierarchy(/*planted=*/6, /*seed=*/31);
  SecurityReport full = tg_hier::CheckSecure(h.graph, h.levels, 0, nullptr, AuditEngine::kDense);
  ASSERT_FALSE(full.secure);
  ASSERT_GT(full.violations.size(), 2u);
  // Sweep caps below, at, and above the true count: the truncation point
  // must agree exactly.
  for (size_t cap : {size_t{1}, size_t{2}, full.violations.size(), full.violations.size() + 5}) {
    SecurityReport dense =
        tg_hier::CheckSecure(h.graph, h.levels, cap, nullptr, AuditEngine::kDense);
    SecurityReport sharded =
        tg_hier::CheckSecure(h.graph, h.levels, cap, nullptr, AuditEngine::kSharded);
    ExpectSameReports(dense, sharded, ("cap=" + std::to_string(cap)).c_str());
    EXPECT_EQ(dense.violations.size(), std::min(cap, full.violations.size()))
        << "cap=" << cap;
  }
}

TEST(ScaleAuditTest, ShardedChannelsMatchDense) {
  for (size_t planted : {size_t{0}, size_t{4}}) {
    tg_sim::GeneratedHierarchy h = Hierarchy(planted, /*seed=*/13);
    const std::string what = "planted=" + std::to_string(planted);
    std::vector<CrossLevelChannel> dense =
        tg_hier::FindCrossLevelChannels(h.graph, h.levels, 0, nullptr, AuditEngine::kDense);
    EXPECT_EQ(dense.empty(), planted == 0) << what;
    for (size_t threads : {size_t{1}, size_t{4}}) {
      tg_util::ThreadPool pool(threads);
      std::vector<CrossLevelChannel> sharded =
          tg_hier::FindCrossLevelChannels(h.graph, h.levels, 0, &pool, AuditEngine::kSharded);
      ExpectSameChannels(dense, sharded,
                         (what + " threads=" + std::to_string(threads)).c_str());
    }
    if (!dense.empty()) {
      // Capped scans truncate at the same channel.
      std::vector<CrossLevelChannel> dense_cap =
          tg_hier::FindCrossLevelChannels(h.graph, h.levels, 2, nullptr, AuditEngine::kDense);
      std::vector<CrossLevelChannel> sharded_cap =
          tg_hier::FindCrossLevelChannels(h.graph, h.levels, 2, nullptr, AuditEngine::kSharded);
      ExpectSameChannels(dense_cap, sharded_cap, (what + " cap=2").c_str());
    }
  }
}

// RandomHierarchy-shaped graphs (the pre-existing generator) go through
// the same engines; cross-check those too.
TEST(ScaleAuditTest, RandomHierarchyAgreesAcrossEngines) {
  tg_util::Prng prng(99);
  tg_sim::RandomHierarchyOptions options;
  options.levels = 4;
  options.subjects_per_level = 5;
  options.objects_per_level = 3;
  options.planted_channels = 3;
  tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
  SecurityReport dense = tg_hier::CheckSecure(h.graph, h.levels, 0, nullptr, AuditEngine::kDense);
  SecurityReport sharded =
      tg_hier::CheckSecure(h.graph, h.levels, 0, nullptr, AuditEngine::kSharded);
  ExpectSameReports(dense, sharded, "random hierarchy");
  ExpectSameChannels(
      tg_hier::FindCrossLevelChannels(h.graph, h.levels, 0, nullptr, AuditEngine::kDense),
      tg_hier::FindCrossLevelChannels(h.graph, h.levels, 0, nullptr, AuditEngine::kSharded),
      "random hierarchy channels");
}

// Forcing the dense-matrix cap low at small n makes kAuto resolve to the
// sharded engine and BocDigraph take its hybrid-row path; results must not
// change.
TEST(ScaleAuditTest, LowDenseCapForcesHybridPathsWithIdenticalResults) {
  tg_sim::GeneratedHierarchy h = Hierarchy(/*planted=*/3, /*seed=*/57);
  LevelAssignment computed_default = tg_hier::ComputeRwtgLevels(h.graph);
  SecurityReport report_default =
      tg_hier::CheckSecure(h.graph, h.levels, 0, nullptr, AuditEngine::kAuto);

  ASSERT_EQ(setenv("TG_DENSE_MATRIX_MAX_BYTES", "64", /*overwrite=*/1), 0);
  LevelAssignment computed_capped = tg_hier::ComputeRwtgLevels(h.graph);
  SecurityReport report_capped =
      tg_hier::CheckSecure(h.graph, h.levels, 0, nullptr, AuditEngine::kAuto);
  EXPECT_FALSE(tg::BitMatrix::TryCreate(64, 64).ok());
  ASSERT_EQ(unsetenv("TG_DENSE_MATRIX_MAX_BYTES"), 0);

  for (tg::VertexId v = 0; v < h.graph.VertexCount(); ++v) {
    EXPECT_EQ(computed_default.LevelOf(v), computed_capped.LevelOf(v)) << "vertex " << v;
  }
  ASSERT_EQ(computed_default.LevelCount(), computed_capped.LevelCount());
  for (tg_hier::LevelId a = 0; a < computed_default.LevelCount(); ++a) {
    for (tg_hier::LevelId b = 0; b < computed_default.LevelCount(); ++b) {
      EXPECT_EQ(computed_default.Higher(a, b), computed_capped.Higher(a, b))
          << "levels " << a << "," << b;
    }
  }
  ExpectSameReports(report_default, report_capped, "capped kAuto audit");
}

TEST(ScaleAuditTest, HierarchicalGeneratorShape) {
  tg_sim::GeneratedHierarchy h = Hierarchy(/*planted=*/0, /*seed=*/3, /*levels=*/3,
                                           /*clusters=*/2);
  EXPECT_EQ(h.graph.VertexCount(), 3u * 2u * (5u + 2u));
  EXPECT_EQ(h.level_subjects.size(), 3u);
  for (size_t level = 0; level < h.level_subjects.size(); ++level) {
    EXPECT_EQ(h.level_subjects[level].size(), 2u * 5u) << "level " << level;
    for (tg::VertexId s : h.level_subjects[level]) {
      EXPECT_EQ(h.levels.LevelOf(s), static_cast<tg_hier::LevelId>(level));
    }
  }
  // Declared order: strictly increasing chain.
  EXPECT_TRUE(h.levels.Higher(2, 0));
  EXPECT_TRUE(h.levels.Higher(2, 1));
  EXPECT_TRUE(h.levels.Higher(1, 0));
  EXPECT_FALSE(h.levels.Higher(0, 1));
  // Secure by construction without planted channels (Theorem 5.2 both
  // directions: definition and structural scan agree).
  EXPECT_TRUE(tg_hier::CheckSecure(h.graph, h.levels).secure);
  EXPECT_TRUE(tg_hier::SecureByTheorem52(h.graph, h.levels));
}

}  // namespace

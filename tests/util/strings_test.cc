#include "src/util/strings.h"

#include <gtest/gtest.h>

namespace tg_util {
namespace {

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hello  "), "hello");
  EXPECT_EQ(StripWhitespace("hello"), "hello");
  EXPECT_EQ(StripWhitespace("\t\n x \r "), "x");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto pieces = Split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[3], "c");
}

TEST(StringsTest, SplitSinglePiece) {
  auto pieces = Split("abc", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "abc");
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  auto pieces = SplitWhitespace("  a \t b\nc ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringsTest, SplitWhitespaceAllBlank) {
  EXPECT_TRUE(SplitWhitespace("   \t\n").empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"one"}, ","), "one");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("subject p", "subject"));
  EXPECT_FALSE(StartsWith("sub", "subject"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StringsTest, ParseNonNegativeInt) {
  EXPECT_EQ(ParseNonNegativeInt("0"), 0);
  EXPECT_EQ(ParseNonNegativeInt("1234"), 1234);
  EXPECT_EQ(ParseNonNegativeInt(""), -1);
  EXPECT_EQ(ParseNonNegativeInt("-3"), -1);
  EXPECT_EQ(ParseNonNegativeInt("12x"), -1);
  EXPECT_EQ(ParseNonNegativeInt("999999999999999999999999"), -1);  // overflow
}

}  // namespace
}  // namespace tg_util

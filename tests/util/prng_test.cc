#include "src/util/prng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace tg_util {
namespace {

TEST(PrngTest, DeterministicForSeed) {
  Prng a(12345);
  Prng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(PrngTest, NextBelowRespectsBound) {
  Prng prng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(prng.NextBelow(bound), bound);
    }
  }
}

TEST(PrngTest, NextBelowZeroIsZero) {
  Prng prng(7);
  EXPECT_EQ(prng.NextBelow(0), 0u);
}

TEST(PrngTest, NextBelowCoversRange) {
  Prng prng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(prng.NextBelow(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(PrngTest, NextInRangeInclusive) {
  Prng prng(42);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = prng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Prng prng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = prng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(PrngTest, NextBoolExtremes) {
  Prng prng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(prng.NextBool(0.0));
    EXPECT_TRUE(prng.NextBool(1.0));
  }
}

TEST(PrngTest, NextBoolRoughlyCalibrated) {
  Prng prng(77);
  int heads = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    heads += prng.NextBool(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kTrials, 0.25, 0.03);
}

TEST(PrngTest, ForkIsIndependentButDeterministic) {
  Prng a(10);
  Prng b(10);
  Prng fa = a.Fork();
  Prng fb = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fa.Next(), fb.Next());
  }
}

TEST(PrngTest, ShufflePermutes) {
  Prng prng(3);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = items;
  prng.Shuffle(items);
  std::vector<int> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(PrngTest, ShuffleEmptyAndSingleton) {
  Prng prng(3);
  std::vector<int> empty;
  prng.Shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {9};
  prng.Shuffle(one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(PrngTest, ChooseReturnsMember) {
  Prng prng(8);
  std::vector<int> items = {10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    int c = prng.Choose(items);
    EXPECT_TRUE(c == 10 || c == 20 || c == 30);
  }
}

}  // namespace
}  // namespace tg_util

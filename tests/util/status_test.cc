#include "src/util/status.h"

#include <gtest/gtest.h>

namespace tg_util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad vertex");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad vertex");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad vertex");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::PolicyViolation("x").code(), StatusCode::kPolicyViolation);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityIgnoresMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kPolicyViolation), "POLICY_VIOLATION");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "PARSE_ERROR");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

}  // namespace
}  // namespace tg_util

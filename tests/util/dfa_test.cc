#include "src/util/dfa.h"

#include <gtest/gtest.h>

#include <vector>

namespace tg_util {
namespace {

// a* b over alphabet {0=a, 1=b}.
Dfa MakeAStarB() {
  Dfa dfa(2);
  Dfa::State s = dfa.AddState(false);
  Dfa::State f = dfa.AddState(true);
  dfa.AddTransition(s, 0, s);
  dfa.AddTransition(s, 1, f);
  return dfa;
}

TEST(DfaTest, AcceptsMatchingWords) {
  Dfa dfa = MakeAStarB();
  EXPECT_TRUE(dfa.Accepts(std::vector<int>{1}));
  EXPECT_TRUE(dfa.Accepts(std::vector<int>{0, 1}));
  EXPECT_TRUE(dfa.Accepts(std::vector<int>{0, 0, 0, 1}));
}

TEST(DfaTest, RejectsNonMatchingWords) {
  Dfa dfa = MakeAStarB();
  EXPECT_FALSE(dfa.Accepts(std::vector<int>{}));
  EXPECT_FALSE(dfa.Accepts(std::vector<int>{0}));
  EXPECT_FALSE(dfa.Accepts(std::vector<int>{1, 1}));
  EXPECT_FALSE(dfa.Accepts(std::vector<int>{1, 0}));
}

TEST(DfaTest, UnsetTransitionsReject) {
  Dfa dfa(3);
  dfa.AddState(true);
  EXPECT_TRUE(dfa.Accepts(std::vector<int>{}));
  EXPECT_FALSE(dfa.Accepts(std::vector<int>{0}));
  EXPECT_FALSE(dfa.Accepts(std::vector<int>{2}));
}

TEST(DfaTest, StepAndRejectAbsorbing) {
  Dfa dfa = MakeAStarB();
  Dfa::State s = dfa.start();
  s = dfa.Step(s, 1);
  EXPECT_TRUE(dfa.IsAccepting(s));
  s = dfa.Step(s, 1);
  EXPECT_EQ(s, Dfa::kReject);
  s = dfa.Step(s, 0);
  EXPECT_EQ(s, Dfa::kReject);
  EXPECT_FALSE(dfa.IsAccepting(Dfa::kReject));
}

TEST(DfaTest, StateCountTracks) {
  Dfa dfa(2);
  EXPECT_EQ(dfa.state_count(), 0);
  dfa.AddState(false);
  dfa.AddState(true);
  EXPECT_EQ(dfa.state_count(), 2);
  EXPECT_EQ(dfa.alphabet_size(), 2);
}

}  // namespace
}  // namespace tg_util

#include "src/util/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace tg_util {
namespace {

// Reads a JSONL file back as lines (without the trailing newlines).
std::vector<std::string> ReadLines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

// Each test gets its own temp paths and restores the process-wide recorder
// to closed/unbounded on exit, so ordering against the server/provenance
// suites (which share FlightRecorder::Instance) cannot flip outcomes.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::string(::testing::TempDir()) + "fr_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".jsonl";
    rotated_ = path_ + ".1";
    std::remove(path_.c_str());
    std::remove(rotated_.c_str());
  }
  void TearDown() override {
    FlightRecorder::Instance().Close();
    FlightRecorder::Instance().SetMaxBytes(0);
    std::remove(path_.c_str());
    std::remove(rotated_.c_str());
  }

  std::string path_;
  std::string rotated_;
};

TEST_F(FlightRecorderTest, AppendWhileClosedIsANoOp) {
  FlightRecorder& fr = FlightRecorder::Instance();
  fr.Close();
  const uint64_t before = fr.lines_written();
  fr.Append("{\"type\":\"test\"}");
  EXPECT_EQ(fr.lines_written(), before);
}

TEST_F(FlightRecorderTest, AppendsOneParseableLinePerRecord) {
  FlightRecorder& fr = FlightRecorder::Instance();
  ASSERT_TRUE(fr.Open(path_));
  fr.Append("{\"type\":\"test\",\"n\":1}");
  fr.Append("{\"type\":\"test\",\"n\":2}");
  fr.Close();
  const std::vector<std::string> lines = ReadLines(path_);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"type\":\"test\",\"n\":1}");
  EXPECT_EQ(lines[1], "{\"type\":\"test\",\"n\":2}");
}

TEST_F(FlightRecorderTest, OverfillRotatesWithNoTornLines) {
  FlightRecorder& fr = FlightRecorder::Instance();
  ASSERT_TRUE(fr.Open(path_));
  // Cap a few lines' worth, then write far past it: every line must land
  // whole in exactly one of the two generations, and the live file must
  // hold the newest records.
  const std::string record = "{\"type\":\"test\",\"seq\":";  // + i + "}"
  fr.SetMaxBytes(256);
  const uint64_t rotations_before = fr.rotations();
  for (int i = 0; i < 100; ++i) {
    fr.Append(record + std::to_string(i) + "}");
  }
  fr.Close();
  EXPECT_GT(fr.rotations(), rotations_before);

  const std::vector<std::string> live = ReadLines(path_);
  const std::vector<std::string> old = ReadLines(rotated_);
  ASSERT_FALSE(live.empty());
  ASSERT_FALSE(old.empty());
  // No torn lines: every line in both generations parses back whole.
  int last_seq = -1;
  for (const std::vector<std::string>* gen : {&old, &live}) {
    for (const std::string& line : *gen) {
      ASSERT_TRUE(line.rfind(record, 0) == 0 && line.back() == '}') << line;
      const int seq = std::atoi(line.c_str() + record.size());
      EXPECT_GT(seq, last_seq) << "sequence broke at: " << line;
      last_seq = seq;
    }
  }
  // The final record survives in the live generation; only rotated-away
  // history is gone.
  EXPECT_EQ(live.back(), record + "99}");
  // Both generations respect the cap (a line may straddle the threshold
  // check, so allow one record of slack).
  EXPECT_LE(old.size() * (record.size() + 4), 256u + record.size() + 4);
}

TEST_F(FlightRecorderTest, RotationReplacesThePreviousGeneration) {
  FlightRecorder& fr = FlightRecorder::Instance();
  ASSERT_TRUE(fr.Open(path_));
  fr.SetMaxBytes(64);
  for (int i = 0; i < 50; ++i) {
    fr.Append("{\"type\":\"test\",\"gen\":" + std::to_string(i) + "}");
  }
  const uint64_t rotations = fr.rotations();
  EXPECT_GT(rotations, 1u);  // rotated more than once => .1 was replaced
  fr.Close();
  // Exactly two generations ever exist.
  std::ifstream second(path_ + ".2");
  EXPECT_FALSE(second.good());
}

TEST_F(FlightRecorderTest, SlowQueryLogRingBoundsAndNewestFirst) {
  SlowQueryLog& log = SlowQueryLog::Instance();
  log.Clear();
  for (uint64_t i = 0; i < SlowQueryLog::kCapacity + 10; ++i) {
    SlowQueryLog::Entry entry;
    entry.query_id = i;
    entry.elapsed_ns = 1000 + i;
    entry.verb = "can_know";
    entry.request = "can_know a b";
    log.Record(std::move(entry));
  }
  EXPECT_EQ(log.captured(), SlowQueryLog::kCapacity + 10);
  // Latest(n) is newest-first and bounded by the ring capacity.
  std::vector<SlowQueryLog::Entry> latest = log.Latest(4);
  ASSERT_EQ(latest.size(), 4u);
  EXPECT_EQ(latest[0].query_id, SlowQueryLog::kCapacity + 9);
  EXPECT_EQ(latest[3].query_id, SlowQueryLog::kCapacity + 6);
  std::vector<SlowQueryLog::Entry> all = log.Latest(SlowQueryLog::kCapacity * 2);
  EXPECT_EQ(all.size(), SlowQueryLog::kCapacity);
  log.Clear();
  EXPECT_EQ(log.captured(), 0u);
  EXPECT_TRUE(log.Latest(4).empty());
}

TEST_F(FlightRecorderTest, SlowQueryRecordMirrorsToTheRecorder) {
  FlightRecorder& fr = FlightRecorder::Instance();
  ASSERT_TRUE(fr.Open(path_));
  SlowQueryLog& log = SlowQueryLog::Instance();
  log.Clear();
  SlowQueryLog::Entry entry;
  entry.query_id = 42;
  entry.elapsed_ns = 5000;
  entry.epoch = 7;
  entry.verb = "can_share";
  entry.request = "can_share r a b";
  entry.spans_json = "[{\"kind\":\"server.request\"}]";
  log.Record(std::move(entry));
  fr.Close();
  const std::vector<std::string> lines = ReadLines(path_);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"type\":\"slow_query\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"query_id\":42"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"spans\":[{\"kind\":\"server.request\"}]"), std::string::npos)
      << lines[0];
  log.Clear();
}

TEST_F(FlightRecorderTest, SlowQueryThresholdOverrideWins) {
  const uint64_t before = SlowQueryThresholdNs();
  SetSlowQueryThresholdNs(12345);
  EXPECT_EQ(SlowQueryThresholdNs(), 12345u);
  SetSlowQueryThresholdNs(before);
}

}  // namespace
}  // namespace tg_util

#include "src/util/union_find.h"

#include <gtest/gtest.h>

#include "src/util/prng.h"

namespace tg_util {
namespace {

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.SetCount(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
  }
}

TEST(UnionFindTest, UnionMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.SetCount(), 3u);
}

TEST(UnionFindTest, UnionIdempotent) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_EQ(uf.SetCount(), 2u);
}

TEST(UnionFindTest, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_FALSE(uf.Connected(0, 4));
  EXPECT_EQ(uf.SetCount(), 3u);
}

TEST(UnionFindTest, GroupsDeterministic) {
  UnionFind uf(6);
  uf.Union(4, 5);
  uf.Union(0, 2);
  auto groups = uf.Groups();
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0], (std::vector<size_t>{0, 2}));
  EXPECT_EQ(groups[1], (std::vector<size_t>{1}));
  EXPECT_EQ(groups[2], (std::vector<size_t>{3}));
  EXPECT_EQ(groups[3], (std::vector<size_t>{4, 5}));
}

TEST(UnionFindTest, RandomizedAgainstNaive) {
  Prng prng(2024);
  constexpr size_t kN = 60;
  UnionFind uf(kN);
  // Naive labelling oracle.
  std::vector<size_t> label(kN);
  for (size_t i = 0; i < kN; ++i) {
    label[i] = i;
  }
  for (int step = 0; step < 300; ++step) {
    size_t a = prng.NextBelow(kN);
    size_t b = prng.NextBelow(kN);
    uf.Union(a, b);
    size_t la = label[a];
    size_t lb = label[b];
    if (la != lb) {
      for (auto& l : label) {
        if (l == lb) {
          l = la;
        }
      }
    }
    // Spot-check connectivity agreement.
    size_t x = prng.NextBelow(kN);
    size_t y = prng.NextBelow(kN);
    EXPECT_EQ(uf.Connected(x, y), label[x] == label[y]);
  }
}

}  // namespace
}  // namespace tg_util

#include "src/util/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/thread_pool.h"

namespace tg_util {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = MetricsEnabled();
    SetMetricsEnabled(true);
  }
  void TearDown() override { SetMetricsEnabled(was_enabled_); }

  bool was_enabled_ = true;
};

TEST_F(TraceTest, KindNamesAreDistinct) {
  EXPECT_STREQ(TraceKindName(TraceKind::kSnapshotBuild), "snapshot_build");
  EXPECT_STREQ(TraceKindName(TraceKind::kProductBfs), "product_bfs");
  EXPECT_STREQ(TraceKindName(TraceKind::kRuleApply), "rule_apply");
  EXPECT_STREQ(TraceKindName(TraceKind::kCacheRebuild), "cache_rebuild");
}

TEST_F(TraceTest, RecordsEventsOldestFirst) {
  TraceBuffer buffer(8);
  buffer.Record(TraceKind::kSnapshotBuild, 10, 5, 100, 200);
  buffer.Record(TraceKind::kProductBfs, 20, 7, 300, 400);
  std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceKind::kSnapshotBuild);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].start_ns, 10u);
  EXPECT_EQ(events[0].duration_ns, 5u);
  EXPECT_EQ(events[0].arg0, 100u);
  EXPECT_EQ(events[0].arg1, 200u);
  EXPECT_EQ(events[1].kind, TraceKind::kProductBfs);
  EXPECT_EQ(events[1].seq, 1u);
}

TEST_F(TraceTest, RingOverwritesOldestOnWraparound) {
  constexpr size_t kCapacity = 4;
  TraceBuffer buffer(kCapacity);
  for (uint64_t i = 0; i < kCapacity + 3; ++i) {
    buffer.Record(TraceKind::kProductBfs, i, 1, i, 0);
  }
  EXPECT_EQ(buffer.total_recorded(), kCapacity + 3);
  std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), kCapacity);
  // The ring retains the last kCapacity events, in order: seq 3..6.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 3 + i);
    EXPECT_EQ(events[i].arg0, 3 + i);
  }
}

TEST_F(TraceTest, ClearEmptiesRetainedEventsAndCount) {
  TraceBuffer buffer(4);
  buffer.Record(TraceKind::kRuleApply, 0, 1);
  buffer.Clear();
  EXPECT_EQ(buffer.total_recorded(), 0u);
  EXPECT_TRUE(buffer.Events().empty());
  // The buffer is reusable after Clear.
  buffer.Record(TraceKind::kRuleApply, 0, 1);
  EXPECT_EQ(buffer.total_recorded(), 1u);
}

TEST_F(TraceTest, SpanRecordsIntoGlobalInstance) {
  TraceBuffer::Instance().Clear();
  {
    TraceSpan span(TraceKind::kDeFactoSaturate, 1, 2);
    span.set_args(7, 9);
  }
  std::vector<TraceEvent> events = TraceBuffer::Instance().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceKind::kDeFactoSaturate);
  EXPECT_EQ(events[0].arg0, 7u);
  EXPECT_EQ(events[0].arg1, 9u);
}

TEST_F(TraceTest, DisabledModeRecordsNothing) {
  TraceBuffer::Instance().Clear();
  SetMetricsEnabled(false);
  {
    TraceSpan span(TraceKind::kMonitorDecision);
  }
  SetMetricsEnabled(true);
  EXPECT_EQ(TraceBuffer::Instance().total_recorded(), 0u);
}

TEST_F(TraceTest, ConcurrentRecordsAllLand) {
  TraceBuffer buffer(64);
  ThreadPool pool(4);
  pool.ParallelFor(500, [&](size_t i) {
    buffer.Record(TraceKind::kProductBfs, i, 1, i, 0);
  });
  EXPECT_EQ(buffer.total_recorded(), 500u);
  std::vector<TraceEvent> events = buffer.Events();
  EXPECT_EQ(events.size(), 64u);
  // Sequence numbers are unique and consecutive within the retained window.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST_F(TraceTest, RenderTextShowsMostRecentLimit) {
  TraceBuffer buffer(16);
  for (uint64_t i = 0; i < 5; ++i) {
    buffer.Record(TraceKind::kBatchRows, i * 1000, 500, i, 4);
  }
  std::string all = buffer.RenderText();
  std::string last_two = buffer.RenderText(2);
  EXPECT_NE(all.find("batch_rows"), std::string::npos) << all;
  EXPECT_EQ(last_two.find("0 batch_rows"), std::string::npos) << last_two;
  EXPECT_NE(last_two.find("3 batch_rows"), std::string::npos) << last_two;
  EXPECT_NE(last_two.find("4 batch_rows"), std::string::npos) << last_two;
}

TEST_F(TraceTest, NowNsIsMonotonic) {
  uint64_t a = TraceBuffer::NowNs();
  uint64_t b = TraceBuffer::NowNs();
  EXPECT_LE(a, b);
}

// Regression: RenderText on an overfilled ring must list events strictly
// by seq (oldest retained first) and disclose the loss — an earlier
// slot-order walk would interleave wrapped and unwrapped slots.
TEST_F(TraceTest, RenderTextStaysSeqOrderedAndReportsDropsAfterOverfill) {
  constexpr size_t kCapacity = 4;
  constexpr uint64_t kTotal = 11;  // overfills nearly 3x, mid-wrap
  TraceBuffer buffer(kCapacity);
  for (uint64_t i = 0; i < kTotal; ++i) {
    buffer.Record(TraceKind::kProductBfs, i, 1, i, 0);
  }
  EXPECT_EQ(buffer.dropped(), kTotal - kCapacity);

  std::string text = buffer.RenderText();
  std::vector<uint64_t> seqs;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    std::string line = text.substr(pos, eol - pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    seqs.push_back(std::stoull(line));
  }
  ASSERT_EQ(seqs.size(), kCapacity);
  EXPECT_EQ(seqs.front(), kTotal - kCapacity);
  for (size_t i = 1; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], seqs[i - 1] + 1) << text;
  }
  EXPECT_NE(text.find("# dropped 7"), std::string::npos) << text;
}

TEST_F(TraceTest, RecordStampsAmbientContextAndFreshSpanIds) {
  TraceBuffer buffer(8);
  uint64_t first = 0;
  uint64_t second = 0;
  {
    ScopedTraceContext scope(TraceContext{42, 7});
    first = buffer.Record(TraceKind::kProductBfs, 0, 1);
    second = buffer.Record(TraceKind::kProductBfs, 1, 1);
  }
  uint64_t background = buffer.Record(TraceKind::kProductBfs, 2, 1);

  std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].query_id, 42u);
  EXPECT_EQ(events[0].parent_span, 7u);
  EXPECT_EQ(events[0].span_id, first);
  EXPECT_EQ(events[1].span_id, second);
  EXPECT_NE(first, second);
  EXPECT_NE(first, 0u);
  EXPECT_EQ(events[2].query_id, 0u);
  EXPECT_EQ(events[2].parent_span, 0u);
  EXPECT_EQ(events[2].span_id, background);
}

TEST_F(TraceTest, NestedSpansFormParentChain) {
  TraceBuffer::Instance().Clear();
  {
    ScopedTraceContext scope(TraceContext{9, 0});
    TraceSpan outer(TraceKind::kCacheRebuild);
    { TraceSpan inner(TraceKind::kProductBfs); }
  }
  std::vector<TraceEvent> events = TraceBuffer::Instance().Events();
  ASSERT_EQ(events.size(), 2u);  // inner closed (and recorded) first
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.kind, TraceKind::kProductBfs);
  EXPECT_EQ(outer.kind, TraceKind::kCacheRebuild);
  EXPECT_EQ(inner.query_id, 9u);
  EXPECT_EQ(outer.query_id, 9u);
  EXPECT_EQ(outer.parent_span, 0u);
  EXPECT_EQ(inner.parent_span, outer.span_id);
}

TEST_F(TraceTest, QueryScopeAllocatesIdAndNestedScopeJoins) {
  TraceBuffer::Instance().Clear();
  uint64_t root_id = 0;
  {
    QueryScope root(QueryKind::kCheckSecure);
    root_id = root.query_id();
    EXPECT_TRUE(root.is_root());
    EXPECT_NE(root_id, 0u);
    {
      QueryScope nested(QueryKind::kKnowableAll);
      EXPECT_FALSE(nested.is_root());
      EXPECT_EQ(nested.query_id(), root_id);
      nested.set_result(3);
    }
    root.set_verdict(true);
  }
  // Outside any scope the next query gets a fresh id.
  {
    QueryScope other(QueryKind::kCanKnow);
    EXPECT_TRUE(other.is_root());
    EXPECT_NE(other.query_id(), root_id);
  }

  std::vector<TraceEvent> events = TraceBuffer::Instance().Events();
  ASSERT_EQ(events.size(), 3u);
  const TraceEvent& nested = events[0];
  const TraceEvent& root = events[1];
  EXPECT_EQ(nested.query_id, root_id);
  EXPECT_EQ(root.query_id, root_id);
  EXPECT_EQ(nested.parent_span, root.span_id);
  EXPECT_EQ(root.parent_span, 0u);
  EXPECT_EQ(nested.arg0, static_cast<uint64_t>(QueryKind::kKnowableAll));
  EXPECT_EQ(nested.arg1, 3u);
  EXPECT_EQ(root.arg1, 1u);  // verdict true
}

TEST_F(TraceTest, ParallelForForwardsContextToWorkers) {
  TraceBuffer::Instance().Clear();
  ThreadPool pool(4);
  uint64_t query_id = 0;
  {
    QueryScope query(QueryKind::kBatchRows);
    query_id = query.query_id();
    pool.ParallelFor(64, [&](size_t) { TraceSpan span(TraceKind::kBitReach); });
  }
  std::vector<TraceEvent> events = TraceBuffer::Instance().Events();
  ASSERT_EQ(events.size(), 65u);
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.query_id, query_id);
  }
}

TEST_F(TraceTest, DroppedGaugeMirrorsInstanceRingLoss) {
  TraceBuffer& ring = TraceBuffer::Instance();
  ring.Clear();
  EXPECT_EQ(GetGauge("trace.dropped").value(), 0);
  const uint64_t overfill = static_cast<uint64_t>(ring.capacity()) + 5;
  for (uint64_t i = 0; i < overfill; ++i) {
    ring.Record(TraceKind::kProductBfs, i, 1);
  }
  EXPECT_EQ(ring.dropped(), 5u);
  EXPECT_EQ(GetGauge("trace.dropped").value(), 5);
  ring.Clear();
  EXPECT_EQ(GetGauge("trace.dropped").value(), 0);
}

TEST_F(TraceTest, SpanProfileAggregatesPerKindDurations) {
  ResetSpanProfile();
  TraceBuffer buffer(8);  // a local ring still feeds nothing...
  buffer.Record(TraceKind::kRuleApply, 0, 1000);
  EXPECT_EQ(SpanHistogram(TraceKind::kRuleApply).count(), 0u);
  // ...but the process ring does.
  TraceBuffer::Instance().Record(TraceKind::kRuleApply, 0, 1000);
  TraceBuffer::Instance().Record(TraceKind::kRuleApply, 0, 3000);
  Histogram& h = SpanHistogram(TraceKind::kRuleApply);
  EXPECT_EQ(h.count(), 2u);
  std::string profile = RenderSpanProfileText();
  EXPECT_NE(profile.find("rule_apply"), std::string::npos) << profile;
  EXPECT_NE(profile.find("count=2"), std::string::npos) << profile;
  ResetSpanProfile();
  EXPECT_EQ(SpanHistogram(TraceKind::kRuleApply).count(), 0u);
}

// --- Query-span sampling ---------------------------------------------------

// Restores the sample period to 0 (record everything) even when an
// assertion fails mid-test, so later suites keep full-fidelity tracing.
class TraceSamplingTest : public TraceTest {
 protected:
  void TearDown() override {
    SetQuerySamplePeriod(0);
    TraceTest::TearDown();
  }
};

TEST_F(TraceSamplingTest, PeriodRoundsDownToAPowerOfTwo) {
  SetQuerySamplePeriod(0);
  EXPECT_EQ(QuerySampleMask(), 0u);
  SetQuerySamplePeriod(1);
  EXPECT_EQ(QuerySampleMask(), 0u);  // every query records
  SetQuerySamplePeriod(4);
  EXPECT_EQ(QuerySampleMask(), 3u);
  SetQuerySamplePeriod(6);  // not a power of two: rounds down to 4
  EXPECT_EQ(QuerySampleMask(), 3u);
  SetQuerySamplePeriod(64);
  EXPECT_EQ(QuerySampleMask(), 63u);
}

TEST_F(TraceSamplingTest, SampleableScopesArmOneInPeriod) {
  SetQuerySamplePeriod(4);
  // The per-thread tick counter's phase depends on what ran before on
  // this thread, so assert the rate over whole periods, not positions.
  int armed = 0;
  for (int i = 0; i < 8; ++i) {
    QueryScope scope(QueryKind::kCanKnow, 0, QueryScope::kSampleable);
    armed += scope.query_id() != 0 ? 1 : 0;
  }
  EXPECT_EQ(armed, 2);

  // kAlways scopes ignore the period entirely.
  for (int i = 0; i < 3; ++i) {
    QueryScope scope(QueryKind::kServerRequest);
    EXPECT_NE(scope.query_id(), 0u);
  }
}

TEST_F(TraceSamplingTest, NestedScopesInheritTheEnclosingQueriesFate) {
  SetQuerySamplePeriod(4);
  // Inside an armed (kAlways) query, a kSampleable scope must arm and
  // join the same query id regardless of the tick counter: a kept query
  // carries its complete span tree, a dropped one records nothing.
  for (int i = 0; i < 8; ++i) {
    QueryScope root(QueryKind::kServerRequest);
    ASSERT_NE(root.query_id(), 0u);
    QueryScope nested(QueryKind::kCanKnow, 0, QueryScope::kSampleable);
    EXPECT_EQ(nested.query_id(), root.query_id());
    EXPECT_FALSE(nested.is_root());
  }
}

TEST_F(TraceSamplingTest, TraceDetailArmsWithTheEnclosingQueryOnly) {
  SetQuerySamplePeriod(0);
  EXPECT_TRUE(TraceDetailArmed());  // no sampling: detail always on
  SetQuerySamplePeriod(4);
  EXPECT_FALSE(TraceDetailArmed());  // sampling, outside any query
  {
    QueryScope root(QueryKind::kServerRequest);
    EXPECT_TRUE(TraceDetailArmed());  // inside a recorded query
  }
  EXPECT_FALSE(TraceDetailArmed());
}

TEST_F(TraceSamplingTest, SampledOutScopeRecordsNoEventAndNoContext) {
  SetQuerySamplePeriod(1u << 30);  // effectively never tick
  TraceBuffer::Instance().Clear();
  {
    QueryScope scope(QueryKind::kCanKnow, 0, QueryScope::kSampleable);
    EXPECT_EQ(scope.query_id(), 0u);
    EXPECT_FALSE(scope.is_root());
    // A sampled-out scope must not leak a context that later spans would
    // attach to.
    EXPECT_EQ(CurrentTraceContext().query_id, 0u);
    TraceSpan span(TraceKind::kProductBfs, 0, 0, TraceSpan::kSampleable);
    EXPECT_FALSE(span.armed());
  }
  EXPECT_TRUE(TraceBuffer::Instance().Events().empty());
}

TEST_F(TraceSamplingTest, SampleableSpansRecordInsideRecordedQueries) {
  SetQuerySamplePeriod(4);
  TraceBuffer::Instance().Clear();
  {
    QueryScope root(QueryKind::kServerRequest);
    ASSERT_NE(root.query_id(), 0u);
    TraceSpan span(TraceKind::kSnapshotBuild, 0, 0, TraceSpan::kSampleable);
    EXPECT_TRUE(span.armed());
  }
  // The span and the query event both landed, stamped with one query id.
  std::vector<TraceEvent> events = TraceBuffer::Instance().Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceKind::kSnapshotBuild);
  EXPECT_EQ(events[1].kind, TraceKind::kQuery);
  EXPECT_EQ(events[0].query_id, events[1].query_id);
}

}  // namespace
}  // namespace tg_util

#include "src/util/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/thread_pool.h"

namespace tg_util {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = MetricsEnabled();
    SetMetricsEnabled(true);
  }
  void TearDown() override { SetMetricsEnabled(was_enabled_); }

  bool was_enabled_ = true;
};

TEST_F(TraceTest, KindNamesAreDistinct) {
  EXPECT_STREQ(TraceKindName(TraceKind::kSnapshotBuild), "snapshot_build");
  EXPECT_STREQ(TraceKindName(TraceKind::kProductBfs), "product_bfs");
  EXPECT_STREQ(TraceKindName(TraceKind::kRuleApply), "rule_apply");
  EXPECT_STREQ(TraceKindName(TraceKind::kCacheRebuild), "cache_rebuild");
}

TEST_F(TraceTest, RecordsEventsOldestFirst) {
  TraceBuffer buffer(8);
  buffer.Record(TraceKind::kSnapshotBuild, 10, 5, 100, 200);
  buffer.Record(TraceKind::kProductBfs, 20, 7, 300, 400);
  std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceKind::kSnapshotBuild);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].start_ns, 10u);
  EXPECT_EQ(events[0].duration_ns, 5u);
  EXPECT_EQ(events[0].arg0, 100u);
  EXPECT_EQ(events[0].arg1, 200u);
  EXPECT_EQ(events[1].kind, TraceKind::kProductBfs);
  EXPECT_EQ(events[1].seq, 1u);
}

TEST_F(TraceTest, RingOverwritesOldestOnWraparound) {
  constexpr size_t kCapacity = 4;
  TraceBuffer buffer(kCapacity);
  for (uint64_t i = 0; i < kCapacity + 3; ++i) {
    buffer.Record(TraceKind::kProductBfs, i, 1, i, 0);
  }
  EXPECT_EQ(buffer.total_recorded(), kCapacity + 3);
  std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), kCapacity);
  // The ring retains the last kCapacity events, in order: seq 3..6.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 3 + i);
    EXPECT_EQ(events[i].arg0, 3 + i);
  }
}

TEST_F(TraceTest, ClearEmptiesRetainedEventsAndCount) {
  TraceBuffer buffer(4);
  buffer.Record(TraceKind::kRuleApply, 0, 1);
  buffer.Clear();
  EXPECT_EQ(buffer.total_recorded(), 0u);
  EXPECT_TRUE(buffer.Events().empty());
  // The buffer is reusable after Clear.
  buffer.Record(TraceKind::kRuleApply, 0, 1);
  EXPECT_EQ(buffer.total_recorded(), 1u);
}

TEST_F(TraceTest, SpanRecordsIntoGlobalInstance) {
  TraceBuffer::Instance().Clear();
  {
    TraceSpan span(TraceKind::kDeFactoSaturate, 1, 2);
    span.set_args(7, 9);
  }
  std::vector<TraceEvent> events = TraceBuffer::Instance().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceKind::kDeFactoSaturate);
  EXPECT_EQ(events[0].arg0, 7u);
  EXPECT_EQ(events[0].arg1, 9u);
}

TEST_F(TraceTest, DisabledModeRecordsNothing) {
  TraceBuffer::Instance().Clear();
  SetMetricsEnabled(false);
  {
    TraceSpan span(TraceKind::kMonitorDecision);
  }
  SetMetricsEnabled(true);
  EXPECT_EQ(TraceBuffer::Instance().total_recorded(), 0u);
}

TEST_F(TraceTest, ConcurrentRecordsAllLand) {
  TraceBuffer buffer(64);
  ThreadPool pool(4);
  pool.ParallelFor(500, [&](size_t i) {
    buffer.Record(TraceKind::kProductBfs, i, 1, i, 0);
  });
  EXPECT_EQ(buffer.total_recorded(), 500u);
  std::vector<TraceEvent> events = buffer.Events();
  EXPECT_EQ(events.size(), 64u);
  // Sequence numbers are unique and consecutive within the retained window.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
}

TEST_F(TraceTest, RenderTextShowsMostRecentLimit) {
  TraceBuffer buffer(16);
  for (uint64_t i = 0; i < 5; ++i) {
    buffer.Record(TraceKind::kBatchRows, i * 1000, 500, i, 4);
  }
  std::string all = buffer.RenderText();
  std::string last_two = buffer.RenderText(2);
  EXPECT_NE(all.find("batch_rows"), std::string::npos) << all;
  EXPECT_EQ(last_two.find("0 batch_rows"), std::string::npos) << last_two;
  EXPECT_NE(last_two.find("3 batch_rows"), std::string::npos) << last_two;
  EXPECT_NE(last_two.find("4 batch_rows"), std::string::npos) << last_two;
}

TEST_F(TraceTest, NowNsIsMonotonic) {
  uint64_t a = TraceBuffer::NowNs();
  uint64_t b = TraceBuffer::NowNs();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace tg_util

#include "src/util/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/util/thread_pool.h"

namespace tg_util {
namespace {

// Every test here runs with metrics force-enabled and restores the previous
// state on exit, so ordering against other suites (or a TG_METRICS=0
// environment) cannot flip outcomes.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = MetricsEnabled();
    SetMetricsEnabled(true);
  }
  void TearDown() override { SetMetricsEnabled(was_enabled_); }

  bool was_enabled_ = true;
};

TEST_F(MetricsTest, CounterAddsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST_F(MetricsTest, GaugeSetAddReset) {
  Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.value(), -3);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST_F(MetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds only the sample 0; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  // Far past 2^39 clamps into the last bucket rather than overflowing.
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 8u);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBuckets - 1), UINT64_MAX);
}

TEST_F(MetricsTest, HistogramCountSumMeanPercentiles) {
  Histogram histogram;
  EXPECT_EQ(histogram.PercentileUpperBound(50), 0u);
  for (uint64_t sample : {1u, 2u, 3u, 100u}) {
    histogram.Observe(sample);
  }
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum(), 106u);
  EXPECT_DOUBLE_EQ(histogram.mean(), 26.5);
  // Ranked by bucket: p50 falls in bucket(2) = [2,4) whose upper bound is 4;
  // p99 falls in bucket(100)'s range, upper bound 128.
  EXPECT_EQ(histogram.PercentileUpperBound(50), 4u);
  EXPECT_EQ(histogram.PercentileUpperBound(99), 128u);
  EXPECT_EQ(histogram.PercentileUpperBound(0), 2u);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum(), 0u);
}

TEST_F(MetricsTest, PercentileShorthandsMatchPercentileUpperBound) {
  Histogram histogram;
  // Empty histogram: every percentile is 0.
  EXPECT_EQ(histogram.P50(), 0u);
  EXPECT_EQ(histogram.P95(), 0u);
  EXPECT_EQ(histogram.P99(), 0u);

  // 100 samples spread across buckets: 50 in [1,2), 45 in [16,32),
  // 5 in [1024,2048).  Rank 50 lands in bucket(1) (upper bound 2), rank 95
  // in bucket(16) (upper bound 32), rank 99 in bucket(1024) (upper bound
  // 2048).
  for (int i = 0; i < 50; ++i) {
    histogram.Observe(1);
  }
  for (int i = 0; i < 45; ++i) {
    histogram.Observe(20);
  }
  for (int i = 0; i < 5; ++i) {
    histogram.Observe(1500);
  }
  EXPECT_EQ(histogram.P50(), histogram.PercentileUpperBound(50.0));
  EXPECT_EQ(histogram.P95(), histogram.PercentileUpperBound(95.0));
  EXPECT_EQ(histogram.P99(), histogram.PercentileUpperBound(99.0));
  EXPECT_EQ(histogram.P50(), 2u);
  EXPECT_EQ(histogram.P95(), 32u);
  EXPECT_EQ(histogram.P99(), 2048u);
  // Monotone in p, by construction.
  EXPECT_LE(histogram.P50(), histogram.P95());
  EXPECT_LE(histogram.P95(), histogram.P99());
}

TEST_F(MetricsTest, PercentilesOfSingleBucketDistribution) {
  Histogram histogram;
  for (int i = 0; i < 1000; ++i) {
    histogram.Observe(100);  // bucket [64,128)
  }
  EXPECT_EQ(histogram.P50(), 128u);
  EXPECT_EQ(histogram.P95(), 128u);
  EXPECT_EQ(histogram.P99(), 128u);
}

TEST_F(MetricsTest, RenderTextIncludesPercentileColumns) {
  Histogram& histogram = GetHistogram("test.metrics.pct_text");
  histogram.Reset();
  histogram.Observe(100);
  std::string text = MetricsRegistry::Instance().RenderText();
  size_t pos = text.find("test.metrics.pct_text");
  ASSERT_NE(pos, std::string::npos) << text;
  std::string line = text.substr(pos, text.find('\n', pos) - pos);
  EXPECT_NE(line.find("p50<=128"), std::string::npos) << line;
  EXPECT_NE(line.find("p95<=128"), std::string::npos) << line;
  EXPECT_NE(line.find("p99<=128"), std::string::npos) << line;
}

TEST_F(MetricsTest, ConcurrentCounterAddsSumExactly) {
  Counter& counter = GetCounter("test.metrics.concurrent");
  counter.Reset();
  ThreadPool pool(4);
  pool.ParallelFor(10000, [&](size_t) { counter.Add(); });
  EXPECT_EQ(counter.value(), 10000u);
  pool.ParallelFor(1000, [&](size_t i) { counter.Add(i); });
  EXPECT_EQ(counter.value(), 10000u + 999u * 1000u / 2u);
}

TEST_F(MetricsTest, ConcurrentHistogramObservesSumExactly) {
  Histogram& histogram = GetHistogram("test.metrics.concurrent_hist");
  histogram.Reset();
  ThreadPool pool(4);
  pool.ParallelFor(5000, [&](size_t i) { histogram.Observe(i % 7); });
  EXPECT_EQ(histogram.count(), 5000u);
  uint64_t expected_sum = 0;
  for (size_t i = 0; i < 5000; ++i) {
    expected_sum += i % 7;
  }
  EXPECT_EQ(histogram.sum(), expected_sum);
  uint64_t bucket_total = 0;
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    bucket_total += histogram.bucket(b);
  }
  EXPECT_EQ(bucket_total, 5000u);
}

TEST_F(MetricsTest, DisabledModeIsNoOp) {
  Counter& counter = GetCounter("test.metrics.disabled");
  Gauge& gauge = GetGauge("test.metrics.disabled_gauge");
  Histogram& histogram = GetHistogram("test.metrics.disabled_hist");
  counter.Reset();
  gauge.Reset();
  histogram.Reset();
  SetMetricsEnabled(false);
  counter.Add(5);
  gauge.Set(5);
  histogram.Observe(5);
  {
    ScopedTimer timer(histogram);
  }
  SetMetricsEnabled(true);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(histogram.count(), 0u);
}

TEST_F(MetricsTest, RegistryReturnsStableIdentity) {
  Counter& a = GetCounter("test.metrics.identity");
  Counter& b = GetCounter("test.metrics.identity");
  EXPECT_EQ(&a, &b);
  a.Reset();
  a.Add(3);
  EXPECT_EQ(MetricsRegistry::Instance().CounterValue("test.metrics.identity"), 3u);
  // Reads through CounterValue do not register instruments as a side effect.
  EXPECT_EQ(MetricsRegistry::Instance().CounterValue("test.metrics.never_created"), 0u);
}

TEST_F(MetricsTest, ScopedTimerObservesOneSample) {
  Histogram& histogram = GetHistogram("test.metrics.timer");
  histogram.Reset();
  {
    ScopedTimer timer(histogram);
  }
  EXPECT_EQ(histogram.count(), 1u);
}

TEST_F(MetricsTest, RenderJsonIsFlatAndContainsInstruments) {
  Counter& counter = GetCounter("test.metrics.json_counter");
  Histogram& histogram = GetHistogram("test.metrics.json_hist");
  counter.Reset();
  histogram.Reset();
  counter.Add(12);
  histogram.Observe(9);
  std::string json = MetricsRegistry::Instance().RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"test.metrics.json_counter\":12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.metrics.json_hist.count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.metrics.json_hist.sum\":9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.metrics.json_hist.p50\":"), std::string::npos) << json;
}

TEST_F(MetricsTest, RenderTextListsSortedNames) {
  GetCounter("test.metrics.text_b").Reset();
  GetCounter("test.metrics.text_a").Reset();
  GetCounter("test.metrics.text_a").Add(1);
  GetCounter("test.metrics.text_b").Add(2);
  std::string text = MetricsRegistry::Instance().RenderText();
  size_t pos_a = text.find("test.metrics.text_a 1");
  size_t pos_b = text.find("test.metrics.text_b 2");
  ASSERT_NE(pos_a, std::string::npos) << text;
  ASSERT_NE(pos_b, std::string::npos) << text;
  EXPECT_LT(pos_a, pos_b);
}

TEST_F(MetricsTest, ResetAllZeroesButKeepsReferencesValid) {
  Counter& counter = GetCounter("test.metrics.reset_all");
  counter.Add(7);
  MetricsRegistry::Instance().ResetAll();
  EXPECT_EQ(counter.value(), 0u);
  counter.Add(1);
  EXPECT_EQ(MetricsRegistry::Instance().CounterValue("test.metrics.reset_all"), 1u);
}

}  // namespace
}  // namespace tg_util

#include "src/util/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "src/util/thread_pool.h"

namespace tg_util {
namespace {

// Every test here runs with metrics force-enabled and restores the previous
// state on exit, so ordering against other suites (or a TG_METRICS=0
// environment) cannot flip outcomes.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = MetricsEnabled();
    SetMetricsEnabled(true);
  }
  void TearDown() override { SetMetricsEnabled(was_enabled_); }

  bool was_enabled_ = true;
};

TEST_F(MetricsTest, CounterAddsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST_F(MetricsTest, GaugeSetAddReset) {
  Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.value(), -3);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST_F(MetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds only the sample 0; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  // Far past 2^39 clamps into the last bucket rather than overflowing.
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 8u);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBuckets - 1), UINT64_MAX);
}

TEST_F(MetricsTest, HistogramCountSumMeanPercentiles) {
  Histogram histogram;
  EXPECT_EQ(histogram.PercentileUpperBound(50), 0u);
  for (uint64_t sample : {1u, 2u, 3u, 100u}) {
    histogram.Observe(sample);
  }
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum(), 106u);
  EXPECT_DOUBLE_EQ(histogram.mean(), 26.5);
  // Ranked by bucket: p50 falls in bucket(2) = [2,4) whose upper bound is 4;
  // p99 falls in bucket(100)'s range, upper bound 128.
  EXPECT_EQ(histogram.PercentileUpperBound(50), 4u);
  EXPECT_EQ(histogram.PercentileUpperBound(99), 128u);
  EXPECT_EQ(histogram.PercentileUpperBound(0), 2u);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum(), 0u);
}

TEST_F(MetricsTest, PercentileShorthandsMatchPercentileUpperBound) {
  Histogram histogram;
  // Empty histogram: every percentile is 0.
  EXPECT_EQ(histogram.P50(), 0u);
  EXPECT_EQ(histogram.P95(), 0u);
  EXPECT_EQ(histogram.P99(), 0u);

  // 100 samples spread across buckets: 50 in [1,2), 45 in [16,32),
  // 5 in [1024,2048).  Rank 50 lands in bucket(1) (upper bound 2), rank 95
  // in bucket(16) (upper bound 32), rank 99 in bucket(1024) (upper bound
  // 2048).
  for (int i = 0; i < 50; ++i) {
    histogram.Observe(1);
  }
  for (int i = 0; i < 45; ++i) {
    histogram.Observe(20);
  }
  for (int i = 0; i < 5; ++i) {
    histogram.Observe(1500);
  }
  EXPECT_EQ(histogram.P50(), histogram.PercentileUpperBound(50.0));
  EXPECT_EQ(histogram.P95(), histogram.PercentileUpperBound(95.0));
  EXPECT_EQ(histogram.P99(), histogram.PercentileUpperBound(99.0));
  EXPECT_EQ(histogram.P50(), 2u);
  EXPECT_EQ(histogram.P95(), 32u);
  EXPECT_EQ(histogram.P99(), 2048u);
  // Monotone in p, by construction.
  EXPECT_LE(histogram.P50(), histogram.P95());
  EXPECT_LE(histogram.P95(), histogram.P99());
}

TEST_F(MetricsTest, PercentilesOfSingleBucketDistribution) {
  Histogram histogram;
  for (int i = 0; i < 1000; ++i) {
    histogram.Observe(100);  // bucket [64,128)
  }
  EXPECT_EQ(histogram.P50(), 128u);
  EXPECT_EQ(histogram.P95(), 128u);
  EXPECT_EQ(histogram.P99(), 128u);
}

TEST_F(MetricsTest, RenderTextIncludesPercentileColumns) {
  Histogram& histogram = GetHistogram("test.metrics.pct_text");
  histogram.Reset();
  histogram.Observe(100);
  std::string text = MetricsRegistry::Instance().RenderText();
  size_t pos = text.find("test.metrics.pct_text");
  ASSERT_NE(pos, std::string::npos) << text;
  std::string line = text.substr(pos, text.find('\n', pos) - pos);
  EXPECT_NE(line.find("p50<=128"), std::string::npos) << line;
  EXPECT_NE(line.find("p95<=128"), std::string::npos) << line;
  EXPECT_NE(line.find("p99<=128"), std::string::npos) << line;
}

TEST_F(MetricsTest, ConcurrentCounterAddsSumExactly) {
  Counter& counter = GetCounter("test.metrics.concurrent");
  counter.Reset();
  ThreadPool pool(4);
  pool.ParallelFor(10000, [&](size_t) { counter.Add(); });
  EXPECT_EQ(counter.value(), 10000u);
  pool.ParallelFor(1000, [&](size_t i) { counter.Add(i); });
  EXPECT_EQ(counter.value(), 10000u + 999u * 1000u / 2u);
}

TEST_F(MetricsTest, ConcurrentHistogramObservesSumExactly) {
  Histogram& histogram = GetHistogram("test.metrics.concurrent_hist");
  histogram.Reset();
  ThreadPool pool(4);
  pool.ParallelFor(5000, [&](size_t i) { histogram.Observe(i % 7); });
  EXPECT_EQ(histogram.count(), 5000u);
  uint64_t expected_sum = 0;
  for (size_t i = 0; i < 5000; ++i) {
    expected_sum += i % 7;
  }
  EXPECT_EQ(histogram.sum(), expected_sum);
  uint64_t bucket_total = 0;
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    bucket_total += histogram.bucket(b);
  }
  EXPECT_EQ(bucket_total, 5000u);
}

TEST_F(MetricsTest, DisabledModeIsNoOp) {
  Counter& counter = GetCounter("test.metrics.disabled");
  Gauge& gauge = GetGauge("test.metrics.disabled_gauge");
  Histogram& histogram = GetHistogram("test.metrics.disabled_hist");
  counter.Reset();
  gauge.Reset();
  histogram.Reset();
  SetMetricsEnabled(false);
  counter.Add(5);
  gauge.Set(5);
  histogram.Observe(5);
  {
    ScopedTimer timer(histogram);
  }
  SetMetricsEnabled(true);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(histogram.count(), 0u);
}

TEST_F(MetricsTest, RegistryReturnsStableIdentity) {
  Counter& a = GetCounter("test.metrics.identity");
  Counter& b = GetCounter("test.metrics.identity");
  EXPECT_EQ(&a, &b);
  a.Reset();
  a.Add(3);
  EXPECT_EQ(MetricsRegistry::Instance().CounterValue("test.metrics.identity"), 3u);
  // Reads through CounterValue do not register instruments as a side effect.
  EXPECT_EQ(MetricsRegistry::Instance().CounterValue("test.metrics.never_created"), 0u);
}

TEST_F(MetricsTest, ScopedTimerObservesOneSample) {
  Histogram& histogram = GetHistogram("test.metrics.timer");
  histogram.Reset();
  {
    ScopedTimer timer(histogram);
  }
  EXPECT_EQ(histogram.count(), 1u);
}

TEST_F(MetricsTest, RenderJsonIsFlatAndContainsInstruments) {
  Counter& counter = GetCounter("test.metrics.json_counter");
  Histogram& histogram = GetHistogram("test.metrics.json_hist");
  counter.Reset();
  histogram.Reset();
  counter.Add(12);
  histogram.Observe(9);
  std::string json = MetricsRegistry::Instance().RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"test.metrics.json_counter\":12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.metrics.json_hist.count\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.metrics.json_hist.sum\":9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.metrics.json_hist.p50\":"), std::string::npos) << json;
}

TEST_F(MetricsTest, RenderTextListsSortedNames) {
  GetCounter("test.metrics.text_b").Reset();
  GetCounter("test.metrics.text_a").Reset();
  GetCounter("test.metrics.text_a").Add(1);
  GetCounter("test.metrics.text_b").Add(2);
  std::string text = MetricsRegistry::Instance().RenderText();
  size_t pos_a = text.find("test.metrics.text_a 1");
  size_t pos_b = text.find("test.metrics.text_b 2");
  ASSERT_NE(pos_a, std::string::npos) << text;
  ASSERT_NE(pos_b, std::string::npos) << text;
  EXPECT_LT(pos_a, pos_b);
}

TEST_F(MetricsTest, ResetAllZeroesButKeepsReferencesValid) {
  Counter& counter = GetCounter("test.metrics.reset_all");
  counter.Add(7);
  MetricsRegistry::Instance().ResetAll();
  EXPECT_EQ(counter.value(), 0u);
  counter.Add(1);
  EXPECT_EQ(MetricsRegistry::Instance().CounterValue("test.metrics.reset_all"), 1u);
}

// --- Windowed instruments --------------------------------------------------
//
// All window tests drive the explicit-clock (*At) variants, so slab
// rotation is exercised deterministically instead of depending on how
// long the test takes to run.

constexpr uint64_t kSlab = WindowedCounter::kSlabNs;

TEST_F(MetricsTest, WindowedCounterCountsOnlyInsideTheWindow) {
  WindowedCounter wc;
  wc.AddAt(3, 1 * kSlab);
  wc.AddAt(4, 5 * kSlab);
  wc.AddAt(5, 9 * kSlab + kSlab / 2);

  // A 10 s window at t=9.5 s spans back to t=-0.5 s: everything counts.
  WindowedCounter::Snapshot s = wc.WindowAt(10 * kSlab, 9 * kSlab + kSlab / 2);
  EXPECT_EQ(s.count, 12u);
  EXPECT_DOUBLE_EQ(s.rate_per_sec, 1.2);

  // A 1 s window sees only the slab in progress.
  s = wc.WindowAt(1 * kSlab, 9 * kSlab + kSlab / 2);
  EXPECT_EQ(s.count, 5u);
}

TEST_F(MetricsTest, WindowedCounterSlabRotatesAtTheIntervalEdge) {
  WindowedCounter wc;
  // Writes one tick either side of a slab boundary land in different
  // slabs: advancing the clock by a full window past the first write
  // must age it out while keeping the second.
  wc.AddAt(1, 2 * kSlab - 1);
  wc.AddAt(10, 2 * kSlab);
  EXPECT_EQ(wc.WindowAt(1 * kSlab, 2 * kSlab).count, 10u);
  EXPECT_EQ(wc.WindowAt(2 * kSlab, 2 * kSlab).count, 11u);
}

TEST_F(MetricsTest, WindowedCounterReusedSlabDropsStaleCount) {
  WindowedCounter wc;
  wc.AddAt(7, 1 * kSlab);
  // kSlabs intervals later the ring wraps onto the same slot; the stale
  // count from the first generation must not leak into the new window.
  const uint64_t later = (1 + WindowedCounter::kSlabs) * kSlab;
  wc.AddAt(2, later);
  EXPECT_EQ(wc.WindowAt(1 * kSlab, later).count, 2u);
  EXPECT_EQ(wc.WindowAt(60 * kSlab, later).count, 2u);
}

TEST_F(MetricsTest, WindowedHistogramTracksCumulativeTotalsInWindow) {
  // Every observation mirrored into both a cumulative Histogram and a
  // WindowedHistogram whose window covers all of them must agree on
  // count, sum, and percentile bucket bounds — the dashboard's rolling
  // view is the same distribution, just time-scoped.
  Histogram cumulative;
  WindowedHistogram windowed;
  uint64_t now = 3 * kSlab;
  for (uint64_t sample : {1u, 9u, 100u, 4096u, 100000u, 100001u}) {
    cumulative.Observe(sample);
    windowed.ObserveAt(sample, now);
  }
  WindowedHistogram::Snapshot s = windowed.WindowAt(10 * kSlab, now);
  EXPECT_EQ(s.count, cumulative.count());
  EXPECT_EQ(s.sum, cumulative.sum());
  EXPECT_EQ(s.p50, cumulative.P50());
  EXPECT_EQ(s.p95, cumulative.P95());
  EXPECT_EQ(s.p99, cumulative.P99());
}

TEST_F(MetricsTest, WindowedHistogramAgesOutOldSlabs) {
  WindowedHistogram wh;
  wh.ObserveAt(10, 1 * kSlab);
  wh.ObserveAtN(1000, 30 * kSlab, 4);
  WindowedHistogram::Snapshot recent = wh.WindowAt(10 * kSlab, 30 * kSlab);
  EXPECT_EQ(recent.count, 4u);
  EXPECT_EQ(recent.sum, 4000u);
  WindowedHistogram::Snapshot all = wh.WindowAt(60 * kSlab, 30 * kSlab);
  EXPECT_EQ(all.count, 5u);
  EXPECT_EQ(all.sum, 4010u);
}

TEST_F(MetricsTest, WindowedDisabledModeIsNoOp) {
  WindowedCounter& wc = GetWindowedCounter("test.metrics.windowed_disabled");
  WindowedHistogram& wh = GetWindowedHistogram("test.metrics.windowed_disabled_h");
  wc.Reset();
  wh.Reset();
  SetMetricsEnabled(false);
  wc.Add(5);
  wh.Observe(5);
  SetMetricsEnabled(true);
  EXPECT_EQ(wc.Window(60 * kSlab).count, 0u);
  EXPECT_EQ(wh.Window(60 * kSlab).count, 0u);
}

TEST_F(MetricsTest, ConcurrentWindowedAddsSumExactly) {
  WindowedCounter wc;
  WindowedHistogram wh;
  const uint64_t now = 7 * kSlab;
  ThreadPool pool(4);
  pool.ParallelFor(4000, [&](size_t) {
    wc.AddAt(1, now);
    wh.ObserveAt(3, now);
  });
  EXPECT_EQ(wc.WindowAt(1 * kSlab, now).count, 4000u);
  EXPECT_EQ(wh.WindowAt(1 * kSlab, now).count, 4000u);
  EXPECT_EQ(wh.WindowAt(1 * kSlab, now).sum, 12000u);
}

// --- Prometheus exposition -------------------------------------------------

TEST_F(MetricsTest, PrometheusRendersEveryInstrumentKindOnce) {
  GetCounter("test.prom.counter").Add(3);
  GetGauge("test.prom.gauge").Set(-4);
  GetHistogram("test.prom.hist").Observe(100);
  GetWindowedCounter("test.prom.wc").Add(2);
  GetWindowedHistogram("test.prom.wh").Observe(50);
  const std::string out = MetricsRegistry::Instance().RenderPrometheus();

  auto count_of = [&out](const std::string& needle) {
    size_t n = 0;
    for (size_t at = out.find(needle); at != std::string::npos;
         at = out.find(needle, at + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_of("# TYPE tg_test_prom_counter counter"), 1u) << out;
  EXPECT_EQ(count_of("\ntg_test_prom_counter 3\n"), 1u) << out;
  EXPECT_EQ(count_of("# TYPE tg_test_prom_gauge gauge"), 1u) << out;
  EXPECT_EQ(count_of("\ntg_test_prom_gauge -4\n"), 1u) << out;
  EXPECT_EQ(count_of("# TYPE tg_test_prom_hist histogram"), 1u) << out;
  EXPECT_EQ(count_of("tg_test_prom_hist_bucket{le=\"+Inf\"} 1\n"), 1u) << out;
  EXPECT_EQ(count_of("\ntg_test_prom_hist_sum 100\n"), 1u) << out;
  EXPECT_EQ(count_of("\ntg_test_prom_hist_count 1\n"), 1u) << out;
  // Windowed instruments surface as one gauge family per statistic, one
  // sample per window width.
  EXPECT_EQ(count_of("# TYPE tg_test_prom_wc_rate gauge"), 1u) << out;
  EXPECT_EQ(count_of("tg_test_prom_wc_rate{window=\"1s\"}"), 1u) << out;
  EXPECT_EQ(count_of("tg_test_prom_wc_rate{window=\"10s\"}"), 1u) << out;
  EXPECT_EQ(count_of("tg_test_prom_wc_rate{window=\"60s\"}"), 1u) << out;
  EXPECT_EQ(count_of("# TYPE tg_test_prom_wh_p99 gauge"), 1u) << out;
  EXPECT_EQ(count_of("tg_test_prom_wh_p99{window=\"10s\"}"), 1u) << out;
}

TEST_F(MetricsTest, PrometheusHistogramBucketsAreCumulativeAndMonotone) {
  Histogram& h = GetHistogram("test.prom.cumulative");
  h.Reset();
  h.Observe(1);
  h.Observe(1000);
  h.Observe(1000000);
  const std::string out = MetricsRegistry::Instance().RenderPrometheus();
  // Walk this family's bucket lines in order; the rendered counts must be
  // non-decreasing and end at the +Inf bucket == _count.
  uint64_t last = 0;
  size_t buckets_seen = 0;
  size_t at = 0;
  const std::string prefix = "tg_test_prom_cumulative_bucket{le=\"";
  while ((at = out.find(prefix, at)) != std::string::npos) {
    const size_t value_at = out.find("} ", at);
    ASSERT_NE(value_at, std::string::npos);
    const uint64_t value = std::strtoull(out.c_str() + value_at + 2, nullptr, 10);
    EXPECT_GE(value, last) << out.substr(at, 80);
    last = value;
    ++buckets_seen;
    at = value_at;
  }
  EXPECT_EQ(buckets_seen, Histogram::kBuckets);
  EXPECT_EQ(last, 3u);  // +Inf bucket carries every observation
  EXPECT_NE(out.find("tg_test_prom_cumulative_count 3\n"), std::string::npos) << out;
}

TEST_F(MetricsTest, PrometheusNamesAndLabelsAreWellFormed) {
  // Dots sanitize to underscores; a {label="value"} suffix embedded in the
  // registry name renders as a real label set with escaped quotes.
  GetCounter("test.prom.labeled{verb=can_know,path=\"quoted\"}").Add(1);
  const std::string out = MetricsRegistry::Instance().RenderPrometheus();
  EXPECT_NE(out.find("tg_test_prom_labeled{verb=\"can_know\",path=\"\\\"quoted\\\"\"} 1"),
            std::string::npos)
      << out;
  // No rendered family may retain a '.' (invalid in the exposition format).
  for (size_t at = out.find("\ntg_"); at != std::string::npos;
       at = out.find("\ntg_", at + 1)) {
    const size_t end = out.find_first_of(" {", at + 1);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(out.substr(at + 1, end - at - 1).find('.'), std::string::npos)
        << out.substr(at + 1, end - at - 1);
  }
}

}  // namespace
}  // namespace tg_util

#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

namespace tg_util {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, EmptyAndTinyBatches) {
  ThreadPool pool(4);
  std::atomic<size_t> calls{0};
  pool.ParallelFor(0, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0u);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1u);
  // Fewer items than workers: each index still runs exactly once.
  std::vector<std::atomic<int>> hits(2);
  pool.ParallelFor(2, [&](size_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

TEST(ThreadPoolTest, ManySequentialBatchesReuseWorkers) {
  ThreadPool pool(4);
  size_t total = 0;
  for (int round = 0; round < 200; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(10, [&](size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 55u);
    total += sum.load();
  }
  EXPECT_EQ(total, 200u * 55u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(8, [&](size_t outer) {
    // A task fanning out again must not deadlock the pool; the nested call
    // runs inline on the same thread.
    pool.ParallelFor(8, [&](size_t inner) { hits[outer * 8 + inner].fetch_add(1); });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPoolTest, ConcurrentCallersSerializeSafely) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(4 * 100);
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&, c] {
      pool.ParallelFor(100, [&](size_t i) { hits[c * 100 + i].fetch_add(1); });
    });
  }
  for (std::thread& t : callers) {
    t.join();
  }
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPoolTest, DeterministicWhenWritingOwnSlots) {
  // The determinism contract: per-index slots give identical results for
  // any pool size.
  auto run = [](size_t threads) {
    ThreadPool pool(threads);
    std::vector<uint64_t> out(257);
    pool.ParallelFor(out.size(), [&](size_t i) { out[i] = i * i + 7; });
    return out;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnvOverride) {
  auto with_env = [](const char* value) {
    if (value == nullptr) {
      unsetenv("TG_THREADS");
    } else {
      setenv("TG_THREADS", value, /*overwrite=*/1);
    }
    size_t n = ThreadPool::DefaultThreadCount();
    unsetenv("TG_THREADS");
    return n;
  };
  EXPECT_EQ(with_env("3"), 3u);
  EXPECT_EQ(with_env("1"), 1u);
  EXPECT_EQ(with_env("999"), 256u);  // clamped
  // Unset / non-positive / unparseable fall back to hardware concurrency
  // (>= 1).
  EXPECT_GE(with_env(nullptr), 1u);
  EXPECT_GE(with_env("0"), 1u);
  EXPECT_GE(with_env("not-a-number"), 1u);
}

TEST(ThreadPoolTest, SizeOnePoolRunsInline) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(16, [&](size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

}  // namespace
}  // namespace tg_util

#include "src/sim/monitor.h"

#include <gtest/gtest.h>

#include "src/hierarchy/restrictions.h"

namespace tg_sim {
namespace {

using tg::ProtectionGraph;
using tg::RuleApplication;
using tg::VertexId;

struct MonitorFixture {
  ProtectionGraph g;
  tg_hier::LevelAssignment levels;
  VertexId hi, lo, doc;

  MonitorFixture() {
    hi = g.AddSubject("hi");
    lo = g.AddSubject("lo");
    doc = g.AddObject("doc");
    EXPECT_TRUE(g.AddExplicit(hi, lo, tg::kTake).ok());
    EXPECT_TRUE(g.AddExplicit(lo, doc, tg::kReadWrite).ok());
    levels = tg_hier::LevelAssignment(g.VertexCount(), 2);
    levels.Assign(hi, 1);
    levels.Assign(lo, 0);
    levels.Assign(doc, 0);
    levels.DeclareHigher(1, 0);
    EXPECT_TRUE(levels.Finalize());
  }
};

TEST(MonitorTest, RecordsAllowed) {
  MonitorFixture f;
  ReferenceMonitor monitor(f.g, std::make_shared<tg::AllowAllPolicy>());
  ASSERT_TRUE(monitor.Submit(RuleApplication::Take(f.hi, f.lo, f.doc, tg::kRead)).ok());
  EXPECT_EQ(monitor.allowed_count(), 1u);
  ASSERT_EQ(monitor.audit_log().size(), 1u);
  EXPECT_EQ(monitor.audit_log()[0].outcome, AuditOutcome::kAllowed);
}

TEST(MonitorTest, RecordsVetoWithReason) {
  MonitorFixture f;
  ReferenceMonitor monitor(f.g, std::make_shared<tg_hier::BishopRestrictionPolicy>(f.levels));
  // hi taking w over the low doc is a write-down: vetoed.
  auto result = monitor.Submit(RuleApplication::Take(f.hi, f.lo, f.doc, tg::kWrite));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(monitor.vetoed_count(), 1u);
  ASSERT_EQ(monitor.audit_log().size(), 1u);
  EXPECT_EQ(monitor.audit_log()[0].outcome, AuditOutcome::kVetoed);
  EXPECT_FALSE(monitor.audit_log()[0].reason.empty());
}

TEST(MonitorTest, RecordsRejection) {
  MonitorFixture f;
  ReferenceMonitor monitor(f.g, std::make_shared<tg::AllowAllPolicy>());
  auto result = monitor.Submit(RuleApplication::Take(f.lo, f.hi, f.doc, tg::kRead));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(monitor.rejected_count(), 1u);
  EXPECT_EQ(monitor.audit_log()[0].outcome, AuditOutcome::kRejected);
}

TEST(MonitorTest, RenderShowsOutcomes) {
  MonitorFixture f;
  ReferenceMonitor monitor(f.g, std::make_shared<tg_hier::BishopRestrictionPolicy>(f.levels));
  (void)monitor.Submit(RuleApplication::Take(f.hi, f.lo, f.doc, tg::kRead));
  (void)monitor.Submit(RuleApplication::Take(f.hi, f.lo, f.doc, tg::kWrite));
  std::string log = monitor.RenderAuditLog();
  EXPECT_NE(log.find("[ALLOWED]"), std::string::npos);
  EXPECT_NE(log.find("[VETOED]"), std::string::npos);
}

TEST(MonitorTest, RenderLimitTruncatesFront) {
  MonitorFixture f;
  ReferenceMonitor monitor(f.g, std::make_shared<tg::AllowAllPolicy>());
  (void)monitor.Submit(RuleApplication::Take(f.hi, f.lo, f.doc, tg::kRead));
  (void)monitor.Submit(RuleApplication::Take(f.hi, f.lo, f.doc, tg::kWrite));
  std::string log = monitor.RenderAuditLog(1);
  EXPECT_EQ(log.find("0 ["), std::string::npos);
  EXPECT_NE(log.find("1 ["), std::string::npos);
}

TEST(MonitorTest, OutcomeNames) {
  EXPECT_STREQ(AuditOutcomeName(AuditOutcome::kAllowed), "ALLOWED");
  EXPECT_STREQ(AuditOutcomeName(AuditOutcome::kVetoed), "VETOED");
  EXPECT_STREQ(AuditOutcomeName(AuditOutcome::kRejected), "REJECTED");
}

}  // namespace
}  // namespace tg_sim

#include "src/sim/adversary.h"

#include <gtest/gtest.h>

#include "src/hierarchy/restrictions.h"
#include "src/sim/scenario.h"

namespace tg_sim {
namespace {

using tg::RuleApplication;

TEST(AdversaryTest, BreachesFig21WithoutPolicy) {
  Fig21 fig = MakeFig21();
  ReferenceMonitor monitor(fig.graph, std::make_shared<tg::AllowAllPolicy>());
  AttackOptions options;
  options.strategy = AdversaryStrategy::kGreedy;
  tg_util::Prng prng(1);
  AttackOutcome outcome =
      RunConspiracy(monitor, fig.levels, fig.lo, fig.secret, options, prng);
  EXPECT_TRUE(outcome.breached);
}

TEST(AdversaryTest, BishopPolicyStopsFig21) {
  Fig21 fig = MakeFig21();
  ReferenceMonitor monitor(fig.graph,
                           std::make_shared<tg_hier::BishopRestrictionPolicy>(fig.levels));
  AttackOptions options;
  options.strategy = AdversaryStrategy::kGreedy;
  options.max_steps = 100;
  tg_util::Prng prng(1);
  AttackOutcome outcome =
      RunConspiracy(monitor, fig.levels, fig.lo, fig.secret, options, prng);
  EXPECT_FALSE(outcome.breached);
  // The policy had to actually veto something (or the adversary exhausted).
  EXPECT_TRUE(outcome.steps_vetoed > 0 || outcome.exhausted);
}

TEST(AdversaryTest, RandomStrategyAlsoBreachesEventually) {
  Fig21 fig = MakeFig21();
  ReferenceMonitor monitor(fig.graph, std::make_shared<tg::AllowAllPolicy>());
  AttackOptions options;
  options.strategy = AdversaryStrategy::kRandom;
  options.max_steps = 500;
  tg_util::Prng prng(12345);
  AttackOutcome outcome =
      RunConspiracy(monitor, fig.levels, fig.lo, fig.secret, options, prng);
  EXPECT_TRUE(outcome.breached);
}

TEST(AdversaryTest, ImmediateWhenLeakAlreadyExists) {
  tg::ProtectionGraph g;
  auto lo = g.AddSubject("lo");
  auto hi = g.AddObject("hi");
  ASSERT_TRUE(g.AddExplicit(lo, hi, tg::kRead).ok());
  tg_hier::LevelAssignment levels(g.VertexCount(), 1);
  ASSERT_TRUE(levels.Finalize());
  ReferenceMonitor monitor(g, std::make_shared<tg::AllowAllPolicy>());
  AttackOptions options;
  tg_util::Prng prng(5);
  AttackOutcome outcome = RunConspiracy(monitor, levels, lo, hi, options, prng);
  EXPECT_TRUE(outcome.breached);
  EXPECT_EQ(outcome.steps_applied, 0u);
}

TEST(AdversaryTest, ExhaustsOnInertGraph) {
  tg::ProtectionGraph g;
  auto lo = g.AddSubject("lo");
  auto hi = g.AddObject("hi");
  tg_hier::LevelAssignment levels(g.VertexCount(), 1);
  ASSERT_TRUE(levels.Finalize());
  ReferenceMonitor monitor(g, std::make_shared<tg::AllowAllPolicy>());
  AttackOptions options;
  options.strategy = AdversaryStrategy::kGreedy;
  options.max_creates = 0;  // depot creates alone cannot help here anyway
  tg_util::Prng prng(5);
  AttackOutcome outcome = RunConspiracy(monitor, levels, lo, hi, options, prng);
  EXPECT_FALSE(outcome.breached);
  EXPECT_TRUE(outcome.exhausted);
}

TEST(AdversaryTest, ConspiracyBudgetMatchesMinConspirators) {
  // Fig 2.1 requires BOTH hi and lo to act (duality construction): a
  // conspiracy of lo alone fails, hi+lo succeeds.
  {
    Fig21 fig = MakeFig21();
    ReferenceMonitor monitor(fig.graph, std::make_shared<tg::AllowAllPolicy>());
    AttackOptions options;
    options.strategy = AdversaryStrategy::kGreedy;
    options.corrupt = {fig.lo};  // hi stays honest
    tg_util::Prng prng(3);
    AttackOutcome outcome =
        RunConspiracy(monitor, fig.levels, fig.lo, fig.secret, options, prng);
    EXPECT_FALSE(outcome.breached);
  }
  {
    Fig21 fig = MakeFig21();
    ReferenceMonitor monitor(fig.graph, std::make_shared<tg::AllowAllPolicy>());
    AttackOptions options;
    options.strategy = AdversaryStrategy::kGreedy;
    options.corrupt = {fig.lo, fig.hi};
    tg_util::Prng prng(3);
    AttackOutcome outcome =
        RunConspiracy(monitor, fig.levels, fig.lo, fig.secret, options, prng);
    EXPECT_TRUE(outcome.breached);
  }
}

TEST(AdversaryTest, HonestSubjectsNeverAct) {
  Fig21 fig = MakeFig21();
  ReferenceMonitor monitor(fig.graph, std::make_shared<tg::AllowAllPolicy>());
  AttackOptions options;
  options.corrupt = {fig.lo};
  tg_util::Prng prng(4);
  (void)RunConspiracy(monitor, fig.levels, fig.lo, fig.secret, options, prng);
  for (const AuditRecord& record : monitor.audit_log()) {
    if (record.outcome == AuditOutcome::kAllowed) {
      // Rendered rules name the actor right after the kind ("take: hi ...").
      EXPECT_EQ(record.rule.find(": hi "), std::string::npos)
          << "honest subject acted: " << record.rule;
    }
  }
}

TEST(LeakEstablishedTest, MatchesKnowSemantics) {
  tg::ProtectionGraph g;
  auto lo = g.AddSubject("lo");
  auto mid = g.AddObject("mid");
  auto hi = g.AddSubject("hi");
  ASSERT_TRUE(g.AddExplicit(lo, mid, tg::kRead).ok());
  ASSERT_TRUE(g.AddExplicit(hi, mid, tg::kWrite).ok());
  EXPECT_TRUE(LeakEstablished(g, lo, hi));
  EXPECT_FALSE(LeakEstablished(g, hi, lo));
}

}  // namespace
}  // namespace tg_sim

#include "src/sim/generator.h"

#include <gtest/gtest.h>

#include "src/tg/printer.h"

namespace tg_sim {
namespace {

using tg::ProtectionGraph;
using tg::VertexId;

TEST(RandomGraphTest, DeterministicForSeed) {
  RandomGraphOptions options;
  tg_util::Prng p1(42);
  tg_util::Prng p2(42);
  ProtectionGraph g1 = RandomGraph(options, p1);
  ProtectionGraph g2 = RandomGraph(options, p2);
  EXPECT_TRUE(g1 == g2);
}

TEST(RandomGraphTest, RespectsCounts) {
  RandomGraphOptions options;
  options.subjects = 5;
  options.objects = 3;
  tg_util::Prng prng(7);
  ProtectionGraph g = RandomGraph(options, prng);
  EXPECT_EQ(g.SubjectCount(), 5u);
  EXPECT_EQ(g.VertexCount(), 8u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(RandomGraphTest, EdgesNonEmpty) {
  RandomGraphOptions options;
  options.subjects = 6;
  options.objects = 2;
  options.edge_factor = 2.0;
  tg_util::Prng prng(13);
  ProtectionGraph g = RandomGraph(options, prng);
  g.ForEachEdge([](const tg::Edge& e) { EXPECT_FALSE(e.empty()); });
  EXPECT_GT(g.ExplicitEdgeCount(), 0u);
}

TEST(RandomHierarchyTest, LevelsAssignedAndOrdered) {
  RandomHierarchyOptions options;
  options.levels = 3;
  options.subjects_per_level = 2;
  tg_util::Prng prng(21);
  GeneratedHierarchy h = RandomHierarchy(options, prng);
  EXPECT_EQ(h.level_subjects.size(), 3u);
  for (size_t level = 0; level < 3; ++level) {
    for (VertexId v : h.level_subjects[level]) {
      EXPECT_EQ(h.levels.LevelOf(v), static_cast<tg_hier::LevelId>(level));
    }
  }
  EXPECT_TRUE(h.levels.Higher(2, 0));
  EXPECT_FALSE(h.levels.Higher(0, 2));
  EXPECT_TRUE(h.graph.Validate().ok());
}

TEST(RandomHierarchyTest, PlantedChannelsCrossLevels) {
  RandomHierarchyOptions options;
  options.levels = 2;
  options.subjects_per_level = 2;
  options.planted_channels = 3;
  tg_util::Prng prng(99);
  GeneratedHierarchy h = RandomHierarchy(options, prng);
  size_t cross_tg = 0;
  h.graph.ForEachEdge([&](const tg::Edge& e) {
    if (e.explicit_rights.Intersects(tg::kTakeGrant) &&
        h.levels.IsAssigned(e.src) && h.levels.IsAssigned(e.dst) &&
        h.levels.LevelOf(e.src) != h.levels.LevelOf(e.dst)) {
      ++cross_tg;
    }
  });
  EXPECT_GE(cross_tg, 1u);
}

TEST(RandomHierarchyTest, NoChannelsWhenZeroPlanted) {
  RandomHierarchyOptions options;
  options.levels = 3;
  options.planted_channels = 0;
  tg_util::Prng prng(55);
  GeneratedHierarchy h = RandomHierarchy(options, prng);
  h.graph.ForEachEdge([&](const tg::Edge& e) {
    if (e.explicit_rights.Intersects(tg::kTakeGrant)) {
      EXPECT_EQ(h.levels.LevelOf(e.src), h.levels.LevelOf(e.dst))
          << h.graph.NameOf(e.src) << " -> " << h.graph.NameOf(e.dst);
    }
  });
}

TEST(ChainGraphTest, ShapeAndLabels) {
  ProtectionGraph g = ChainGraph(6);
  EXPECT_EQ(g.VertexCount(), 6u);
  EXPECT_EQ(g.SubjectCount(), 1u);
  VertexId head = g.FindVertex("head");
  VertexId target = g.FindVertex("target");
  ASSERT_NE(head, tg::kInvalidVertex);
  ASSERT_NE(target, tg::kInvalidVertex);
  // One r edge at the end, t edges elsewhere.
  size_t t_edges = 0;
  size_t r_edges = 0;
  g.ForEachEdge([&](const tg::Edge& e) {
    if (e.explicit_rights.Has(tg::Right::kTake)) {
      ++t_edges;
    }
    if (e.explicit_rights.Has(tg::Right::kRead)) {
      ++r_edges;
    }
  });
  EXPECT_EQ(r_edges, 1u);
  EXPECT_EQ(t_edges, 4u);
}

}  // namespace
}  // namespace tg_sim

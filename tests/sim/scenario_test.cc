#include "src/sim/scenario.h"

#include <gtest/gtest.h>

#include "src/analysis/bridges.h"
#include "src/analysis/can_know.h"
#include "src/analysis/can_share.h"
#include "src/analysis/islands.h"
#include "src/analysis/spans.h"
#include "src/analysis/witness_builder.h"
#include "src/hierarchy/restrictions.h"
#include "src/hierarchy/secure.h"
#include "src/tg/rule_engine.h"

namespace tg_sim {
namespace {

using tg::Right;

// ---- Figure 2.1: the Wu-model conspiracy ----

TEST(Fig21Test, WuModelIsBreachable) {
  Fig21 fig = MakeFig21();
  // The lower subject can acquire the read right over the secret.
  EXPECT_TRUE(tg_analysis::CanShare(fig.graph, Right::kRead, fig.lo, fig.secret));
  auto witness = tg_analysis::BuildCanShareWitness(fig.graph, Right::kRead, fig.lo, fig.secret);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->VerifyAddsExplicit(fig.graph, fig.lo, fig.secret, Right::kRead).ok());
  // Hence the hierarchy is insecure.
  tg_hier::SecurityReport report = tg_hier::CheckSecure(fig.graph, fig.levels);
  EXPECT_FALSE(report.secure);
}

TEST(Fig21Test, BishopRestrictionBlocksTheConspiracy) {
  Fig21 fig = MakeFig21();
  auto witness = tg_analysis::BuildCanShareWitness(fig.graph, Right::kRead, fig.lo, fig.secret);
  ASSERT_TRUE(witness.has_value());
  // Replaying the conspiracy through the restricted engine must fail at
  // some step (the final read edge would be a read-up).
  auto policy = std::make_shared<tg_hier::BishopRestrictionPolicy>(fig.levels);
  tg::RuleEngine engine(fig.graph, policy);
  bool vetoed = false;
  for (const tg::RuleApplication& rule : witness->rules()) {
    auto result = engine.Apply(rule);
    if (!result.ok() && result.status().code() == tg_util::StatusCode::kPolicyViolation) {
      vetoed = true;
      break;
    }
  }
  EXPECT_TRUE(vetoed);
  EXPECT_FALSE(engine.graph().HasExplicit(fig.lo, fig.secret, Right::kRead));
}

// ---- Figure 2.2: islands, bridges, spans ----

TEST(Fig22Test, IslandsMatchPaper) {
  Fig22 fig = MakeFig22();
  tg_analysis::Islands islands(fig.graph);
  EXPECT_EQ(islands.Count(), 3u);
  EXPECT_TRUE(islands.SameIsland(fig.p, fig.u));
  EXPECT_TRUE(islands.SameIsland(fig.y, fig.s2));
  EXPECT_FALSE(islands.SameIsland(fig.u, fig.w));
  EXPECT_FALSE(islands.SameIsland(fig.w, fig.y));
}

TEST(Fig22Test, BridgesMatchPaper) {
  Fig22 fig = MakeFig22();
  EXPECT_TRUE(tg_analysis::FindBridge(fig.graph, fig.u, fig.w).has_value());
  EXPECT_TRUE(tg_analysis::FindBridge(fig.graph, fig.w, fig.y).has_value());
}

TEST(Fig22Test, SpansMatchPaper) {
  Fig22 fig = MakeFig22();
  EXPECT_TRUE(tg_analysis::InitiallySpansTo(fig.graph, fig.p, fig.q));
  EXPECT_TRUE(tg_analysis::TerminallySpansTo(fig.graph, fig.s2, fig.s));
}

TEST(Fig22Test, TheoremTwoThreeAcrossTheChain) {
  // With s holding r over q, the full chain lets q... rather, lets the
  // initial-spanned vertex q acquire r over q's own... the interesting
  // question: can p's island acquire s's right over q for vertex q itself?
  // The classic query: can_share(r, q, q') needs distinct vertices, so ask
  // for p instead: p initially spans to q, s2 terminally spans to s.
  Fig22 fig = MakeFig22();
  EXPECT_TRUE(tg_analysis::CanShare(fig.graph, Right::kRead, fig.q, fig.q) == false);
  // p can acquire the right itself (p is a subject in island I1).
  EXPECT_TRUE(tg_analysis::CanShare(fig.graph, Right::kRead, fig.p, fig.q));
  auto witness = tg_analysis::BuildCanShareWitness(fig.graph, Right::kRead, fig.p, fig.q);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->VerifyAddsExplicit(fig.graph, fig.p, fig.q, Right::kRead).ok());
}

// ---- Figure 3.1: rw-path words ----

TEST(Fig31Test, WordsAndAdmissibility) {
  Fig31 fig = MakeFig31();
  // a -r>- b and b <-w- c: the path a,b,c has word r> w<, admissible since
  // a reads (a subject) and c writes (c subject).
  auto path = tg_analysis::FindAdmissibleRwPath(fig.graph, fig.a, fig.c);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(tg::WordToString(path->word()), "r> w<");
  EXPECT_TRUE(tg_analysis::CanKnowF(fig.graph, fig.a, fig.c));
  EXPECT_FALSE(tg_analysis::CanKnowF(fig.graph, fig.c, fig.a));
}

// ---- Figure 5.1: the execute right ----

TEST(Fig51Test, UnrestrictedTakeLeaksWrite) {
  Fig51 fig = MakeFig51();
  tg::RuleEngine engine(fig.graph, nullptr);
  auto result =
      engine.Apply(tg::RuleApplication::Take(fig.x, fig.z, fig.y, tg::kWrite));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(engine.graph().HasExplicit(fig.x, fig.y, Right::kWrite));
  // That edge is a write-down: the graph is now BLP-insecure.
  EXPECT_FALSE(tg_hier::AuditBishopRestriction(engine.graph(), fig.levels).empty());
}

TEST(Fig51Test, RestrictionBlocksWriteButAllowsExecute) {
  Fig51 fig = MakeFig51();
  auto policy = std::make_shared<tg_hier::BishopRestrictionPolicy>(fig.levels);
  tg::RuleEngine engine(fig.graph, policy);
  auto blocked =
      engine.Apply(tg::RuleApplication::Take(fig.x, fig.z, fig.y, tg::kWrite));
  EXPECT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), tg_util::StatusCode::kPolicyViolation);
  auto allowed = engine.Apply(
      tg::RuleApplication::Take(fig.x, fig.z, fig.y, tg::RightSet(Right::kExecute)));
  EXPECT_TRUE(allowed.ok());
  EXPECT_TRUE(engine.graph().HasExplicit(fig.x, fig.y, Right::kExecute));
  EXPECT_FALSE(engine.graph().HasExplicit(fig.x, fig.y, Right::kWrite));
}

// ---- Figure 6.1: de jure rules alone breach security ----

TEST(Fig61Test, DeJureOnlyBreach) {
  Fig61 fig = MakeFig61();
  // No de facto flow exists from lo to the secret...
  EXPECT_FALSE(tg_analysis::CanKnowF(fig.graph, fig.lo, fig.secret));
  // ...but one take completes an explicit read-up edge.
  tg::RuleEngine engine(fig.graph, nullptr);
  auto result =
      engine.Apply(tg::RuleApplication::Take(fig.lo, fig.hi, fig.secret, tg::kRead));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(tg_analysis::CanKnowF(engine.graph(), fig.lo, fig.secret));
  // Hence restricting only the de facto rules could never secure this
  // graph; the de jure restriction vetoes the take.
  auto policy = std::make_shared<tg_hier::BishopRestrictionPolicy>(fig.levels);
  tg::RuleEngine restricted(fig.graph, policy);
  auto blocked =
      restricted.Apply(tg::RuleApplication::Take(fig.lo, fig.hi, fig.secret, tg::kRead));
  EXPECT_FALSE(blocked.ok());
}

TEST(Fig61Test, InsecureByDefinition) {
  Fig61 fig = MakeFig61();
  tg_hier::SecurityReport report = tg_hier::CheckSecure(fig.graph, fig.levels);
  EXPECT_FALSE(report.secure);
}

}  // namespace
}  // namespace tg_sim

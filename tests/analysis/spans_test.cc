#include "src/analysis/spans.h"

#include <gtest/gtest.h>

namespace tg_analysis {
namespace {

using tg::ProtectionGraph;
using tg::VertexId;

class SpansTest : public ::testing::Test {
 protected:
  ProtectionGraph g_;
};

TEST_F(SpansTest, TerminalSpanAlongTakes) {
  VertexId a = g_.AddSubject("a");
  VertexId b = g_.AddObject("b");
  VertexId c = g_.AddObject("c");
  ASSERT_TRUE(g_.AddExplicit(a, b, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(b, c, tg::kTake).ok());
  EXPECT_TRUE(TerminallySpansTo(g_, a, c));
  EXPECT_TRUE(TerminallySpansTo(g_, a, a));  // null word
  EXPECT_FALSE(TerminallySpansTo(g_, b, c));  // object cannot span
}

TEST_F(SpansTest, InitialSpanEndsWithGrant) {
  VertexId a = g_.AddSubject("a");
  VertexId b = g_.AddObject("b");
  VertexId c = g_.AddObject("c");
  ASSERT_TRUE(g_.AddExplicit(a, b, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(b, c, tg::kGrant).ok());
  EXPECT_TRUE(InitiallySpansTo(g_, a, c));
  EXPECT_FALSE(InitiallySpansTo(g_, a, b));  // t> alone is not an initial span
  EXPECT_TRUE(InitiallySpansTo(g_, a, a));   // null word case
}

TEST_F(SpansTest, RwTerminalSpanEndsWithRead) {
  VertexId a = g_.AddSubject("a");
  VertexId b = g_.AddObject("b");
  VertexId c = g_.AddObject("c");
  ASSERT_TRUE(g_.AddExplicit(a, b, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(b, c, tg::kRead).ok());
  EXPECT_TRUE(RwTerminallySpansTo(g_, a, c));
  EXPECT_FALSE(RwTerminallySpansTo(g_, a, b));
  EXPECT_FALSE(RwTerminallySpansTo(g_, a, a));  // null word not in t>* r>
}

TEST_F(SpansTest, RwInitialSpanEndsWithWrite) {
  VertexId a = g_.AddSubject("a");
  VertexId b = g_.AddObject("b");
  ASSERT_TRUE(g_.AddExplicit(a, b, tg::kWrite).ok());
  EXPECT_TRUE(RwInitiallySpansTo(g_, a, b));
  EXPECT_FALSE(RwInitiallySpansTo(g_, a, a));
}

TEST_F(SpansTest, RwSpansSeeImplicitByDefault) {
  VertexId a = g_.AddSubject("a");
  VertexId b = g_.AddObject("b");
  ASSERT_TRUE(g_.AddImplicit(a, b, tg::kRead).ok());
  EXPECT_TRUE(RwTerminallySpansTo(g_, a, b));
  EXPECT_FALSE(RwTerminallySpansTo(g_, a, b, /*use_implicit=*/false));
}

TEST_F(SpansTest, FindSpanReturnsPath) {
  VertexId a = g_.AddSubject("a");
  VertexId b = g_.AddObject("b");
  VertexId c = g_.AddObject("c");
  ASSERT_TRUE(g_.AddExplicit(a, b, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(b, c, tg::kGrant).ok());
  auto initial = FindInitialSpan(g_, a, c);
  ASSERT_TRUE(initial.has_value());
  EXPECT_EQ(tg::WordToString(initial->word()), "t> g>");
  auto terminal = FindTerminalSpan(g_, a, b);
  ASSERT_TRUE(terminal.has_value());
  EXPECT_EQ(tg::WordToString(terminal->word()), "t>");
}

TEST_F(SpansTest, InitialSpannersIncludeSubjectItself) {
  VertexId a = g_.AddSubject("a");
  VertexId b = g_.AddSubject("b");
  VertexId o = g_.AddObject("o");
  ASSERT_TRUE(g_.AddExplicit(b, o, tg::kGrant).ok());
  auto spanners_to_o = InitialSpannersTo(g_, o);
  EXPECT_EQ(spanners_to_o, (std::vector<VertexId>{b}));
  auto spanners_to_a = InitialSpannersTo(g_, a);
  EXPECT_EQ(spanners_to_a, (std::vector<VertexId>{a}));  // null word, subject
}

TEST_F(SpansTest, TerminalSpannersMultiTarget) {
  VertexId a = g_.AddSubject("a");
  VertexId b = g_.AddSubject("b");
  VertexId s1 = g_.AddObject("s1");
  VertexId s2 = g_.AddObject("s2");
  ASSERT_TRUE(g_.AddExplicit(a, s1, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(b, s2, tg::kTake).ok());
  auto spanners = TerminalSpannersTo(g_, {s1, s2});
  EXPECT_EQ(spanners, (std::vector<VertexId>{a, b}));
}

TEST_F(SpansTest, RwInitialSpannersFindWriters) {
  VertexId target = g_.AddObject("target");
  VertexId w1 = g_.AddSubject("w1");
  VertexId w2 = g_.AddSubject("w2");
  VertexId far = g_.AddSubject("far");
  ASSERT_TRUE(g_.AddExplicit(w1, target, tg::kWrite).ok());
  ASSERT_TRUE(g_.AddExplicit(far, w2, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(w2, target, tg::kWrite).ok());
  auto spanners = RwInitialSpannersTo(g_, target);
  // w1 (w>), w2 (w>), far (t> w>).
  EXPECT_EQ(spanners, (std::vector<VertexId>{w1, w2, far}));
}

TEST_F(SpansTest, ObjectsNeverSpan) {
  VertexId o = g_.AddObject("o");
  VertexId t = g_.AddObject("t");
  ASSERT_TRUE(g_.AddExplicit(o, t, tg::kTake).ok());
  EXPECT_FALSE(TerminallySpansTo(g_, o, t));
  EXPECT_FALSE(InitiallySpansTo(g_, o, o));
}

}  // namespace
}  // namespace tg_analysis

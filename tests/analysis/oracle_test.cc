#include "src/analysis/oracle.h"

#include <gtest/gtest.h>

namespace tg_analysis {
namespace {

using tg::ProtectionGraph;
using tg::Right;
using tg::VertexId;

TEST(SaturateTest, FixpointAddsAllDerivableImplicitEdges) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddSubject("b");
  VertexId c = g.AddSubject("c");
  VertexId d = g.AddObject("d");
  // a reads b, b reads c, c reads d: spy should cascade.
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kRead).ok());
  ASSERT_TRUE(g.AddExplicit(b, c, tg::kRead).ok());
  ASSERT_TRUE(g.AddExplicit(c, d, tg::kRead).ok());
  ProtectionGraph saturated = SaturateDeFacto(g);
  EXPECT_TRUE(saturated.HasImplicit(a, c, Right::kRead));
  EXPECT_TRUE(saturated.HasImplicit(b, d, Right::kRead));
  EXPECT_TRUE(saturated.HasImplicit(a, d, Right::kRead));
  // Saturation never adds explicit edges.
  EXPECT_EQ(saturated.ExplicitEdgeCount(), g.ExplicitEdgeCount());
}

TEST(SaturateTest, SaturationIsIdempotent) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId m = g.AddObject("m");
  VertexId b = g.AddSubject("b");
  ASSERT_TRUE(g.AddExplicit(a, m, tg::kRead).ok());
  ASSERT_TRUE(g.AddExplicit(b, m, tg::kWrite).ok());
  ProtectionGraph once = SaturateDeFacto(g);
  ProtectionGraph twice = SaturateDeFacto(once);
  EXPECT_TRUE(once == twice);
}

TEST(KnowEdgeTest, ExplicitReadNeedsSubjectSource) {
  ProtectionGraph g;
  VertexId o = g.AddObject("o");
  VertexId t = g.AddObject("t");
  ASSERT_TRUE(g.AddExplicit(o, t, tg::kRead).ok());
  EXPECT_FALSE(KnowEdgePresent(g, o, t));
  ProtectionGraph g2;
  VertexId s = g2.AddSubject("s");
  VertexId t2 = g2.AddObject("t");
  ASSERT_TRUE(g2.AddExplicit(s, t2, tg::kRead).ok());
  EXPECT_TRUE(KnowEdgePresent(g2, s, t2));
}

TEST(KnowEdgeTest, ImplicitReadAlwaysCounts) {
  ProtectionGraph g;
  VertexId o = g.AddObject("o");
  VertexId t = g.AddSubject("t");
  ASSERT_TRUE(g.AddImplicit(o, t, tg::kRead).ok());
  EXPECT_TRUE(KnowEdgePresent(g, o, t));
}

TEST(KnowEdgeTest, WriteBackCounts) {
  ProtectionGraph g;
  VertexId x = g.AddObject("x");
  VertexId y = g.AddSubject("y");
  ASSERT_TRUE(g.AddExplicit(y, x, tg::kWrite).ok());
  EXPECT_TRUE(KnowEdgePresent(g, x, y));
  EXPECT_FALSE(KnowEdgePresent(g, y, x));
}

TEST(OracleCanShareTest, FindsSimpleTake) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId y = g.AddObject("y");
  VertexId z = g.AddObject("z");
  ASSERT_TRUE(g.AddExplicit(x, y, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(y, z, tg::kRead).ok());
  EXPECT_TRUE(OracleCanShare(g, Right::kRead, x, z));
  EXPECT_FALSE(OracleCanShare(g, Right::kWrite, x, z));
}

TEST(OracleCanShareTest, NeedsCreateForReversedEdge) {
  // s -t-> x with s holding r over y: x acquires it only via a created
  // depot (Lemma 2.1's construction), so max_creates=0 fails, 1 succeeds.
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId s = g.AddSubject("s");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(s, x, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(s, y, tg::kRead).ok());
  OracleOptions no_creates;
  no_creates.max_creates = 0;
  EXPECT_FALSE(OracleCanShare(g, Right::kRead, x, y, no_creates));
  OracleOptions one_create;
  one_create.max_creates = 1;
  EXPECT_TRUE(OracleCanShare(g, Right::kRead, x, y, one_create));
}

TEST(OracleShareWitnessTest, WitnessReplays) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId s = g.AddSubject("s");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(s, x, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(s, y, tg::kRead).ok());
  auto witness = OracleShareWitness(g, Right::kRead, x, y);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->VerifyAddsExplicit(g, x, y, Right::kRead).ok());
}

TEST(OracleShareWitnessTest, ExistingEdgeGivesEmptyWitness) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(x, y, tg::kRead).ok());
  auto witness = OracleShareWitness(g, Right::kRead, x, y);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->empty());
}

TEST(OracleCanKnowTest, CombinesDeJureAndDeFacto) {
  // x takes r over m's target, then reads: needs both rule families.
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId m = g.AddObject("m");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(x, m, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(m, y, tg::kRead).ok());
  EXPECT_TRUE(OracleCanKnow(g, x, y));
  EXPECT_FALSE(OracleCanKnowF(g, x, y));
}

}  // namespace
}  // namespace tg_analysis

#include "src/analysis/provenance.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/analysis/cache.h"
#include "src/hierarchy/secure.h"
#include "src/sim/generator.h"
#include "src/tg/graph.h"
#include "src/util/flight_recorder.h"
#include "src/util/metrics.h"
#include "src/util/prng.h"
#include "src/util/trace.h"

namespace tg_analysis {
namespace {

using tg::ProtectionGraph;
using tg::VertexId;

class ProvenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = tg_util::MetricsEnabled();
    tg_util::SetMetricsEnabled(true);
  }
  void TearDown() override { tg_util::SetMetricsEnabled(was_enabled_); }

  bool was_enabled_ = true;
};

// x reads y reads z: can_know(x, z) holds de facto through the spy chain.
ProtectionGraph SpyChainGraph(VertexId* x, VertexId* z) {
  ProtectionGraph g;
  *x = g.AddSubject("x");
  VertexId y = g.AddSubject("y");
  *z = g.AddObject("z");
  EXPECT_TRUE(g.AddExplicit(*x, y, tg::kRead).ok());
  EXPECT_TRUE(g.AddExplicit(y, *z, tg::kRead).ok());
  return g;
}

TEST_F(ProvenanceTest, TrueCanKnowCarriesVerifiedWitness) {
  VertexId x = 0, z = 0;
  ProtectionGraph g = SpyChainGraph(&x, &z);
  QueryProvenance p = ExplainCanKnow(g, x, z);

  EXPECT_EQ(p.predicate, "can_know");
  ASSERT_EQ(p.args.size(), 2u);
  EXPECT_EQ(p.args[0], "x");
  EXPECT_EQ(p.args[1], "z");
  EXPECT_TRUE(p.verdict);
  EXPECT_EQ(p.graph_epoch, g.epoch());
  EXPECT_NE(p.query_id, 0u);

  // The Theorem 3.2 chain summary names all four candidate sets.
  ASSERT_EQ(p.chain.size(), 4u);
  EXPECT_EQ(p.chain[0].first, "rw_initial_spanners");
  EXPECT_EQ(p.chain[1].first, "rw_terminal_spanners");
  EXPECT_EQ(p.chain[2].first, "boc_closure_subjects");
  EXPECT_EQ(p.chain[3].first, "tails_in_closure");
  EXPECT_GT(p.chain[3].second, 0u);  // true verdict => a tail is reachable

  // Witness exists, replays, and the replayed graph carries the flow.
  EXPECT_TRUE(p.has_witness);
  EXPECT_TRUE(p.witness_verified);
  EXPECT_FALSE(p.witness_text.empty());

  std::string text = p.ToText();
  EXPECT_NE(text.find("verdict: true"), std::string::npos) << text;
  EXPECT_NE(text.find("replay VERIFIED"), std::string::npos) << text;
  std::string json = p.ToJson();
  EXPECT_NE(json.find("\"verdict\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"verified\":true"), std::string::npos) << json;
}

TEST_F(ProvenanceTest, FalseVerdictHasNoWitness) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddObject("b");  // no edges at all
  QueryProvenance p = ExplainCanKnow(g, a, b);
  EXPECT_FALSE(p.verdict);
  EXPECT_FALSE(p.has_witness);
  EXPECT_FALSE(p.witness_verified);
  EXPECT_NE(p.ToJson().find("\"verdict\":false"), std::string::npos);
}

TEST_F(ProvenanceTest, SpansBelongToTheRecordedQuery) {
  VertexId x = 0, z = 0;
  ProtectionGraph g = SpyChainGraph(&x, &z);
  tg_util::TraceBuffer::Instance().Clear();
  AnalysisCache cache;
  QueryProvenance p = ExplainCanKnow(g, x, z, &cache);
  ASSERT_FALSE(p.events.empty());
  bool saw_root = false;
  for (const tg_util::TraceEvent& e : p.events) {
    EXPECT_EQ(e.query_id, p.query_id);
    saw_root |= e.kind == tg_util::TraceKind::kQuery && e.parent_span == 0;
  }
  EXPECT_TRUE(saw_root);
}

TEST_F(ProvenanceTest, SnapshotSourceDistinguishesColdAndCachedCalls) {
  VertexId x = 0, z = 0;
  ProtectionGraph g = SpyChainGraph(&x, &z);
  AnalysisCache cache;
  // Cold call: the cache must build its snapshot, so the record says so.
  QueryProvenance cold = ExplainCanKnow(g, x, z, &cache);
  EXPECT_EQ(cold.snapshot_source, "rebuilt") << cold.ToText();
  // Same query again: answered from the memoized row.
  QueryProvenance warm = ExplainCanKnow(g, x, z, &cache);
  EXPECT_EQ(warm.snapshot_source, "cached-row") << warm.ToText();
  EXPECT_EQ(cold.verdict, warm.verdict);
  bool warm_saw_hit = false;
  for (const auto& [name, delta] : warm.metrics_delta) {
    warm_saw_hit |= name == "cache.hits" && delta > 0;
    EXPECT_NE(name, "snapshot.builds") << "warm call must not rebuild";
  }
  EXPECT_TRUE(warm_saw_hit);
}

TEST_F(ProvenanceTest, TrueCanShareCarriesVerifiedWitness) {
  // x can take the read right s holds over y.
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId s = g.AddSubject("s");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(x, s, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(s, y, tg::kRead).ok());
  QueryProvenance p = ExplainCanShare(g, tg::Right::kRead, x, y);
  EXPECT_EQ(p.predicate, "can_share read");
  EXPECT_TRUE(p.verdict);
  EXPECT_TRUE(p.has_witness);
  EXPECT_TRUE(p.witness_verified);
  EXPECT_GT(p.witness_de_jure, 0u);
  ASSERT_EQ(p.chain.size(), 4u);
  EXPECT_EQ(p.chain[0].first, "right_holders");
  EXPECT_EQ(p.chain[0].second, 1u);
}

TEST_F(ProvenanceTest, InvalidVertexIsReportedNotDereferenced) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  QueryProvenance p = ExplainCanKnow(g, a, 999);
  EXPECT_FALSE(p.verdict);
  ASSERT_EQ(p.args.size(), 2u);
  EXPECT_EQ(p.args[1], "<invalid:999>");
}

// Verdicts found through the condensed (level-sharded) audit path must
// expand to concrete, replay-verified vertex witnesses: every violation
// the sharded CheckSecure reports is a true can_know pair whose
// ExplainCanKnow provenance replays successfully.  This is the regression
// guard for component-level reachability quietly drifting from the
// vertex-level rule semantics.
TEST_F(ProvenanceTest, ShardedAuditViolationsCarryVerifiedWitnesses) {
  tg_util::Prng prng(1213);
  tg_sim::HierarchicalGraphOptions options;
  options.levels = 3;
  options.clusters_per_level = 2;
  options.subjects_per_cluster = 4;
  options.objects_per_cluster = 2;
  options.planted_channels = 3;
  tg_sim::GeneratedHierarchy h = tg_sim::HierarchicalGraph(options, prng);
  tg_hier::SecurityReport report = tg_hier::CheckSecure(
      h.graph, h.levels, /*max_violations=*/4, nullptr, tg_hier::AuditEngine::kSharded);
  ASSERT_FALSE(report.secure);
  ASSERT_FALSE(report.violations.empty());
  for (const tg_hier::SecurityViolation& v : report.violations) {
    QueryProvenance p = ExplainCanKnow(h.graph, v.lower, v.higher);
    EXPECT_TRUE(p.verdict) << p.ToText();
    EXPECT_TRUE(p.has_witness) << p.ToText();
    EXPECT_TRUE(p.witness_verified) << p.ToText();
  }
}

TEST_F(ProvenanceTest, RecordProvenanceFeedsFlightRecorder) {
  VertexId x = 0, z = 0;
  ProtectionGraph g = SpyChainGraph(&x, &z);
  QueryProvenance p = ExplainCanKnow(g, x, z);

  tg_util::FlightRecorder& recorder = tg_util::FlightRecorder::Instance();
  std::string path = ::testing::TempDir() + "/provenance_flight.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(recorder.Open(path));
  const uint64_t lines_before = recorder.lines_written();
  RecordProvenance(p);
  EXPECT_EQ(recorder.lines_written(), lines_before + 1);
  recorder.Close();
  // Closed recorder: appending becomes a no-op.
  RecordProvenance(p);
  EXPECT_EQ(recorder.lines_written(), lines_before + 1);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"type\":\"provenance\""), std::string::npos);
  EXPECT_NE(content.str().find("\"predicate\":\"can_know\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tg_analysis

#include "src/analysis/can_steal.h"

#include "src/analysis/can_share.h"

#include <gtest/gtest.h>

#include "src/sim/generator.h"
#include "src/util/prng.h"

namespace tg_analysis {
namespace {

using tg::ProtectionGraph;
using tg::Right;
using tg::VertexId;

class CanStealTest : public ::testing::Test {
 protected:
  ProtectionGraph g_;
};

TEST_F(CanStealTest, DirectTakeSteals) {
  // x -t-> s, s -r-> y: x pulls the right; s never grants anything.
  VertexId x = g_.AddSubject("x");
  VertexId s = g_.AddSubject("s");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(x, s, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(s, y, tg::kRead).ok());
  EXPECT_TRUE(CanSteal(g_, Right::kRead, x, y));
  EXPECT_TRUE(OracleCanSteal(g_, Right::kRead, x, y));
}

TEST_F(CanStealTest, AlreadyHeldIsNotTheft) {
  VertexId x = g_.AddSubject("x");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(x, y, tg::kRead).ok());
  EXPECT_FALSE(CanSteal(g_, Right::kRead, x, y));
  EXPECT_FALSE(OracleCanSteal(g_, Right::kRead, x, y));
}

TEST_F(CanStealTest, GrantOnlyOwnerCannotBeRobbed) {
  // The only route is the owner granting the right away, which the theft
  // definition forbids: s -g-> x, s -r-> y, and no t edge to s exists.
  VertexId x = g_.AddSubject("x");
  VertexId s = g_.AddSubject("s");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(s, x, tg::kGrant).ok());
  ASSERT_TRUE(g_.AddExplicit(s, y, tg::kRead).ok());
  EXPECT_FALSE(CanSteal(g_, Right::kRead, x, y));
  EXPECT_FALSE(OracleCanSteal(g_, Right::kRead, x, y));
  // Sharing, by contrast, is possible (the owner may cooperate).
}

TEST_F(CanStealTest, AccompliceRelaysStolenRight) {
  // z -t-> s -g-> x: z steals via take, z initially spans to x (t> g>),
  // and z (not an initial owner) may grant the loot onward into object x.
  VertexId x = g_.AddObject("x");
  VertexId s = g_.AddSubject("s");
  VertexId z = g_.AddSubject("z");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(z, s, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(s, x, tg::kGrant).ok());
  ASSERT_TRUE(g_.AddExplicit(s, y, tg::kRead).ok());
  EXPECT_TRUE(CanSteal(g_, Right::kRead, x, y));
  EXPECT_TRUE(OracleCanSteal(g_, Right::kRead, x, y));
}

TEST_F(CanStealTest, NoOwnersNothingToSteal) {
  VertexId x = g_.AddSubject("x");
  VertexId s = g_.AddSubject("s");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(x, s, tg::kTake).ok());
  EXPECT_FALSE(CanSteal(g_, Right::kRead, x, y));
}

TEST_F(CanStealTest, TheftAcrossBridge) {
  // x reaches the owner's island over a bridge, then pulls t over s.
  VertexId x = g_.AddSubject("x");
  VertexId o = g_.AddObject("o");
  VertexId m = g_.AddSubject("m");
  VertexId s = g_.AddObject("s");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(x, o, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(o, m, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(m, s, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(s, y, tg::kWrite).ok());
  EXPECT_TRUE(CanSteal(g_, Right::kWrite, x, y));
  EXPECT_TRUE(OracleCanSteal(g_, Right::kWrite, x, y));
}

TEST_F(CanStealTest, WitnessReplaysAndNeverOwnerGrants) {
  VertexId x = g_.AddObject("x");
  VertexId s = g_.AddSubject("s");
  VertexId z = g_.AddSubject("z");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(z, s, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(s, x, tg::kGrant).ok());
  ASSERT_TRUE(g_.AddExplicit(s, y, tg::kRead).ok());
  auto witness = BuildCanStealWitness(g_, Right::kRead, x, y);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->VerifyAddsExplicit(g_, x, y, Right::kRead).ok());
  // The initial owner (s) never grants anything.
  for (const tg::RuleApplication& rule : witness->rules()) {
    if (rule.kind == tg::RuleKind::kGrant) {
      EXPECT_NE(rule.x, s) << "initial owner granted during the theft";
    }
  }
}

TEST_F(CanStealTest, StealImpliesShare) {
  tg_util::Prng prng(171717);
  tg_sim::RandomGraphOptions options;
  options.subjects = 4;
  options.objects = 2;
  options.edge_factor = 1.3;
  for (int trial = 0; trial < 15; ++trial) {
    ProtectionGraph g = tg_sim::RandomGraph(options, prng);
    for (VertexId x = 0; x < g.VertexCount(); ++x) {
      for (VertexId y = 0; y < g.VertexCount(); ++y) {
        if (x == y) {
          continue;
        }
        if (CanSteal(g, Right::kRead, x, y)) {
          EXPECT_TRUE(tg_analysis::CanShare(g, Right::kRead, x, y) ||
                      g.HasExplicit(x, y, Right::kRead))
              << g.NameOf(x) << " steals but cannot share " << g.NameOf(y);
        }
      }
    }
  }
}

struct StealSweepParam {
  uint64_t seed;
  size_t subjects;
  size_t objects;
  double edge_factor;
};

class CanStealOracleSweep : public ::testing::TestWithParam<StealSweepParam> {};

TEST_P(CanStealOracleSweep, MatchesExhaustiveSearch) {
  const StealSweepParam& param = GetParam();
  tg_util::Prng prng(param.seed);
  tg_sim::RandomGraphOptions options;
  options.subjects = param.subjects;
  options.objects = param.objects;
  options.edge_factor = param.edge_factor;
  OracleOptions oracle;
  oracle.max_creates = 1;
  oracle.max_states = 30000;
  for (int trial = 0; trial < 5; ++trial) {
    ProtectionGraph g = tg_sim::RandomGraph(options, prng);
    for (VertexId x = 0; x < g.VertexCount(); ++x) {
      for (VertexId y = 0; y < g.VertexCount(); ++y) {
        if (x == y) {
          continue;
        }
        bool oracle_says = OracleCanSteal(g, Right::kRead, x, y, oracle);
        // CanSteal (filter + certificate) must agree with the raw search...
        EXPECT_EQ(CanSteal(g, Right::kRead, x, y, oracle), oracle_says)
            << "x=" << g.NameOf(x) << " y=" << g.NameOf(y) << " trial=" << trial
            << " seed=" << param.seed;
        // ...and the fast filter must never reject a real theft.
        if (oracle_says) {
          EXPECT_TRUE(CanStealNecessary(g, Right::kRead, x, y))
              << "filter rejected a real theft: x=" << g.NameOf(x) << " y=" << g.NameOf(y)
              << " trial=" << trial << " seed=" << param.seed;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CanStealOracleSweep,
                         ::testing::Values(StealSweepParam{71, 2, 2, 1.0},
                                           StealSweepParam{72, 3, 1, 1.2},
                                           StealSweepParam{73, 3, 2, 0.9},
                                           StealSweepParam{74, 2, 3, 1.4}));

}  // namespace
}  // namespace tg_analysis

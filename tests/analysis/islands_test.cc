#include "src/analysis/islands.h"

#include <gtest/gtest.h>

namespace tg_analysis {
namespace {

using tg::ProtectionGraph;
using tg::VertexId;

TEST(IslandsTest, SingletonSubjects) {
  ProtectionGraph g;
  g.AddSubject("a");
  g.AddSubject("b");
  Islands islands(g);
  EXPECT_EQ(islands.Count(), 2u);
  EXPECT_FALSE(islands.SameIsland(0, 1));
}

TEST(IslandsTest, TgEdgeJoinsSubjects) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddSubject("b");
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kTake).ok());
  Islands islands(g);
  EXPECT_EQ(islands.Count(), 1u);
  EXPECT_TRUE(islands.SameIsland(a, b));
}

TEST(IslandsTest, DirectionIrrelevant) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddSubject("b");
  ASSERT_TRUE(g.AddExplicit(b, a, tg::kGrant).ok());
  Islands islands(g);
  EXPECT_TRUE(islands.SameIsland(a, b));
}

TEST(IslandsTest, RwEdgesDoNotJoin) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddSubject("b");
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kReadWrite).ok());
  Islands islands(g);
  EXPECT_FALSE(islands.SameIsland(a, b));
}

TEST(IslandsTest, ObjectsBreakChains) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId o = g.AddObject("o");
  VertexId b = g.AddSubject("b");
  ASSERT_TRUE(g.AddExplicit(a, o, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(o, b, tg::kTake).ok());
  Islands islands(g);
  // The t-path through the object is a bridge, not island glue.
  EXPECT_FALSE(islands.SameIsland(a, b));
  EXPECT_EQ(islands.IslandOf(o), kNoIsland);
}

TEST(IslandsTest, ImplicitEdgesDoNotJoin) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddSubject("b");
  ASSERT_TRUE(g.AddImplicit(a, b, tg::kRead).ok());
  Islands islands(g);
  EXPECT_FALSE(islands.SameIsland(a, b));
}

TEST(IslandsTest, TransitiveChains) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddSubject("b");
  VertexId c = g.AddSubject("c");
  VertexId d = g.AddSubject("d");
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(c, b, tg::kGrant).ok());
  Islands islands(g);
  EXPECT_TRUE(islands.SameIsland(a, c));
  EXPECT_FALSE(islands.SameIsland(a, d));
  EXPECT_EQ(islands.Count(), 2u);
}

TEST(IslandsTest, MembersSortedById) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddSubject("b");
  VertexId c = g.AddSubject("c");
  ASSERT_TRUE(g.AddExplicit(c, a, tg::kTake).ok());
  Islands islands(g);
  uint32_t island = islands.IslandOf(a);
  EXPECT_EQ(islands.Members(island), (std::vector<VertexId>{a, c}));
  EXPECT_EQ(islands.IslandOf(b), islands.IslandOf(b));
}

}  // namespace
}  // namespace tg_analysis

#include "src/analysis/witness_builder.h"

#include <gtest/gtest.h>

#include "src/analysis/can_know.h"
#include "src/analysis/can_share.h"
#include "src/analysis/oracle.h"
#include "src/sim/generator.h"
#include "src/util/prng.h"

namespace tg_analysis {
namespace {

using tg::ProtectionGraph;
using tg::Right;
using tg::VertexId;
using tg::Witness;

void ExpectShareWitness(const ProtectionGraph& g, Right right, VertexId x, VertexId y) {
  auto witness = BuildCanShareWitness(g, right, x, y);
  ASSERT_TRUE(witness.has_value()) << "no witness for " << g.NameOf(x) << " -> " << g.NameOf(y);
  tg_util::Status replay = witness->VerifyAddsExplicit(g, x, y, right);
  EXPECT_TRUE(replay.ok()) << replay.ToString() << "\n" << witness->ToString(g);
}

TEST(CanShareWitnessTest, ExistingEdgeEmptyWitness) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(x, y, tg::kRead).ok());
  auto witness = BuildCanShareWitness(g, Right::kRead, x, y);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->empty());
}

TEST(CanShareWitnessTest, DirectTakeChain) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId a = g.AddObject("a");
  VertexId b = g.AddObject("b");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(x, a, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(b, y, tg::kRead).ok());
  ExpectShareWitness(g, Right::kRead, x, y);
}

TEST(CanShareWitnessTest, ReversedTakeLink) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId s = g.AddSubject("s");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(s, x, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(s, y, tg::kRead).ok());
  ExpectShareWitness(g, Right::kRead, x, y);
}

TEST(CanShareWitnessTest, GrantLinkForward) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId s = g.AddSubject("s");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(x, s, tg::kGrant).ok());
  ASSERT_TRUE(g.AddExplicit(s, y, tg::kRead).ok());
  ExpectShareWitness(g, Right::kRead, x, y);
}

TEST(CanShareWitnessTest, GrantLinkBackward) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId s = g.AddSubject("s");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(s, x, tg::kGrant).ok());
  ASSERT_TRUE(g.AddExplicit(s, y, tg::kRead).ok());
  ExpectShareWitness(g, Right::kRead, x, y);
}

TEST(CanShareWitnessTest, GrantPivotBridge) {
  ProtectionGraph g;
  VertexId p = g.AddSubject("p");
  VertexId a = g.AddObject("a");
  VertexId b = g.AddObject("b");
  VertexId q = g.AddSubject("q");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(p, a, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kGrant).ok());
  ASSERT_TRUE(g.AddExplicit(q, b, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(q, y, tg::kRead).ok());
  ExpectShareWitness(g, Right::kRead, p, y);
}

TEST(CanShareWitnessTest, ReversedGrantPivotBridge) {
  ProtectionGraph g;
  VertexId p = g.AddSubject("p");
  VertexId a = g.AddObject("a");
  VertexId b = g.AddObject("b");
  VertexId q = g.AddSubject("q");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(p, a, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(b, a, tg::kGrant).ok());
  ASSERT_TRUE(g.AddExplicit(q, b, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(q, y, tg::kRead).ok());
  ExpectShareWitness(g, Right::kRead, p, y);
}

TEST(CanShareWitnessTest, BackwardTakeBridge) {
  ProtectionGraph g;
  VertexId p = g.AddSubject("p");
  VertexId o = g.AddObject("o");
  VertexId q = g.AddSubject("q");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(o, p, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(q, o, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(q, y, tg::kWrite).ok());
  ExpectShareWitness(g, Right::kWrite, p, y);
}

TEST(CanShareWitnessTest, InjectIntoObjectTarget) {
  ProtectionGraph g;
  VertexId holder = g.AddSubject("holder");
  VertexId x = g.AddObject("x");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(holder, x, tg::kGrant).ok());
  ASSERT_TRUE(g.AddExplicit(holder, y, tg::kRead).ok());
  ExpectShareWitness(g, Right::kRead, x, y);
}

TEST(CanShareWitnessTest, TwoBridgeChain) {
  ProtectionGraph g;
  VertexId p = g.AddSubject("p");
  VertexId o1 = g.AddObject("o1");
  VertexId m = g.AddSubject("m");
  VertexId o2 = g.AddObject("o2");
  VertexId q = g.AddSubject("q");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(p, o1, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(o1, m, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(m, o2, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(o2, q, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(q, y, tg::kRead).ok());
  ExpectShareWitness(g, Right::kRead, p, y);
}

TEST(CanShareWitnessTest, NoWitnessWhenNotShareable) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId y = g.AddObject("y");
  VertexId s = g.AddSubject("s");
  ASSERT_TRUE(g.AddExplicit(s, y, tg::kRead).ok());
  EXPECT_FALSE(BuildCanShareWitness(g, Right::kRead, x, y).has_value());
}

// Property: wherever the decision procedure says true, a witness exists and
// replays; wherever it says false, no witness is produced.
TEST(CanShareWitnessTest, RandomGraphsWitnessIffShareable) {
  tg_util::Prng prng(2718);
  tg_sim::RandomGraphOptions options;
  options.subjects = 4;
  options.objects = 2;
  options.edge_factor = 1.2;
  for (int trial = 0; trial < 25; ++trial) {
    ProtectionGraph g = tg_sim::RandomGraph(options, prng);
    for (VertexId x = 0; x < g.VertexCount(); ++x) {
      for (VertexId y = 0; y < g.VertexCount(); ++y) {
        if (x == y) {
          continue;
        }
        bool shareable = CanShare(g, Right::kRead, x, y);
        auto witness = BuildCanShareWitness(g, Right::kRead, x, y);
        ASSERT_EQ(shareable, witness.has_value())
            << "witness/decision mismatch trial=" << trial << " x=" << g.NameOf(x)
            << " y=" << g.NameOf(y);
        if (witness.has_value()) {
          tg_util::Status replay = witness->VerifyAddsExplicit(g, x, y, Right::kRead);
          ASSERT_TRUE(replay.ok()) << replay.ToString() << "\n" << witness->ToString(g);
        }
      }
    }
  }
}

TEST(CanKnowFWitnessTest, SaturationWitnessReplays) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId m = g.AddObject("m");
  VertexId z = g.AddSubject("z");
  VertexId w = g.AddSubject("w");
  ASSERT_TRUE(g.AddExplicit(x, m, tg::kRead).ok());
  ASSERT_TRUE(g.AddExplicit(z, m, tg::kWrite).ok());
  ASSERT_TRUE(g.AddExplicit(z, w, tg::kRead).ok());
  auto witness = BuildCanKnowFWitness(g, x, w);
  ASSERT_TRUE(witness.has_value());
  EXPECT_GE(witness->size(), 1u);
  auto replayed = witness->Replay(g);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(KnowEdgePresent(*replayed, x, w));
}

TEST(CanKnowFWitnessTest, TrivialWhenEdgeExists) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(x, y, tg::kRead).ok());
  auto witness = BuildCanKnowFWitness(g, x, y);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->empty());
}

TEST(CanKnowFWitnessTest, NulloptWhenImpossible) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId y = g.AddSubject("y");
  EXPECT_FALSE(BuildCanKnowFWitness(g, x, y).has_value());
}

TEST(CanKnowWitnessTest, TakeThenReadChain) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId o = g.AddObject("o");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(x, o, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(o, y, tg::kRead).ok());
  auto witness = BuildCanKnowWitness(g, x, y);
  ASSERT_TRUE(witness.has_value());
  auto replayed = witness->Replay(g);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_TRUE(KnowEdgePresent(*replayed, x, y));
}

TEST(CanKnowWitnessTest, ForwardBridgeCollapsesToTerminalSpan) {
  // x -t-> o -t-> u -r-> y: x itself terminally spans to y, so the witness
  // is a pure take chain (no de facto step needed).
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId o = g.AddObject("o");
  VertexId u = g.AddSubject("u");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(x, o, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(o, u, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(u, y, tg::kRead).ok());
  auto witness = BuildCanKnowWitness(g, x, y);
  ASSERT_TRUE(witness.has_value());
  auto replayed = witness->Replay(g);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_TRUE(KnowEdgePresent(*replayed, x, y));
  EXPECT_EQ(witness->DeFactoCount(), 0u);
}

TEST(CanKnowWitnessTest, BackwardBridgeUsesMailbox) {
  // Bridge word t< t< from x to u: x cannot pull anything itself; the
  // construction must cross the bridge with a mailbox and finish de facto.
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId o = g.AddObject("o");
  VertexId u = g.AddSubject("u");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(o, x, tg::kTake).ok());  // edges point backward
  ASSERT_TRUE(g.AddExplicit(u, o, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(u, y, tg::kRead).ok());
  ASSERT_FALSE(tg_analysis::CanKnowF(g, x, y));
  ASSERT_TRUE(tg_analysis::CanKnow(g, x, y));
  auto witness = BuildCanKnowWitness(g, x, y);
  ASSERT_TRUE(witness.has_value());
  auto replayed = witness->Replay(g);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_TRUE(KnowEdgePresent(*replayed, x, y));
  EXPECT_GT(witness->DeFactoCount(), 0u);  // the flow itself is de facto
}

TEST(CanKnowWitnessTest, HeadSpanForObjectX) {
  // u writes into object x and reads y: x learns y.
  ProtectionGraph g;
  VertexId x = g.AddObject("x");
  VertexId u = g.AddSubject("u");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(u, x, tg::kWrite).ok());
  ASSERT_TRUE(g.AddExplicit(u, y, tg::kRead).ok());
  auto witness = BuildCanKnowWitness(g, x, y);
  ASSERT_TRUE(witness.has_value());
  auto replayed = witness->Replay(g);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(KnowEdgePresent(*replayed, x, y));
}

TEST(CanKnowWitnessTest, TrivialCases) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(x, y, tg::kRead).ok());
  auto direct = BuildCanKnowWitness(g, x, y);
  ASSERT_TRUE(direct.has_value());
  EXPECT_TRUE(direct->empty());
  auto self = BuildCanKnowWitness(g, x, x);
  ASSERT_TRUE(self.has_value());
  EXPECT_TRUE(self->empty());
}

TEST(CanKnowWitnessTest, NulloptWhenUnknowable) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId y = g.AddSubject("y");
  ASSERT_TRUE(g.AddExplicit(x, y, tg::kWrite).ok());  // only y learns x
  EXPECT_FALSE(BuildCanKnowWitness(g, x, y).has_value());
}

TEST(CanKnowWitnessTest, RandomGraphsWitnessIffKnowable) {
  tg_util::Prng prng(141421);
  tg_sim::RandomGraphOptions options;
  options.subjects = 4;
  options.objects = 2;
  options.edge_factor = 1.2;
  for (int trial = 0; trial < 15; ++trial) {
    ProtectionGraph g = tg_sim::RandomGraph(options, prng);
    for (VertexId x = 0; x < g.VertexCount(); ++x) {
      for (VertexId y = 0; y < g.VertexCount(); ++y) {
        if (x == y) {
          continue;
        }
        bool knowable = tg_analysis::CanKnow(g, x, y);
        auto witness = BuildCanKnowWitness(g, x, y);
        ASSERT_EQ(knowable, witness.has_value())
            << "trial=" << trial << " x=" << g.NameOf(x) << " y=" << g.NameOf(y);
        if (witness.has_value()) {
          auto replayed = witness->Replay(g);
          ASSERT_TRUE(replayed.ok())
              << replayed.status().ToString() << "\n" << witness->ToString(g);
          EXPECT_TRUE(KnowEdgePresent(*replayed, x, y))
              << "trial=" << trial << " x=" << g.NameOf(x) << " y=" << g.NameOf(y);
        }
      }
    }
  }
}

TEST(CanKnowFWitnessTest, RandomGraphsWitnessIffKnowable) {
  tg_util::Prng prng(31415);
  tg_sim::RandomGraphOptions options;
  options.subjects = 4;
  options.objects = 3;
  options.edge_factor = 1.4;
  for (int trial = 0; trial < 15; ++trial) {
    ProtectionGraph g = tg_sim::RandomGraph(options, prng);
    for (VertexId x = 0; x < g.VertexCount(); ++x) {
      for (VertexId y = 0; y < g.VertexCount(); ++y) {
        if (x == y) {
          continue;
        }
        bool knowable = CanKnowF(g, x, y);
        auto witness = BuildCanKnowFWitness(g, x, y);
        ASSERT_EQ(knowable, witness.has_value())
            << "trial=" << trial << " x=" << g.NameOf(x) << " y=" << g.NameOf(y);
        if (witness.has_value()) {
          auto replayed = witness->Replay(g);
          ASSERT_TRUE(replayed.ok());
          EXPECT_TRUE(KnowEdgePresent(*replayed, x, y));
        }
      }
    }
  }
}

}  // namespace
}  // namespace tg_analysis

#include "src/analysis/can_know.h"

#include <gtest/gtest.h>

#include "src/analysis/oracle.h"
#include "src/sim/generator.h"
#include "src/util/prng.h"

namespace tg_analysis {
namespace {

using tg::ProtectionGraph;
using tg::Right;
using tg::VertexId;

class CanKnowFTest : public ::testing::Test {
 protected:
  ProtectionGraph g_;
};

TEST_F(CanKnowFTest, ReflexiveByConvention) {
  VertexId a = g_.AddSubject("a");
  EXPECT_TRUE(CanKnowF(g_, a, a));
}

TEST_F(CanKnowFTest, DirectReadBySubject) {
  VertexId a = g_.AddSubject("a");
  VertexId b = g_.AddObject("b");
  ASSERT_TRUE(g_.AddExplicit(a, b, tg::kRead).ok());
  EXPECT_TRUE(CanKnowF(g_, a, b));
  EXPECT_FALSE(CanKnowF(g_, b, a));
}

TEST_F(CanKnowFTest, ObjectReadEdgeDoesNotCount) {
  VertexId a = g_.AddObject("a");
  VertexId b = g_.AddObject("b");
  ASSERT_TRUE(g_.AddExplicit(a, b, tg::kRead).ok());
  EXPECT_FALSE(CanKnowF(g_, a, b));
}

TEST_F(CanKnowFTest, WriteGivesReverseKnowledge) {
  VertexId a = g_.AddObject("a");
  VertexId b = g_.AddSubject("b");
  ASSERT_TRUE(g_.AddExplicit(b, a, tg::kWrite).ok());
  // b writes a, so a's holder effectively learns b (duality of r and w).
  EXPECT_TRUE(CanKnowF(g_, a, b));
}

TEST_F(CanKnowFTest, SpyChain) {
  VertexId x = g_.AddSubject("x");
  VertexId y = g_.AddSubject("y");
  VertexId z = g_.AddObject("z");
  ASSERT_TRUE(g_.AddExplicit(x, y, tg::kRead).ok());
  ASSERT_TRUE(g_.AddExplicit(y, z, tg::kRead).ok());
  EXPECT_TRUE(CanKnowF(g_, x, z));
}

TEST_F(CanKnowFTest, ObjectInMiddleOfReadsBlocks) {
  VertexId x = g_.AddSubject("x");
  VertexId y = g_.AddObject("y");  // object cannot spy
  VertexId z = g_.AddObject("z");
  ASSERT_TRUE(g_.AddExplicit(x, y, tg::kRead).ok());
  ASSERT_TRUE(g_.AddExplicit(y, z, tg::kRead).ok());
  EXPECT_FALSE(CanKnowF(g_, x, z));
}

TEST_F(CanKnowFTest, PostThroughSharedObject) {
  VertexId x = g_.AddSubject("x");
  VertexId m = g_.AddObject("m");
  VertexId z = g_.AddSubject("z");
  ASSERT_TRUE(g_.AddExplicit(x, m, tg::kRead).ok());
  ASSERT_TRUE(g_.AddExplicit(z, m, tg::kWrite).ok());
  EXPECT_TRUE(CanKnowF(g_, x, z));
  EXPECT_FALSE(CanKnowF(g_, z, x));
}

TEST_F(CanKnowFTest, AdmissiblePathWitness) {
  VertexId x = g_.AddSubject("x");
  VertexId m = g_.AddObject("m");
  VertexId z = g_.AddSubject("z");
  ASSERT_TRUE(g_.AddExplicit(x, m, tg::kRead).ok());
  ASSERT_TRUE(g_.AddExplicit(z, m, tg::kWrite).ok());
  auto path = FindAdmissibleRwPath(g_, x, z);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(tg::WordToString(path->word()), "r> w<");
}

class CanKnowTest : public ::testing::Test {
 protected:
  ProtectionGraph g_;
};

TEST_F(CanKnowTest, SubsumesCanKnowF) {
  VertexId x = g_.AddSubject("x");
  VertexId y = g_.AddSubject("y");
  ASSERT_TRUE(g_.AddExplicit(x, y, tg::kRead).ok());
  EXPECT_TRUE(CanKnow(g_, x, y));
}

TEST_F(CanKnowTest, TakeThenReadChain) {
  VertexId x = g_.AddSubject("x");
  VertexId o = g_.AddObject("o");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(x, o, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(o, y, tg::kRead).ok());
  // x can take r over y, then read: can_know but NOT can_know_f.
  EXPECT_TRUE(CanKnow(g_, x, y));
  EXPECT_FALSE(CanKnowF(g_, x, y));
}

TEST_F(CanKnowTest, BridgeThenSpan) {
  VertexId x = g_.AddSubject("x");
  VertexId o = g_.AddObject("o");
  VertexId u = g_.AddSubject("u");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(x, o, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(o, u, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(u, y, tg::kRead).ok());
  EXPECT_TRUE(CanKnow(g_, x, y));
  EXPECT_FALSE(CanKnow(g_, y, x));
}

TEST_F(CanKnowTest, HeadSpanForObjectX) {
  // u writes into object x after a take chain; u reads y: can_know(x, y).
  VertexId x = g_.AddObject("x");
  VertexId u = g_.AddSubject("u");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(u, x, tg::kWrite).ok());
  ASSERT_TRUE(g_.AddExplicit(u, y, tg::kRead).ok());
  EXPECT_TRUE(CanKnow(g_, x, y));
}

TEST_F(CanKnowTest, NoChannelNoKnowledge) {
  VertexId x = g_.AddSubject("x");
  VertexId y = g_.AddSubject("y");
  ASSERT_TRUE(g_.AddExplicit(x, y, tg::kWrite).ok());  // x writes y: y knows x
  EXPECT_FALSE(CanKnow(g_, x, y));
  EXPECT_TRUE(CanKnow(g_, y, x));
}

TEST_F(CanKnowTest, KnowableFromMatchesPairwise) {
  VertexId x = g_.AddSubject("x");
  VertexId o = g_.AddObject("o");
  VertexId u = g_.AddSubject("u");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(x, o, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(o, u, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(u, y, tg::kRead).ok());
  std::vector<bool> knowable = KnowableFrom(g_, x);
  for (VertexId v = 0; v < g_.VertexCount(); ++v) {
    EXPECT_EQ(knowable[v], CanKnow(g_, x, v)) << g_.NameOf(v);
  }
}

// ---- Theorems 3.1 / 3.2: decision procedures vs oracles ----

struct KnowSweepParam {
  uint64_t seed;
  size_t subjects;
  size_t objects;
  double edge_factor;
};

class CanKnowFOracleSweep : public ::testing::TestWithParam<KnowSweepParam> {};

TEST_P(CanKnowFOracleSweep, MatchesSaturation) {
  const KnowSweepParam& param = GetParam();
  tg_util::Prng prng(param.seed);
  tg_sim::RandomGraphOptions options;
  options.subjects = param.subjects;
  options.objects = param.objects;
  options.edge_factor = param.edge_factor;
  for (int trial = 0; trial < 20; ++trial) {
    ProtectionGraph g = tg_sim::RandomGraph(options, prng);
    for (VertexId x = 0; x < g.VertexCount(); ++x) {
      for (VertexId y = 0; y < g.VertexCount(); ++y) {
        EXPECT_EQ(CanKnowF(g, x, y), OracleCanKnowF(g, x, y))
            << "x=" << g.NameOf(x) << " y=" << g.NameOf(y) << " trial=" << trial
            << " seed=" << param.seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CanKnowFOracleSweep,
                         ::testing::Values(KnowSweepParam{101, 3, 2, 1.5},
                                           KnowSweepParam{202, 4, 2, 1.2},
                                           KnowSweepParam{303, 5, 3, 1.0},
                                           KnowSweepParam{404, 2, 4, 2.0},
                                           KnowSweepParam{505, 6, 2, 0.8}));

class CanKnowOracleSweep : public ::testing::TestWithParam<KnowSweepParam> {};

TEST_P(CanKnowOracleSweep, MatchesBoundedSearch) {
  const KnowSweepParam& param = GetParam();
  tg_util::Prng prng(param.seed);
  tg_sim::RandomGraphOptions options;
  options.subjects = param.subjects;
  options.objects = param.objects;
  options.edge_factor = param.edge_factor;
  OracleOptions oracle_options;
  oracle_options.max_creates = 1;
  oracle_options.max_states = 20000;
  for (int trial = 0; trial < 4; ++trial) {
    ProtectionGraph g = tg_sim::RandomGraph(options, prng);
    for (VertexId x = 0; x < g.VertexCount(); ++x) {
      for (VertexId y = 0; y < g.VertexCount(); ++y) {
        EXPECT_EQ(CanKnow(g, x, y), OracleCanKnow(g, x, y, oracle_options))
            << "x=" << g.NameOf(x) << " y=" << g.NameOf(y) << " trial=" << trial
            << " seed=" << param.seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CanKnowOracleSweep,
                         ::testing::Values(KnowSweepParam{111, 2, 2, 1.0},
                                           KnowSweepParam{222, 3, 1, 1.2},
                                           KnowSweepParam{333, 3, 2, 0.8},
                                           KnowSweepParam{444, 2, 3, 1.4}));

}  // namespace
}  // namespace tg_analysis

// Differential tests for the per-word-type bridge-enum engine.
//
// The keystone claim is language decomposition: the seven typed reach sets
// of BridgeEnumIndex must match, per type, a product BFS over that type's
// own sublanguage DFA, and their union must match the generic
// bridge-or-connection sweep — on unstructured random graphs and on every
// planted-channel generator configuration.  On top of that the audit
// engines built from the index (AuditEngine::kBridgeEnum) must be
// bit-identical to the dense and sharded engines, cutoffs included, and
// every typed channel must carry a replay-verified witness.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/analysis/bridge_enum.h"
#include "src/take_grant.h"

namespace {

using tg_analysis::BridgeEnumIndex;
using tg_analysis::ChannelWordDfa;
using tg_analysis::ChannelWordType;
using tg_analysis::kChannelWordTypeCount;
using tg_analysis::TypedChannel;
using tg_hier::AuditEngine;
using tg_hier::CrossLevelChannel;
using tg_hier::SecurityReport;
using tg_hier::TypedCrossLevelChannel;

tg::ProtectionGraph Random(uint64_t seed, size_t subjects, size_t objects,
                           double edge_factor) {
  tg_util::Prng prng(seed);
  tg_sim::RandomGraphOptions options;
  options.subjects = subjects;
  options.objects = objects;
  options.edge_factor = edge_factor;
  return tg_sim::RandomGraph(options, prng);
}

tg_sim::GeneratedHierarchy Hierarchy(size_t planted, uint64_t seed, size_t levels = 4,
                                     size_t clusters = 3) {
  tg_util::Prng prng(seed);
  tg_sim::HierarchicalGraphOptions options;
  options.levels = levels;
  options.clusters_per_level = clusters;
  options.subjects_per_cluster = 5;
  options.objects_per_cluster = 2;
  options.tg_chords_per_cluster = 2;
  options.reads_down_per_subject = 1;
  options.planted_channels = planted;
  return tg_sim::HierarchicalGraph(options, prng);
}

// The generic product-BFS answer for one sublanguage from one source.
std::vector<bool> DfaReach(const tg::AnalysisSnapshot& snap, tg::VertexId source,
                           const tg_util::Dfa& dfa) {
  tg::SnapshotBfsOptions options;
  options.use_implicit = true;
  const tg::VertexId sources[] = {source};
  return tg::SnapshotWordReachable(snap, sources, dfa, options);
}

// --- Per-type reachability vs the sublanguage DFA on random graphs. ---

TEST(BridgeEnumTest, PerTypeReachMatchesSublanguageDfaOnRandomGraphs) {
  for (uint64_t seed : {uint64_t{3}, uint64_t{41}, uint64_t{909}}) {
    tg::ProtectionGraph g = Random(seed, /*subjects=*/10, /*objects=*/5, /*edge_factor=*/1.8);
    const tg::AnalysisSnapshot snap(g);
    const BridgeEnumIndex index(snap);
    for (size_t t = 0; t < kChannelWordTypeCount; ++t) {
      const ChannelWordType type = static_cast<ChannelWordType>(t);
      const tg_util::Dfa& dfa = ChannelWordDfa(type);
      for (tg::VertexId u = 0; u < g.VertexCount(); ++u) {
        const std::vector<bool> expected = DfaReach(snap, u, dfa);
        for (tg::VertexId v = 0; v < g.VertexCount(); ++v) {
          EXPECT_EQ(index.Reaches(u, v, type), expected[v])
              << "seed=" << seed << " type=" << tg_analysis::ChannelWordTypeName(type)
              << " u=" << u << " v=" << v;
        }
      }
    }
  }
}

TEST(BridgeEnumTest, UnionReachMatchesBridgeOrConnectionDfa) {
  for (uint64_t seed : {uint64_t{7}, uint64_t{123}}) {
    tg::ProtectionGraph g = Random(seed, /*subjects=*/12, /*objects=*/6, /*edge_factor=*/2.0);
    const tg::AnalysisSnapshot snap(g);
    const BridgeEnumIndex index(snap);
    const size_t words = (g.VertexCount() + 63) / 64;
    for (tg::VertexId u = 0; u < g.VertexCount(); ++u) {
      const std::vector<bool> expected = DfaReach(snap, u, tg::BridgeOrConnectionDfa());
      std::vector<uint64_t> row(words, 0);
      index.OrReach(u, row);
      for (tg::VertexId v = 0; v < g.VertexCount(); ++v) {
        const bool got = (row[v >> 6] >> (v & 63)) & 1;
        EXPECT_EQ(got, expected[v]) << "seed=" << seed << " u=" << u << " v=" << v;
        EXPECT_EQ(index.ReachesAny(u, v), expected[v])
            << "seed=" << seed << " u=" << u << " v=" << v;
      }
    }
  }
}

// --- Classification and witnesses on single-edge graphs: each word type
// in isolation. ---

TEST(BridgeEnumTest, ClassifiesEachWordTypeOnMinimalGraphs) {
  struct Case {
    ChannelWordType type;
    tg::Right right;
    bool backward;   // edge points v -> u (or writer -> object)
    bool via_object; // kReadWrite: u -r-> o <-w- v
  };
  const Case cases[] = {
      {ChannelWordType::kTakeFwd, tg::Right::kTake, false, false},
      {ChannelWordType::kTakeBack, tg::Right::kTake, true, false},
      {ChannelWordType::kGrantFwd, tg::Right::kGrant, false, false},
      {ChannelWordType::kGrantBack, tg::Right::kGrant, true, false},
      {ChannelWordType::kRead, tg::Right::kRead, false, false},
      {ChannelWordType::kWrite, tg::Right::kWrite, true, false},
      {ChannelWordType::kReadWrite, tg::Right::kRead, false, true},
  };
  for (const Case& c : cases) {
    tg::ProtectionGraph g;
    const tg::VertexId u = g.AddSubject("u");
    const tg::VertexId v = g.AddSubject("v");
    if (c.via_object) {
      const tg::VertexId o = g.AddObject("o");
      ASSERT_TRUE(g.AddExplicit(u, o, tg::kRead).ok());
      ASSERT_TRUE(g.AddExplicit(v, o, tg::kWrite).ok());
    } else if (c.backward) {
      ASSERT_TRUE(g.AddExplicit(v, u, tg::RightSet(c.right)).ok());
    } else {
      ASSERT_TRUE(g.AddExplicit(u, v, tg::RightSet(c.right)).ok());
    }
    const tg::AnalysisSnapshot snap(g);
    const BridgeEnumIndex index(snap);
    const std::optional<ChannelWordType> type = index.Classify(u, v);
    ASSERT_TRUE(type.has_value()) << tg_analysis::ChannelWordTypeName(c.type);
    EXPECT_EQ(*type, c.type) << tg_analysis::ChannelWordTypeName(c.type);
    const std::optional<TypedChannel> channel = index.DescribeChannel(g, u, v);
    ASSERT_TRUE(channel.has_value());
    EXPECT_EQ(channel->word_type, c.type);
    EXPECT_TRUE(channel->replay_verified) << tg_analysis::ChannelWordTypeName(c.type);
    EXPECT_TRUE(tg_analysis::VerifyChannelPath(g, *channel));
    if (c.type == ChannelWordType::kTakeFwd || c.type == ChannelWordType::kTakeBack) {
      EXPECT_EQ(channel->pivot_src, tg::kInvalidVertex);
    } else {
      // The pivot is recorded in graph direction, whichever way the walk
      // crossed it.
      EXPECT_NE(channel->pivot_src, tg::kInvalidVertex);
      EXPECT_NE(channel->pivot_dst, tg::kInvalidVertex);
    }
  }
}

TEST(BridgeEnumTest, DescribeChannelVerifiesOnRandomGraphs) {
  for (uint64_t seed : {uint64_t{17}, uint64_t{55}}) {
    tg::ProtectionGraph g = Random(seed, /*subjects=*/8, /*objects=*/4, /*edge_factor=*/1.6);
    const tg::AnalysisSnapshot snap(g);
    const BridgeEnumIndex index(snap);
    for (tg::VertexId u = 0; u < g.VertexCount(); ++u) {
      for (tg::VertexId v = 0; v < g.VertexCount(); ++v) {
        if (u == v) {
          continue;
        }
        const std::optional<TypedChannel> channel = index.DescribeChannel(g, u, v);
        EXPECT_EQ(channel.has_value(), index.ReachesAny(u, v));
        if (channel.has_value()) {
          EXPECT_TRUE(channel->replay_verified) << "seed=" << seed << " u=" << u << " v=" << v;
          EXPECT_EQ(channel->word_type, *index.Classify(u, v));
        }
      }
    }
  }
}

// --- Audit-engine differentials: kBridgeEnum vs kDense vs kSharded. ---

void ExpectSameReports(const SecurityReport& a, const SecurityReport& b, const std::string& what) {
  EXPECT_EQ(a.secure, b.secure) << what;
  ASSERT_EQ(a.violations.size(), b.violations.size()) << what;
  for (size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].lower, b.violations[i].lower) << what << " violation " << i;
    EXPECT_EQ(a.violations[i].higher, b.violations[i].higher) << what << " violation " << i;
    EXPECT_EQ(a.violations[i].detail, b.violations[i].detail) << what << " violation " << i;
  }
}

void ExpectSameChannels(const std::vector<CrossLevelChannel>& a,
                        const std::vector<CrossLevelChannel>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].from, b[i].from) << what << " channel " << i;
    EXPECT_EQ(a[i].to, b[i].to) << what << " channel " << i;
    EXPECT_EQ(a[i].path, b[i].path) << what << " channel " << i;
  }
}

TEST(BridgeEnumTest, CheckSecureMatchesDenseAndShardedOnPlantedConfigs) {
  for (size_t planted : {size_t{0}, size_t{2}, size_t{6}}) {
    for (uint64_t seed : {uint64_t{5}, uint64_t{77}}) {
      tg_sim::GeneratedHierarchy h = Hierarchy(planted, seed);
      const std::string what =
          "planted=" + std::to_string(planted) + " seed=" + std::to_string(seed);
      SecurityReport dense =
          tg_hier::CheckSecure(h.graph, h.levels, 0, nullptr, AuditEngine::kDense);
      SecurityReport sharded =
          tg_hier::CheckSecure(h.graph, h.levels, 0, nullptr, AuditEngine::kSharded);
      SecurityReport bridge =
          tg_hier::CheckSecure(h.graph, h.levels, 0, nullptr, AuditEngine::kBridgeEnum);
      ExpectSameReports(dense, bridge, what + " vs dense");
      ExpectSameReports(sharded, bridge, what + " vs sharded");
      // Cutoff parity below, at, and above the true count.
      for (size_t cap : {size_t{1}, size_t{3}, dense.violations.size() + 2}) {
        SecurityReport dense_cut =
            tg_hier::CheckSecure(h.graph, h.levels, cap, nullptr, AuditEngine::kDense);
        SecurityReport bridge_cut =
            tg_hier::CheckSecure(h.graph, h.levels, cap, nullptr, AuditEngine::kBridgeEnum);
        ExpectSameReports(dense_cut, bridge_cut, what + " cap=" + std::to_string(cap));
      }
    }
  }
}

TEST(BridgeEnumTest, ChannelsMatchDenseAndShardedOnPlantedConfigs) {
  for (size_t planted : {size_t{0}, size_t{2}, size_t{6}}) {
    for (uint64_t seed : {uint64_t{13}, uint64_t{99}}) {
      tg_sim::GeneratedHierarchy h = Hierarchy(planted, seed);
      const std::string what =
          "planted=" + std::to_string(planted) + " seed=" + std::to_string(seed);
      std::vector<CrossLevelChannel> dense =
          tg_hier::FindCrossLevelChannels(h.graph, h.levels, 0, nullptr, AuditEngine::kDense);
      std::vector<CrossLevelChannel> sharded =
          tg_hier::FindCrossLevelChannels(h.graph, h.levels, 0, nullptr, AuditEngine::kSharded);
      std::vector<CrossLevelChannel> bridge = tg_hier::FindCrossLevelChannels(
          h.graph, h.levels, 0, nullptr, AuditEngine::kBridgeEnum);
      ExpectSameChannels(dense, bridge, what + " vs dense");
      ExpectSameChannels(sharded, bridge, what + " vs sharded");
      EXPECT_EQ(bridge.empty(), planted == 0) << what;
      if (!dense.empty()) {
        std::vector<CrossLevelChannel> dense_cut =
            tg_hier::FindCrossLevelChannels(h.graph, h.levels, 2, nullptr, AuditEngine::kDense);
        std::vector<CrossLevelChannel> bridge_cut = tg_hier::FindCrossLevelChannels(
            h.graph, h.levels, 2, nullptr, AuditEngine::kBridgeEnum);
        ExpectSameChannels(dense_cut, bridge_cut, what + " cap=2");
      }
    }
  }
}

TEST(BridgeEnumTest, RandomHierarchyShapesMatchAcrossEngines) {
  // The pre-existing (non-cluster) generator shapes go through the same
  // three-way differential.
  for (size_t planted : {size_t{0}, size_t{3}}) {
    tg_util::Prng prng(211 + planted);
    tg_sim::RandomHierarchyOptions options;
    options.levels = 4;
    options.subjects_per_level = 4;
    options.objects_per_level = 2;
    options.planted_channels = planted;
    tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
    const std::string what = "random-hierarchy planted=" + std::to_string(planted);
    std::vector<CrossLevelChannel> dense =
        tg_hier::FindCrossLevelChannels(h.graph, h.levels, 0, nullptr, AuditEngine::kDense);
    std::vector<CrossLevelChannel> bridge =
        tg_hier::FindCrossLevelChannels(h.graph, h.levels, 0, nullptr, AuditEngine::kBridgeEnum);
    ExpectSameChannels(dense, bridge, what);
    SecurityReport dense_sec =
        tg_hier::CheckSecure(h.graph, h.levels, 0, nullptr, AuditEngine::kDense);
    SecurityReport bridge_sec =
        tg_hier::CheckSecure(h.graph, h.levels, 0, nullptr, AuditEngine::kBridgeEnum);
    ExpectSameReports(dense_sec, bridge_sec, what);
  }
}

// --- Typed enumeration: same pairs as the untyped scan, all verified. ---

TEST(BridgeEnumTest, TypedChannelsMatchUntypedScan) {
  tg_sim::GeneratedHierarchy h = Hierarchy(/*planted=*/4, /*seed=*/29);
  std::vector<CrossLevelChannel> untyped =
      tg_hier::FindCrossLevelChannels(h.graph, h.levels, 0, nullptr, AuditEngine::kBridgeEnum);
  std::vector<TypedCrossLevelChannel> typed =
      tg_hier::FindTypedCrossLevelChannels(h.graph, h.levels);
  ASSERT_EQ(typed.size(), untyped.size());
  for (size_t i = 0; i < typed.size(); ++i) {
    EXPECT_EQ(typed[i].channel.from, untyped[i].from) << i;
    EXPECT_EQ(typed[i].channel.to, untyped[i].to) << i;
    EXPECT_TRUE(typed[i].channel.replay_verified) << i;
    EXPECT_TRUE(tg_analysis::VerifyChannelPath(h.graph, typed[i].channel)) << i;
    EXPECT_EQ(typed[i].from_level, h.levels.LevelOf(untyped[i].from)) << i;
    EXPECT_EQ(typed[i].to_level, h.levels.LevelOf(untyped[i].to)) << i;
  }
  // Cutoff applies to the typed scan too.
  if (typed.size() > 1) {
    std::vector<TypedCrossLevelChannel> capped =
        tg_hier::FindTypedCrossLevelChannels(h.graph, h.levels, /*max_channels=*/1);
    ASSERT_EQ(capped.size(), 1u);
    EXPECT_EQ(capped[0].channel.from, typed[0].channel.from);
    EXPECT_EQ(capped[0].channel.to, typed[0].channel.to);
  }
  // The cache overload yields the identical list.
  tg_analysis::AnalysisCache cache;
  std::vector<TypedCrossLevelChannel> cached =
      tg_hier::FindTypedCrossLevelChannels(h.graph, h.levels, cache);
  ASSERT_EQ(cached.size(), typed.size());
  for (size_t i = 0; i < typed.size(); ++i) {
    EXPECT_EQ(cached[i].channel.from, typed[i].channel.from) << i;
    EXPECT_EQ(cached[i].channel.word_type, typed[i].channel.word_type) << i;
  }
}

// --- Satellite: the kAuto flip condition. ---

TEST(BridgeEnumTest, ResolveAuditEngineFlipCondition) {
  // Fewer than two levels: dense, regardless of size.
  {
    tg::ProtectionGraph g;
    const tg::VertexId a = g.AddSubject("a");
    tg_hier::LevelAssignment one_level(/*vertex_count=*/1, /*level_count=*/1);
    one_level.Assign(a, 0);
    ASSERT_TRUE(one_level.Finalize());
    EXPECT_EQ(tg_hier::ResolveAuditEngine(g, one_level), AuditEngine::kDense);
  }
  // Small hierarchies stay dense.
  {
    tg_sim::GeneratedHierarchy h = Hierarchy(/*planted=*/2, /*seed=*/3);
    ASSERT_LT(h.graph.VertexCount(), 2048u);
    EXPECT_EQ(tg_hier::ResolveAuditEngine(h.graph, h.levels), AuditEngine::kDense);
  }
  // Large hierarchy, sparse cross-level t/g pivots (planted channels well
  // under max(16, n/256)): the bridge-enum engine wins the flip.
  {
    tg_sim::GeneratedHierarchy h =
        Hierarchy(/*planted=*/4, /*seed=*/9, /*levels=*/4, /*clusters=*/80);
    ASSERT_GE(h.graph.VertexCount(), 2048u);
    EXPECT_EQ(tg_hier::ResolveAuditEngine(h.graph, h.levels), AuditEngine::kBridgeEnum);
    // And the flipped engine still matches dense on the same graph.
    SecurityReport auto_report = tg_hier::CheckSecure(h.graph, h.levels, 0, nullptr);
    SecurityReport dense_report =
        tg_hier::CheckSecure(h.graph, h.levels, 0, nullptr, AuditEngine::kDense);
    ExpectSameReports(dense_report, auto_report, "auto=bridge-enum vs dense");
  }
  // Same size, dense cross-level pivots: sharded keeps the flip.
  {
    tg_sim::GeneratedHierarchy h =
        Hierarchy(/*planted=*/200, /*seed=*/9, /*levels=*/4, /*clusters=*/80);
    ASSERT_GE(h.graph.VertexCount(), 2048u);
    EXPECT_EQ(tg_hier::ResolveAuditEngine(h.graph, h.levels), AuditEngine::kSharded);
  }
  // An explicit request is always honored.
  {
    tg_sim::GeneratedHierarchy h = Hierarchy(/*planted=*/0, /*seed=*/3);
    EXPECT_EQ(tg_hier::ResolveAuditEngine(h.graph, h.levels, AuditEngine::kBridgeEnum),
              AuditEngine::kBridgeEnum);
    EXPECT_EQ(tg_hier::ResolveAuditEngine(h.graph, h.levels, AuditEngine::kSharded),
              AuditEngine::kSharded);
  }
}

}  // namespace

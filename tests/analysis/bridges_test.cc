#include "src/analysis/bridges.h"

#include <gtest/gtest.h>

namespace tg_analysis {
namespace {

using tg::ProtectionGraph;
using tg::VertexId;

class BridgesTest : public ::testing::Test {
 protected:
  ProtectionGraph g_;
};

TEST_F(BridgesTest, ForwardTakeBridge) {
  VertexId p = g_.AddSubject("p");
  VertexId o = g_.AddObject("o");
  VertexId q = g_.AddSubject("q");
  ASSERT_TRUE(g_.AddExplicit(p, o, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(o, q, tg::kTake).ok());
  auto bridge = FindBridge(g_, p, q);
  ASSERT_TRUE(bridge.has_value());
  EXPECT_EQ(tg::WordToString(bridge->word()), "t> t>");
}

TEST_F(BridgesTest, BackwardTakeBridge) {
  VertexId p = g_.AddSubject("p");
  VertexId o = g_.AddObject("o");
  VertexId q = g_.AddSubject("q");
  ASSERT_TRUE(g_.AddExplicit(o, p, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(q, o, tg::kTake).ok());
  auto bridge = FindBridge(g_, p, q);
  ASSERT_TRUE(bridge.has_value());
  EXPECT_EQ(tg::WordToString(bridge->word()), "t< t<");
}

TEST_F(BridgesTest, GrantPivotBridges) {
  VertexId p = g_.AddSubject("p");
  VertexId a = g_.AddObject("a");
  VertexId b = g_.AddObject("b");
  VertexId q = g_.AddSubject("q");
  ASSERT_TRUE(g_.AddExplicit(p, a, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(a, b, tg::kGrant).ok());
  ASSERT_TRUE(g_.AddExplicit(q, b, tg::kTake).ok());
  EXPECT_TRUE(FindBridge(g_, p, q).has_value());
  // Reversed pivot also works.
  ProtectionGraph g2;
  VertexId p2 = g2.AddSubject("p");
  VertexId a2 = g2.AddObject("a");
  VertexId b2 = g2.AddObject("b");
  VertexId q2 = g2.AddSubject("q");
  ASSERT_TRUE(g2.AddExplicit(p2, a2, tg::kTake).ok());
  ASSERT_TRUE(g2.AddExplicit(b2, a2, tg::kGrant).ok());
  ASSERT_TRUE(g2.AddExplicit(q2, b2, tg::kTake).ok());
  EXPECT_TRUE(FindBridge(g2, p2, q2).has_value());
}

TEST_F(BridgesTest, MixedTakeDirectionsNoBridge) {
  VertexId p = g_.AddSubject("p");
  VertexId o = g_.AddObject("o");
  VertexId q = g_.AddSubject("q");
  ASSERT_TRUE(g_.AddExplicit(p, o, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(q, o, tg::kTake).ok());  // word would be t> t<
  EXPECT_FALSE(FindBridge(g_, p, q).has_value());
}

TEST_F(BridgesTest, BridgeEndpointsMustBeSubjects) {
  VertexId p = g_.AddSubject("p");
  VertexId o = g_.AddObject("o");
  ASSERT_TRUE(g_.AddExplicit(p, o, tg::kTake).ok());
  EXPECT_FALSE(FindBridge(g_, p, o).has_value());
  EXPECT_FALSE(FindBridge(g_, o, p).has_value());
}

TEST_F(BridgesTest, ConnectionViaRead) {
  VertexId u = g_.AddSubject("u");
  VertexId o = g_.AddObject("o");
  VertexId v = g_.AddSubject("v");
  ASSERT_TRUE(g_.AddExplicit(u, o, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(o, v, tg::kRead).ok());
  auto conn = FindConnection(g_, u, v);
  ASSERT_TRUE(conn.has_value());
  EXPECT_EQ(tg::WordToString(conn->word()), "t> r>");
  // Connections are directional: nothing from v to u.
  EXPECT_FALSE(FindConnection(g_, v, u).has_value());
}

TEST_F(BridgesTest, ConnectionViaWriteBack) {
  VertexId u = g_.AddSubject("u");
  VertexId v = g_.AddSubject("v");
  ASSERT_TRUE(g_.AddExplicit(v, u, tg::kWrite).ok());
  auto conn = FindConnection(g_, u, v);
  ASSERT_TRUE(conn.has_value());
  EXPECT_EQ(tg::WordToString(conn->word()), "w<");
}

TEST_F(BridgesTest, FullConnectionShape) {
  // u -t>- a -r>- m <-w- b <-t- v : word t> r> w< t<.
  VertexId u = g_.AddSubject("u");
  VertexId a = g_.AddObject("a");
  VertexId m = g_.AddObject("m");
  VertexId b = g_.AddObject("b");
  VertexId v = g_.AddSubject("v");
  ASSERT_TRUE(g_.AddExplicit(u, a, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(a, m, tg::kRead).ok());
  ASSERT_TRUE(g_.AddExplicit(b, m, tg::kWrite).ok());
  ASSERT_TRUE(g_.AddExplicit(v, b, tg::kTake).ok());
  auto conn = FindConnection(g_, u, v);
  ASSERT_TRUE(conn.has_value());
  EXPECT_EQ(tg::WordToString(conn->word()), "t> r> w< t<");
}

TEST_F(BridgesTest, BridgeClosureChainsIslandsAndBridges) {
  // Island {a,b}; bridge b ~ c; island {c,d}.
  VertexId a = g_.AddSubject("a");
  VertexId b = g_.AddSubject("b");
  VertexId o = g_.AddObject("o");
  VertexId c = g_.AddSubject("c");
  VertexId d = g_.AddSubject("d");
  VertexId lone = g_.AddSubject("lone");
  ASSERT_TRUE(g_.AddExplicit(a, b, tg::kGrant).ok());
  ASSERT_TRUE(g_.AddExplicit(b, o, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(o, c, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(d, c, tg::kTake).ok());
  auto closure = BridgeClosure(g_, {a});
  EXPECT_TRUE(closure[a]);
  EXPECT_TRUE(closure[b]);
  EXPECT_TRUE(closure[c]);
  EXPECT_TRUE(closure[d]);
  EXPECT_FALSE(closure[lone]);
  EXPECT_FALSE(closure[o]);  // objects never join the closure
}

TEST_F(BridgesTest, BocClosureIsDirectional) {
  VertexId u = g_.AddSubject("u");
  VertexId v = g_.AddSubject("v");
  ASSERT_TRUE(g_.AddExplicit(u, v, tg::kRead).ok());  // u -r>- v : u -> v only
  auto from_u = BridgeOrConnectionClosure(g_, {u});
  EXPECT_TRUE(from_u[v]);
  auto from_v = BridgeOrConnectionClosure(g_, {v});
  EXPECT_FALSE(from_v[u]);
}

TEST_F(BridgesTest, ClosureOfEmptySeedsIsEmpty) {
  g_.AddSubject("a");
  auto closure = BridgeClosure(g_, {});
  EXPECT_FALSE(closure[0]);
}

}  // namespace
}  // namespace tg_analysis

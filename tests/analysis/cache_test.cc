#include "src/analysis/cache.h"

#include <gtest/gtest.h>

#include "src/analysis/can_know.h"
#include "src/sim/generator.h"
#include "src/tg/languages.h"
#include "src/tg/path.h"
#include "src/util/prng.h"

namespace tg_analysis {
namespace {

using tg::ProtectionGraph;
using tg::VertexId;

TEST(GraphEpochTest, EveryEffectiveMutatorBumpsTheEpoch) {
  ProtectionGraph g;
  uint64_t e = g.epoch();
  auto bumped = [&] {
    uint64_t now = g.epoch();
    bool changed = now > e;
    e = now;
    return changed;
  };

  VertexId a = g.AddSubject("a");
  EXPECT_TRUE(bumped()) << "AddVertex";
  VertexId b = g.AddObject("b");
  EXPECT_TRUE(bumped()) << "AddVertex";
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kTakeGrant).ok());
  EXPECT_TRUE(bumped()) << "AddExplicit";
  ASSERT_TRUE(g.AddImplicit(a, b, tg::kRead).ok());
  EXPECT_TRUE(bumped()) << "AddImplicit";
  ASSERT_TRUE(g.RemoveExplicit(a, b, tg::kGrant).ok());
  EXPECT_TRUE(bumped()) << "RemoveExplicit";
  ASSERT_TRUE(g.RemoveImplicit(a, b, tg::kRead).ok());
  EXPECT_TRUE(bumped()) << "RemoveImplicit";
  ASSERT_TRUE(g.AddImplicit(a, b, tg::kRead).ok());
  EXPECT_TRUE(bumped()) << "AddImplicit (again)";
  g.ClearImplicit();  // one implicit edge present: effective
  EXPECT_TRUE(bumped()) << "ClearImplicit";

  // Read-only accessors leave the epoch alone.
  (void)g.IsSubject(a);
  (void)g.HasExplicit(a, b, tg::Right::kTake);
  EXPECT_EQ(g.epoch(), e);

  // Every effective mutation appended exactly one journal record, and the
  // journal's epoch arithmetic lines up with the graph's.
  EXPECT_EQ(g.journal().base_epoch() + g.journal().size(), g.epoch());
  EXPECT_TRUE(g.journal().Covers(0));
  EXPECT_EQ(g.journal().Since(0).size(), g.journal().size());
}

// The ISSUE-4 regression: no-op mutations (removing an absent right,
// re-adding rights already in the label, clearing zero implicit edges)
// must be epoch-stable — and therefore must not invalidate any cache
// entry.
TEST(GraphEpochTest, NoOpMutationsAreEpochStable) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddObject("b");
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kTakeGrant).ok());
  const uint64_t e = g.epoch();
  const size_t records = g.journal().size();

  ASSERT_TRUE(g.AddExplicit(a, b, tg::kTake).ok());  // subset of the label
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kTakeGrant).ok());
  ASSERT_TRUE(g.RemoveExplicit(a, b, tg::kRead).ok());   // absent right
  EXPECT_FALSE(g.RemoveImplicit(a, b, tg::kRead).ok());  // no implicit edge: NotFound
  g.ClearImplicit();  // no implicit edges at all
  EXPECT_EQ(g.epoch(), e);
  EXPECT_EQ(g.journal().size(), records);

  // A partially-effective mutation journals only the effective part.
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kRead.Union(tg::kTake)).ok());
  EXPECT_EQ(g.epoch(), e + 1);
  ASSERT_EQ(g.journal().size(), records + 1);
  EXPECT_EQ(g.journal().records().back().delta, tg::kRead);
}

TEST(AnalysisCacheTest, NoOpMutationsDoNotInvalidate) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddObject("b");
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kRead).ok());
  AnalysisCache cache;
  EXPECT_TRUE(cache.CanKnow(g, a, b));
  const size_t misses = cache.misses();
  // No-op mutations leave the epoch alone, so these are all pure hits.
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kRead).ok());
  ASSERT_TRUE(g.RemoveExplicit(a, b, tg::kWrite).ok());
  g.ClearImplicit();
  EXPECT_TRUE(cache.CanKnow(g, a, b));
  EXPECT_EQ(cache.misses(), misses);
}

// Scoped invalidation: a mutation in one component must not recompute
// entries whose dependency footprints live entirely in another.
TEST(AnalysisCacheTest, MutationInOtherComponentKeepsEntries) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddObject("b");
  VertexId c = g.AddSubject("c");
  VertexId d = g.AddObject("d");
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kRead).ok());
  ASSERT_TRUE(g.AddExplicit(c, d, tg::kRead).ok());
  AnalysisCache cache;
  EXPECT_TRUE(cache.CanKnow(g, a, b));
  const size_t misses = cache.misses();
  // Mutating the {c, d} component cannot touch a's footprint {a, b}.
  ASSERT_TRUE(g.AddExplicit(c, d, tg::kWrite).ok());
  EXPECT_TRUE(cache.CanKnow(g, a, b));
  EXPECT_EQ(cache.misses(), misses) << "entry for a should have survived";
  // Mutating a's own component does invalidate it.
  ASSERT_TRUE(g.RemoveExplicit(a, b, tg::kRead).ok());
  EXPECT_FALSE(cache.CanKnow(g, a, b));
  EXPECT_GT(cache.misses(), misses);
}

TEST(AnalysisCacheTest, RepeatQueriesHitAndMutationsInvalidate) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddSubject("b");
  VertexId c = g.AddObject("c");
  ASSERT_TRUE(g.AddExplicit(a, c, tg::kRead).ok());

  AnalysisCache cache;
  EXPECT_TRUE(cache.CanKnow(g, a, c));
  size_t misses_after_first = cache.misses();
  EXPECT_GT(misses_after_first, 0u);
  EXPECT_TRUE(cache.CanKnow(g, a, c));
  EXPECT_EQ(cache.misses(), misses_after_first);  // second answer from cache
  EXPECT_GT(cache.hits(), 0u);

  // A mutation makes the next query recompute -- and see the new edge.
  EXPECT_FALSE(cache.CanKnow(g, b, c));
  ASSERT_TRUE(g.AddExplicit(b, c, tg::kRead).ok());
  EXPECT_TRUE(cache.CanKnow(g, b, c));
}

// The cache must agree with the uncached analysis after *every* kind of
// mutating operation.
TEST(AnalysisCacheTest, CorrectAfterEveryMutatingOp) {
  ProtectionGraph g;
  AnalysisCache cache;
  auto check_all = [&](const char* label) {
    for (VertexId x = 0; x < g.VertexCount(); ++x) {
      EXPECT_EQ(cache.Knowable(g, x), KnowableFrom(g, x)) << label << " row " << x;
    }
  };

  VertexId a = g.AddSubject("a");
  VertexId b = g.AddSubject("b");
  check_all("AddVertex");
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kTake).ok());
  check_all("AddExplicit");
  ASSERT_TRUE(g.AddImplicit(b, a, tg::kRead).ok());
  check_all("AddImplicit");
  ASSERT_TRUE(g.RemoveExplicit(a, b, tg::kTake).ok());
  check_all("RemoveExplicit");
  ASSERT_TRUE(g.RemoveImplicit(b, a, tg::kRead).ok());
  check_all("RemoveImplicit");
  ASSERT_TRUE(g.AddImplicit(a, b, tg::kReadWrite).ok());
  g.ClearImplicit();
  check_all("ClearImplicit");
  VertexId c = g.AddObject("c");
  ASSERT_TRUE(g.AddExplicit(a, c, tg::kRead).ok());
  ASSERT_TRUE(g.AddExplicit(b, c, tg::kWrite).ok());
  check_all("post setup");
}

TEST(AnalysisCacheTest, ReachableMemoizesPerDfaAndSource) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddSubject("b");
  ASSERT_TRUE(g.AddExplicit(a, b, tg::kTakeGrant).ok());

  AnalysisCache cache;
  tg::PathSearchOptions options;
  const std::vector<bool>& bridges = cache.Reachable(g, a, tg::BridgeDfa());
  EXPECT_EQ(bridges, WordReachable(g, a, tg::BridgeDfa(), options));
  size_t misses = cache.misses();
  // Same key: hit.  Different DFA or source: distinct entries.
  (void)cache.Reachable(g, a, tg::BridgeDfa());
  EXPECT_EQ(cache.misses(), misses);
  (void)cache.Reachable(g, a, tg::BridgeOrConnectionDfa());
  (void)cache.Reachable(g, b, tg::BridgeDfa());
  EXPECT_EQ(cache.misses(), misses + 2);
  EXPECT_EQ(cache.Reachable(g, b, tg::BridgeDfa()),
            WordReachable(g, b, tg::BridgeDfa(), options));
}

TEST(AnalysisCacheTest, SnapshotTracksEpochAndInvalidateResets) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  AnalysisCache cache;
  EXPECT_EQ(cache.Snapshot(g).graph_epoch(), g.epoch());
  EXPECT_EQ(cache.Snapshot(g).vertex_count(), 1u);
  g.AddObject("b");
  // Stale snapshot is patched up to date on the next access.
  EXPECT_EQ(cache.Snapshot(g).graph_epoch(), g.epoch());
  EXPECT_EQ(cache.Snapshot(g).vertex_count(), 2u);
  // Invalidate drops everything but the cache still answers correctly.
  (void)cache.Knowable(g, a);
  cache.Invalidate();
  EXPECT_EQ(cache.Knowable(g, a), KnowableFrom(g, a));
  EXPECT_TRUE(cache.CanKnow(g, a, a));
}

TEST(AnalysisCacheTest, InvalidIdsAreFalse) {
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  AnalysisCache cache;
  EXPECT_FALSE(cache.CanKnow(g, a, 17));
  EXPECT_FALSE(cache.CanKnow(g, tg::kInvalidVertex, a));
  EXPECT_TRUE(cache.CanKnow(g, a, a));  // reflexive
}

TEST(AnalysisCacheTest, AgreesWithSerialOnRandomGraphMutationSequence) {
  tg_util::Prng prng(11);
  tg_sim::RandomGraphOptions options;
  options.subjects = 8;
  options.objects = 5;
  ProtectionGraph g = tg_sim::RandomGraph(options, prng);
  AnalysisCache cache;
  for (int round = 0; round < 10; ++round) {
    VertexId x = static_cast<VertexId>(prng.NextBelow(g.VertexCount()));
    VertexId y = static_cast<VertexId>(prng.NextBelow(g.VertexCount()));
    EXPECT_EQ(cache.CanKnow(g, x, y), CanKnow(g, x, y)) << "round " << round;
    // Mutate, then re-ask: answers must track the new graph.
    if (x != y) {
      (void)g.AddExplicit(x, y, tg::kRead);
    }
    EXPECT_EQ(cache.CanKnow(g, x, y), CanKnow(g, x, y)) << "round " << round;
  }
}

TEST(AnalysisCacheTest, EntryCapEvictsInBatchesAndStaysCorrect) {
  tg_util::Prng prng(2718);
  tg_sim::RandomGraphOptions options;
  options.subjects = 10;
  options.objects = 6;
  ProtectionGraph g = tg_sim::RandomGraph(options, prng);

  AnalysisCache cache(/*max_entries=*/8);
  EXPECT_EQ(cache.max_entries(), 8u);
  // Far more distinct rows than the cap: eviction must kick in, the entry
  // count must respect the cap, and every answer must stay correct.
  for (int round = 0; round < 12; ++round) {
    for (VertexId x = 0; x < g.VertexCount(); ++x) {
      EXPECT_EQ(cache.Knowable(g, x), KnowableFrom(g, x)) << "round " << round << " row " << x;
      EXPECT_LE(cache.entry_count(), cache.max_entries());
    }
    VertexId a = static_cast<VertexId>(prng.NextBelow(g.VertexCount()));
    VertexId b = static_cast<VertexId>(prng.NextBelow(g.VertexCount()));
    if (a != b) {
      (void)g.AddExplicit(a, b, tg::kRead);
    }
  }
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(AnalysisCacheTest, EvictionPrefersLeastRecentlyUsed) {
  ProtectionGraph g;
  std::vector<VertexId> subjects;
  for (int i = 0; i < 6; ++i) {
    subjects.push_back(g.AddSubject());
  }
  AnalysisCache cache(/*max_entries=*/4);
  // Fill to the cap, then keep row 0 hot: after overflow, re-asking row 0
  // must still be a hit (it survived the batch eviction).
  for (VertexId x = 0; x < 4; ++x) {
    (void)cache.Knowable(g, x);
  }
  (void)cache.Knowable(g, 0);  // row 0 is now the most recently used
  size_t hits_before = cache.hits();
  (void)cache.Knowable(g, 4);  // overflow: evicts the LRU half, not row 0
  (void)cache.Knowable(g, 0);
  EXPECT_EQ(cache.hits(), hits_before + 1);
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LE(cache.entry_count(), cache.max_entries());
}

TEST(AnalysisCacheTest, TinyCapStillAnswersCorrectly) {
  // max_entries clamps to >= 2; the cache degrades to near-stateless but
  // must never return a wrong row.
  ProtectionGraph g;
  VertexId a = g.AddSubject("a");
  VertexId b = g.AddSubject("b");
  VertexId c = g.AddObject("c");
  ASSERT_TRUE(g.AddExplicit(a, c, tg::kRead).ok());
  ASSERT_TRUE(g.AddExplicit(b, c, tg::kWrite).ok());
  AnalysisCache cache(/*max_entries=*/1);
  EXPECT_EQ(cache.max_entries(), 2u);
  for (int round = 0; round < 3; ++round) {
    for (VertexId x = 0; x < g.VertexCount(); ++x) {
      EXPECT_EQ(cache.Knowable(g, x), KnowableFrom(g, x)) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace tg_analysis

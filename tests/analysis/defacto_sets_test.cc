#include "src/analysis/defacto_sets.h"

#include <gtest/gtest.h>

#include "src/analysis/can_know.h"
#include "src/analysis/oracle.h"
#include "src/sim/generator.h"
#include "src/util/prng.h"

namespace tg_analysis {
namespace {

using tg::ProtectionGraph;
using tg::RuleKind;
using tg::VertexId;

TEST(DeFactoMaskTest, ToStringForms) {
  EXPECT_EQ(DeFactoMask::All().ToString(), "post+pass+spy+find");
  EXPECT_EQ(DeFactoMask::None().ToString(), "none");
  EXPECT_EQ(DeFactoMask::Only(RuleKind::kSpy).ToString(), "spy");
  DeFactoMask two = DeFactoMask::None();
  two.post = true;
  two.find = true;
  EXPECT_EQ(two.ToString(), "post+find");
}

TEST(DeFactoMaskTest, AllowsMatchesBits) {
  DeFactoMask mask = DeFactoMask::Only(RuleKind::kPass);
  EXPECT_TRUE(mask.Allows(RuleKind::kPass));
  EXPECT_FALSE(mask.Allows(RuleKind::kPost));
  EXPECT_FALSE(mask.Allows(RuleKind::kTake));  // de jure kinds never masked in
}

// Each rule is uniquely necessary on its signature pattern.

TEST(RuleNecessityTest, SpyOnly) {
  // x -r-> y -r-> z, all subjects: only spy derives x ~ z.
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId y = g.AddSubject("y");
  VertexId z = g.AddSubject("z");
  ASSERT_TRUE(g.AddExplicit(x, y, tg::kRead).ok());
  ASSERT_TRUE(g.AddExplicit(y, z, tg::kRead).ok());
  EXPECT_TRUE(CanKnowFSubset(g, x, z, DeFactoMask::Only(RuleKind::kSpy)));
  DeFactoMask without = DeFactoMask::All();
  without.spy = false;
  EXPECT_FALSE(CanKnowFSubset(g, x, z, without));
}

TEST(RuleNecessityTest, PostOnly) {
  // x -r-> m <-w- z (m an object): only post derives x ~ z.
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId m = g.AddObject("m");
  VertexId z = g.AddSubject("z");
  ASSERT_TRUE(g.AddExplicit(x, m, tg::kRead).ok());
  ASSERT_TRUE(g.AddExplicit(z, m, tg::kWrite).ok());
  EXPECT_TRUE(CanKnowFSubset(g, x, z, DeFactoMask::Only(RuleKind::kPost)));
  DeFactoMask without = DeFactoMask::All();
  without.post = false;
  EXPECT_FALSE(CanKnowFSubset(g, x, z, without));
}

TEST(RuleNecessityTest, PassOnly) {
  // y -w-> x, y -r-> z with x, z objects: only pass derives x ~ z.
  ProtectionGraph g;
  VertexId x = g.AddObject("x");
  VertexId y = g.AddSubject("y");
  VertexId z = g.AddObject("z");
  ASSERT_TRUE(g.AddExplicit(y, x, tg::kWrite).ok());
  ASSERT_TRUE(g.AddExplicit(y, z, tg::kRead).ok());
  EXPECT_TRUE(CanKnowFSubset(g, x, z, DeFactoMask::Only(RuleKind::kPass)));
  DeFactoMask without = DeFactoMask::All();
  without.pass = false;
  EXPECT_FALSE(CanKnowFSubset(g, x, z, without));
}

TEST(RuleNecessityTest, FindOnly) {
  // y -w-> x, z -w-> y with x an object: only find derives x ~ z.
  ProtectionGraph g;
  VertexId x = g.AddObject("x");
  VertexId y = g.AddSubject("y");
  VertexId z = g.AddSubject("z");
  ASSERT_TRUE(g.AddExplicit(y, x, tg::kWrite).ok());
  ASSERT_TRUE(g.AddExplicit(z, y, tg::kWrite).ok());
  EXPECT_TRUE(CanKnowFSubset(g, x, z, DeFactoMask::Only(RuleKind::kFind)));
  DeFactoMask without = DeFactoMask::All();
  without.find = false;
  EXPECT_FALSE(CanKnowFSubset(g, x, z, without));
}

TEST(SubsetSaturationTest, FullMaskMatchesSaturateDeFacto) {
  tg_util::Prng prng(777);
  tg_sim::RandomGraphOptions options;
  options.subjects = 5;
  options.objects = 3;
  options.edge_factor = 1.5;
  for (int trial = 0; trial < 10; ++trial) {
    ProtectionGraph g = tg_sim::RandomGraph(options, prng);
    EXPECT_TRUE(SaturateDeFactoSubset(g, DeFactoMask::All()) == SaturateDeFacto(g));
  }
}

TEST(SubsetSaturationTest, NoneMaskIsIdentity) {
  tg_util::Prng prng(778);
  tg_sim::RandomGraphOptions options;
  ProtectionGraph g = tg_sim::RandomGraph(options, prng);
  EXPECT_TRUE(SaturateDeFactoSubset(g, DeFactoMask::None()) == g);
}

TEST(SubsetSaturationTest, MonotoneInMask) {
  // Adding rules never removes knowable pairs.
  tg_util::Prng prng(779);
  tg_sim::RandomGraphOptions options;
  options.subjects = 4;
  options.objects = 3;
  options.edge_factor = 1.6;
  for (int trial = 0; trial < 8; ++trial) {
    ProtectionGraph g = tg_sim::RandomGraph(options, prng);
    size_t full = KnowablePairCount(g, DeFactoMask::All());
    for (RuleKind kind :
         {RuleKind::kPost, RuleKind::kPass, RuleKind::kSpy, RuleKind::kFind}) {
      size_t only = KnowablePairCount(g, DeFactoMask::Only(kind));
      DeFactoMask without = DeFactoMask::All();
      switch (kind) {
        case RuleKind::kPost:
          without.post = false;
          break;
        case RuleKind::kPass:
          without.pass = false;
          break;
        case RuleKind::kSpy:
          without.spy = false;
          break;
        default:
          without.find = false;
          break;
      }
      size_t most = KnowablePairCount(g, without);
      EXPECT_LE(only, full);
      EXPECT_LE(most, full);
    }
  }
}

TEST(SubsetSaturationTest, SubsetKnowledgeContainedInFull) {
  tg_util::Prng prng(780);
  tg_sim::RandomGraphOptions options;
  options.subjects = 4;
  options.objects = 2;
  options.edge_factor = 1.4;
  DeFactoMask spy_post = DeFactoMask::None();
  spy_post.spy = true;
  spy_post.post = true;
  for (int trial = 0; trial < 8; ++trial) {
    ProtectionGraph g = tg_sim::RandomGraph(options, prng);
    for (VertexId x = 0; x < g.VertexCount(); ++x) {
      for (VertexId y = 0; y < g.VertexCount(); ++y) {
        if (CanKnowFSubset(g, x, y, spy_post)) {
          EXPECT_TRUE(CanKnowF(g, x, y)) << g.NameOf(x) << " -> " << g.NameOf(y);
        }
      }
    }
  }
}

}  // namespace
}  // namespace tg_analysis

#include "src/analysis/batch.h"

#include <gtest/gtest.h>

#include "src/analysis/can_know.h"
#include "src/hierarchy/levels.h"
#include "src/hierarchy/secure.h"
#include "src/sim/generator.h"
#include "src/util/prng.h"
#include "src/util/thread_pool.h"

namespace tg_analysis {
namespace {

using tg::ProtectionGraph;
using tg::VertexId;

ProtectionGraph RandomTestGraph(uint64_t seed) {
  tg_util::Prng prng(seed);
  tg_sim::RandomGraphOptions options;
  options.subjects = 10;
  options.objects = 6;
  options.edge_factor = 2.0;
  return tg_sim::RandomGraph(options, prng);
}

TEST(BatchTest, MatrixRowsMatchSerialKnowableFrom) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ProtectionGraph g = RandomTestGraph(seed);
    std::vector<std::vector<bool>> matrix = KnowableFromAll(g);
    ASSERT_EQ(matrix.size(), g.VertexCount());
    for (VertexId x = 0; x < g.VertexCount(); ++x) {
      EXPECT_EQ(matrix[x], KnowableFrom(g, x)) << "seed " << seed << " row " << x;
    }
  }
}

TEST(BatchTest, ParallelAndSerialPoolsAgree) {
  tg_util::ThreadPool serial(1);
  tg_util::ThreadPool parallel(4);
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ProtectionGraph g = RandomTestGraph(seed);
    EXPECT_EQ(KnowableFromAll(g, &serial), KnowableFromAll(g, &parallel))
        << "seed " << seed;
  }
}

TEST(BatchTest, KnowableFromManyHandlesInvalidAndDuplicateSources) {
  ProtectionGraph g = RandomTestGraph(3);
  std::vector<VertexId> sources = {0, 0, tg::kInvalidVertex,
                                   static_cast<VertexId>(g.VertexCount() + 5), 1};
  std::vector<std::vector<bool>> rows = KnowableFromMany(g, sources);
  ASSERT_EQ(rows.size(), sources.size());
  EXPECT_EQ(rows[0], KnowableFrom(g, 0));
  EXPECT_EQ(rows[1], rows[0]);  // duplicate source, identical row
  EXPECT_EQ(rows[2], std::vector<bool>(g.VertexCount(), false));
  EXPECT_EQ(rows[3], std::vector<bool>(g.VertexCount(), false));
  EXPECT_EQ(rows[4], KnowableFrom(g, 1));
}

TEST(BatchTest, KnowableFromSnapshotMatchesGraphLevelCall) {
  ProtectionGraph g = RandomTestGraph(5);
  tg::AnalysisSnapshot snap(g);
  for (VertexId x = 0; x < g.VertexCount(); ++x) {
    EXPECT_EQ(KnowableFromSnapshot(snap, x), KnowableFrom(g, x)) << "row " << x;
  }
}

TEST(BatchTest, EmptyGraphAndEmptySourceList) {
  ProtectionGraph g;
  EXPECT_TRUE(KnowableFromAll(g).empty());
  EXPECT_TRUE(KnowableFromMany(g, {}).empty());
}

// rwtg-levels ride the same pool; the computed assignment must not depend
// on thread count.
TEST(BatchTest, RwtgLevelsIdenticalForAnyPoolSize) {
  tg_util::ThreadPool serial(1);
  tg_util::ThreadPool parallel(4);
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ProtectionGraph g = RandomTestGraph(seed);
    tg_hier::LevelAssignment a = tg_hier::ComputeRwtgLevels(g, &serial);
    tg_hier::LevelAssignment b = tg_hier::ComputeRwtgLevels(g, &parallel);
    ASSERT_EQ(a.LevelCount(), b.LevelCount()) << "seed " << seed;
    for (VertexId v = 0; v < g.VertexCount(); ++v) {
      EXPECT_EQ(a.LevelOf(v), b.LevelOf(v)) << "seed " << seed << " vertex " << v;
    }
    for (tg_hier::LevelId x = 0; x < a.LevelCount(); ++x) {
      for (tg_hier::LevelId y = 0; y < a.LevelCount(); ++y) {
        EXPECT_EQ(a.Higher(x, y), b.Higher(x, y)) << "seed " << seed;
      }
    }
  }
}

// The security audit fans out over the pool; reports (contents and order)
// must be identical to the serial scan.
TEST(BatchTest, SecurityAuditIdenticalForAnyPoolSize) {
  tg_util::ThreadPool serial(1);
  tg_util::ThreadPool parallel(4);
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    tg_util::Prng prng(seed);
    tg_sim::RandomHierarchyOptions options;
    options.levels = 3;
    options.subjects_per_level = 3;
    options.objects_per_level = 2;
    options.planted_channels = 1;
    tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);

    tg_hier::SecurityReport ra = tg_hier::CheckSecure(h.graph, h.levels, 0, &serial);
    tg_hier::SecurityReport rb = tg_hier::CheckSecure(h.graph, h.levels, 0, &parallel);
    EXPECT_EQ(ra.secure, rb.secure) << "seed " << seed;
    ASSERT_EQ(ra.violations.size(), rb.violations.size()) << "seed " << seed;
    for (size_t i = 0; i < ra.violations.size(); ++i) {
      EXPECT_EQ(ra.violations[i].lower, rb.violations[i].lower);
      EXPECT_EQ(ra.violations[i].higher, rb.violations[i].higher);
      EXPECT_EQ(ra.violations[i].detail, rb.violations[i].detail);
    }

    auto ca = tg_hier::FindCrossLevelChannels(h.graph, h.levels, 0, &serial);
    auto cb = tg_hier::FindCrossLevelChannels(h.graph, h.levels, 0, &parallel);
    ASSERT_EQ(ca.size(), cb.size()) << "seed " << seed;
    for (size_t i = 0; i < ca.size(); ++i) {
      EXPECT_EQ(ca[i].from, cb[i].from);
      EXPECT_EQ(ca[i].to, cb[i].to);
      EXPECT_EQ(ca[i].path, cb[i].path);
    }

    // The max_violations cutoff keeps the same prefix too.
    tg_hier::SecurityReport capped_a = tg_hier::CheckSecure(h.graph, h.levels, 2, &serial);
    tg_hier::SecurityReport capped_b = tg_hier::CheckSecure(h.graph, h.levels, 2, &parallel);
    ASSERT_EQ(capped_a.violations.size(), capped_b.violations.size());
    for (size_t i = 0; i < capped_a.violations.size(); ++i) {
      EXPECT_EQ(capped_a.violations[i].detail, capped_b.violations[i].detail);
    }
  }
}

}  // namespace
}  // namespace tg_analysis

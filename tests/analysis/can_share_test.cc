#include "src/analysis/can_share.h"

#include <gtest/gtest.h>

#include "src/analysis/oracle.h"
#include "src/sim/generator.h"
#include "src/util/prng.h"

namespace tg_analysis {
namespace {

using tg::ProtectionGraph;
using tg::Right;
using tg::VertexId;

class CanShareTest : public ::testing::Test {
 protected:
  ProtectionGraph g_;
};

TEST_F(CanShareTest, ExistingEdgeShares) {
  VertexId x = g_.AddSubject("x");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(x, y, tg::kRead).ok());
  EXPECT_TRUE(CanShare(g_, Right::kRead, x, y));
  EXPECT_FALSE(CanShare(g_, Right::kWrite, x, y));
}

TEST_F(CanShareTest, DirectTake) {
  VertexId x = g_.AddSubject("x");
  VertexId s = g_.AddObject("s");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(x, s, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(s, y, tg::kRead).ok());
  EXPECT_TRUE(CanShare(g_, Right::kRead, x, y));
}

TEST_F(CanShareTest, DirectGrant) {
  VertexId s = g_.AddSubject("s");
  VertexId x = g_.AddObject("x");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(s, x, tg::kGrant).ok());
  ASSERT_TRUE(g_.AddExplicit(s, y, tg::kRead).ok());
  EXPECT_TRUE(CanShare(g_, Right::kRead, x, y));
}

TEST_F(CanShareTest, NoSourceNoShare) {
  VertexId x = g_.AddSubject("x");
  VertexId y = g_.AddObject("y");
  VertexId z = g_.AddObject("z");
  ASSERT_TRUE(g_.AddExplicit(x, z, tg::kTake).ok());
  EXPECT_FALSE(CanShare(g_, Right::kRead, x, y));
}

TEST_F(CanShareTest, IsolatedIslandsCannotShare) {
  VertexId x = g_.AddSubject("x");
  VertexId s = g_.AddSubject("s");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(s, y, tg::kRead).ok());
  // x and s have no tg connection at all.
  EXPECT_FALSE(CanShare(g_, Right::kRead, x, y));
}

TEST_F(CanShareTest, AcrossBridge) {
  // x' = x subject; bridge x ~ s via object chain; s holds r over y.
  VertexId x = g_.AddSubject("x");
  VertexId o = g_.AddObject("o");
  VertexId s = g_.AddSubject("s");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(x, o, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(o, s, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(s, y, tg::kReadWrite).ok());
  EXPECT_TRUE(CanShare(g_, Right::kRead, x, y));
  EXPECT_TRUE(CanShare(g_, Right::kWrite, x, y));
}

TEST_F(CanShareTest, BackwardBridgeSharesViaCooperation) {
  // Bridge word t<: s -t-> x.  Both subjects conspire (Lemma 2.1).
  VertexId x = g_.AddSubject("x");
  VertexId s = g_.AddSubject("s");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(s, x, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(s, y, tg::kRead).ok());
  EXPECT_TRUE(CanShare(g_, Right::kRead, x, y));
}

TEST_F(CanShareTest, TerminalAndInitialSpansCombine) {
  // s' -t-> m -r-> ... s' extracts via terminal span; x' injects into object x.
  VertexId sp = g_.AddSubject("sp");
  VertexId m = g_.AddObject("m");
  VertexId y = g_.AddObject("y");
  VertexId xp = g_.AddSubject("xp");
  VertexId x = g_.AddObject("x");
  ASSERT_TRUE(g_.AddExplicit(sp, m, tg::kTake).ok());
  ASSERT_TRUE(g_.AddExplicit(m, y, tg::kRead).ok());
  ASSERT_TRUE(g_.AddExplicit(xp, x, tg::kGrant).ok());
  // Bridge between xp and sp.
  ASSERT_TRUE(g_.AddExplicit(xp, sp, tg::kTake).ok());
  EXPECT_TRUE(CanShare(g_, Right::kRead, x, y));
}

TEST_F(CanShareTest, ObjectTargetNeedsInitialSpanner) {
  // Right exists, extractor exists, but nobody initially spans to x.
  VertexId s = g_.AddSubject("s");
  VertexId y = g_.AddObject("y");
  VertexId x = g_.AddObject("x");
  ASSERT_TRUE(g_.AddExplicit(s, y, tg::kRead).ok());
  EXPECT_FALSE(CanShare(g_, Right::kRead, x, y));
}

TEST_F(CanShareTest, SelfAndInvalid) {
  VertexId x = g_.AddSubject("x");
  EXPECT_FALSE(CanShare(g_, Right::kRead, x, x));
  EXPECT_FALSE(CanShare(g_, Right::kRead, x, 99));
}

TEST_F(CanShareTest, ShareableRightsUnionsPerRight) {
  VertexId x = g_.AddSubject("x");
  VertexId s = g_.AddObject("s");
  VertexId y = g_.AddObject("y");
  ASSERT_TRUE(g_.AddExplicit(x, s, tg::kTake).ok());
  ASSERT_TRUE(
      g_.AddExplicit(s, y, tg::RightSet::Of({Right::kRead, Right::kExecute})).ok());
  tg::RightSet shareable = ShareableRights(g_, x, y);
  EXPECT_TRUE(shareable.Has(Right::kRead));
  EXPECT_TRUE(shareable.Has(Right::kExecute));
  EXPECT_FALSE(shareable.Has(Right::kWrite));
  EXPECT_TRUE(CanShareAll(g_, shareable, x, y));
  EXPECT_FALSE(CanShareAll(g_, shareable.Add(Right::kWrite), x, y));
}

// ---- Theorem 2.3: decision procedure vs exhaustive oracle ----

struct OracleSweepParam {
  uint64_t seed;
  size_t subjects;
  size_t objects;
  double edge_factor;
};

class CanShareOracleSweep : public ::testing::TestWithParam<OracleSweepParam> {};

TEST_P(CanShareOracleSweep, MatchesExhaustiveSearch) {
  const OracleSweepParam& param = GetParam();
  tg_util::Prng prng(param.seed);
  tg_sim::RandomGraphOptions options;
  options.subjects = param.subjects;
  options.objects = param.objects;
  options.edge_factor = param.edge_factor;
  OracleOptions oracle_options;
  oracle_options.max_creates = 1;
  oracle_options.max_states = 40000;
  for (int trial = 0; trial < 6; ++trial) {
    ProtectionGraph g = tg_sim::RandomGraph(options, prng);
    for (VertexId x = 0; x < g.VertexCount(); ++x) {
      for (VertexId y = 0; y < g.VertexCount(); ++y) {
        if (x == y) {
          continue;
        }
        bool fast = CanShare(g, Right::kRead, x, y);
        bool slow = OracleCanShare(g, Right::kRead, x, y, oracle_options);
        EXPECT_EQ(fast, slow)
            << "x=" << g.NameOf(x) << " y=" << g.NameOf(y) << " trial=" << trial
            << " seed=" << param.seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, CanShareOracleSweep,
                         ::testing::Values(OracleSweepParam{11, 2, 2, 1.0},
                                           OracleSweepParam{22, 3, 1, 1.2},
                                           OracleSweepParam{33, 3, 2, 0.8},
                                           OracleSweepParam{44, 4, 1, 1.0},
                                           OracleSweepParam{55, 2, 3, 1.5}));

}  // namespace
}  // namespace tg_analysis

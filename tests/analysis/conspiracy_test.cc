#include "src/analysis/conspiracy.h"

#include <gtest/gtest.h>

#include "src/analysis/can_share.h"
#include "src/analysis/witness_builder.h"
#include "src/sim/generator.h"
#include "src/util/prng.h"

namespace tg_analysis {
namespace {

using tg::ProtectionGraph;
using tg::Right;
using tg::RuleApplication;
using tg::VertexId;
using tg::Witness;

TEST(ActiveActorsTest, DeJureActorsCounted) {
  Witness w;
  w.Append(RuleApplication::Take(3, 1, 2, tg::kRead));
  w.Append(RuleApplication::Grant(3, 4, 2, tg::kRead));
  w.Append(RuleApplication::Create(5, tg::VertexKind::kObject, tg::kRead));
  auto actors = ActiveActors(w);
  EXPECT_EQ(actors, (std::set<VertexId>{3, 5}));
}

TEST(ActiveActorsTest, DeFactoParticipantsCounted) {
  Witness w;
  w.Append(RuleApplication::Post(1, 9, 2));  // reader 1, writer 2 act
  w.Append(RuleApplication::Pass(7, 3, 8));  // only intermediary 3 acts
  w.Append(RuleApplication::Spy(4, 5, 9));   // both readers act
  w.Append(RuleApplication::Find(9, 6, 0));  // both writers act
  auto actors = ActiveActors(w);
  EXPECT_EQ(actors, (std::set<VertexId>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(MinConspiratorsTest, ZeroWhenEdgeExists) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(x, y, tg::kRead).ok());
  EXPECT_EQ(MinConspirators(g, Right::kRead, x, y), 0u);
}

TEST(MinConspiratorsTest, SingleTakerNeedsOne) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId s = g.AddObject("s");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(x, s, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(s, y, tg::kRead).ok());
  EXPECT_EQ(MinConspirators(g, Right::kRead, x, y), 1u);
}

TEST(MinConspiratorsTest, DualityLemmaNeedsBoth) {
  // s -t-> x with s holding the right: Lemma 2.1's construction needs both
  // subjects to act (x creates the depot, s fills it).
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId s = g.AddSubject("s");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(s, x, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(s, y, tg::kRead).ok());
  EXPECT_EQ(MinConspirators(g, Right::kRead, x, y), 2u);
}

TEST(MinConspiratorsTest, GrantOnlyNeedsTheGrantor) {
  // s -g-> x: s alone grants the right; x stays passive.
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId s = g.AddSubject("s");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(s, x, tg::kGrant).ok());
  ASSERT_TRUE(g.AddExplicit(s, y, tg::kRead).ok());
  EXPECT_EQ(MinConspirators(g, Right::kRead, x, y), 1u);
}

TEST(MinConspiratorsTest, CreatedPuppetsChargeTheirCreator) {
  // The depot construction creates a vertex; if a created *subject* were a
  // free extra actor the count would be wrong.  In s -t-> x the answer must
  // stay 2 even though the witness may create helpers.
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId s = g.AddSubject("s");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(s, x, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(s, y, tg::kRead).ok());
  auto count = MinConspirators(g, Right::kRead, x, y);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 2u);
}

TEST(MinConspiratorsTest, ImpossibleTransfersGiveNullopt) {
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId y = g.AddObject("y");
  g.AddSubject("s");
  OracleOptions options;
  options.max_states = 2000;
  EXPECT_FALSE(MinConspirators(g, Right::kRead, x, y, options).has_value());
}

TEST(MinConspiratorsTest, PureBackwardChainCollapsesToTwo) {
  // Reversed t edges all the way compose into a *forward* terminal span
  // from s (takes pull through passive holders), so only the two bridge
  // endpoints x and s need to act.
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId o = g.AddObject("o");
  VertexId m = g.AddSubject("m");
  VertexId o2 = g.AddObject("o2");
  VertexId s = g.AddSubject("s");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(o, x, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(m, o, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(o2, m, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(s, o2, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(s, y, tg::kRead).ok());
  ASSERT_TRUE(CanShare(g, Right::kRead, x, y));
  auto collapse_count = MinConspirators(g, Right::kRead, x, y);
  ASSERT_TRUE(collapse_count.has_value());
  EXPECT_EQ(*collapse_count, 2u);
}

TEST(MinConspiratorsTest, GrantRelayNeedsAllThree) {
  // s -g-> m -g-> a <-t- x: s must push the right to m (grant), m must
  // deposit it into a (grant), and x must pull it out (take): three actors,
  // no creates.
  ProtectionGraph g;
  VertexId x = g.AddSubject("x");
  VertexId a = g.AddObject("a");
  VertexId m = g.AddSubject("m");
  VertexId s = g.AddSubject("s");
  VertexId y = g.AddObject("y");
  ASSERT_TRUE(g.AddExplicit(s, m, tg::kGrant).ok());
  ASSERT_TRUE(g.AddExplicit(m, a, tg::kGrant).ok());
  ASSERT_TRUE(g.AddExplicit(x, a, tg::kTake).ok());
  ASSERT_TRUE(g.AddExplicit(s, y, tg::kRead).ok());
  ASSERT_TRUE(CanShare(g, Right::kRead, x, y));
  auto count = MinConspirators(g, Right::kRead, x, y);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 3u);
}

TEST(MinConspiratorsTest, WitnessActorsUpperBoundTheMinimum) {
  tg_util::Prng prng(888);
  tg_sim::RandomGraphOptions options;
  options.subjects = 3;
  options.objects = 2;
  options.edge_factor = 1.1;
  OracleOptions oracle;
  oracle.max_states = 30000;
  for (int trial = 0; trial < 8; ++trial) {
    ProtectionGraph g = tg_sim::RandomGraph(options, prng);
    for (VertexId x = 0; x < g.VertexCount(); ++x) {
      for (VertexId y = 0; y < g.VertexCount(); ++y) {
        if (x == y || g.HasExplicit(x, y, Right::kRead)) {
          continue;
        }
        auto witness = BuildCanShareWitness(g, Right::kRead, x, y);
        if (!witness.has_value()) {
          continue;
        }
        auto min_count = MinConspirators(g, Right::kRead, x, y, oracle);
        ASSERT_TRUE(min_count.has_value())
            << "share witness exists but conspirator search failed";
        EXPECT_LE(*min_count, ActiveActors(*witness).size())
            << g.NameOf(x) << " -> " << g.NameOf(y) << " trial " << trial;
        EXPECT_GE(*min_count, 1u);
      }
    }
  }
}

}  // namespace
}  // namespace tg_analysis

#include "src/server/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tg_server {
namespace {

using tg::ProtectionGraph;
using tg::Right;
using tg::RuleKind;

// ---- EncodeFrame ----

TEST(EncodeFrameTest, LengthThenPayloadThenNewline) {
  EXPECT_EQ(EncodeFrame("ping"), "4\nping\n");
  EXPECT_EQ(EncodeFrame("a\nb"), "3\na\nb\n");
  EXPECT_EQ(EncodeFrame(""), "0\n\n");
}

// ---- FrameDecoder ----

TEST(FrameDecoderTest, DecodesOneFrame) {
  FrameDecoder d;
  d.Feed(EncodeFrame("can_know a b"));
  std::string payload;
  ASSERT_EQ(d.Next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload, "can_know a b");
  EXPECT_EQ(d.Next(&payload), FrameDecoder::Result::kNeedMore);
  EXPECT_EQ(d.buffered_bytes(), 0u);
}

TEST(FrameDecoderTest, DecodesPipelinedFramesFromOneFeed) {
  FrameDecoder d;
  d.Feed(EncodeFrame("ping") + EncodeFrame("epoch") + EncodeFrame("a\nb\nc"));
  std::string payload;
  ASSERT_EQ(d.Next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload, "ping");
  ASSERT_EQ(d.Next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload, "epoch");
  ASSERT_EQ(d.Next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload, "a\nb\nc");
  EXPECT_EQ(d.Next(&payload), FrameDecoder::Result::kNeedMore);
}

TEST(FrameDecoderTest, ReassemblesByteAtATime) {
  const std::string wire = EncodeFrame("levels");
  FrameDecoder d;
  std::string payload;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    d.Feed(std::string_view(&wire[i], 1));
    EXPECT_EQ(d.Next(&payload), FrameDecoder::Result::kNeedMore) << "at byte " << i;
  }
  d.Feed(std::string_view(&wire[wire.size() - 1], 1));
  ASSERT_EQ(d.Next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload, "levels");
}

TEST(FrameDecoderTest, EmptyPayloadFrame) {
  FrameDecoder d;
  d.Feed("0\n\n");
  std::string payload;
  ASSERT_EQ(d.Next(&payload), FrameDecoder::Result::kFrame);
  EXPECT_EQ(payload, "");
}

TEST(FrameDecoderTest, RejectsOversizedFrame) {
  FrameDecoder d;
  d.Feed(std::to_string(kMaxFrameBytes + 1) + "\n");
  std::string payload;
  ASSERT_EQ(d.Next(&payload), FrameDecoder::Result::kError);
  EXPECT_NE(d.error().find("exceeds limit"), std::string::npos) << d.error();
}

TEST(FrameDecoderTest, RejectsEightDigitLength) {
  FrameDecoder d;
  d.Feed("12345678\n");
  std::string payload;
  EXPECT_EQ(d.Next(&payload), FrameDecoder::Result::kError);
}

TEST(FrameDecoderTest, RejectsRunawayLengthLineWithoutNewline) {
  // More than 8 bytes and still no '\n': malformed however it continues.
  FrameDecoder d;
  d.Feed("123456789");
  std::string payload;
  EXPECT_EQ(d.Next(&payload), FrameDecoder::Result::kError);
}

TEST(FrameDecoderTest, RejectsNonNumericLength) {
  FrameDecoder d;
  d.Feed("12a\n");
  std::string payload;
  EXPECT_EQ(d.Next(&payload), FrameDecoder::Result::kError);
}

TEST(FrameDecoderTest, RejectsEmptyLengthLine) {
  FrameDecoder d;
  d.Feed("\n");
  std::string payload;
  EXPECT_EQ(d.Next(&payload), FrameDecoder::Result::kError);
}

TEST(FrameDecoderTest, RejectsPayloadNotTerminatedByNewline) {
  // Length says 4, but the byte after "ping" is 'X', not '\n'.
  FrameDecoder d;
  d.Feed("4\npingX");
  std::string payload;
  ASSERT_EQ(d.Next(&payload), FrameDecoder::Result::kError);
  EXPECT_NE(d.error().find("not terminated"), std::string::npos) << d.error();
}

TEST(FrameDecoderTest, TruncatedFrameIsNeedMoreNotError) {
  FrameDecoder d;
  d.Feed("100\npartial payload");
  std::string payload;
  EXPECT_EQ(d.Next(&payload), FrameDecoder::Result::kNeedMore);
}

TEST(FrameDecoderTest, StaysPoisonedAfterError) {
  FrameDecoder d;
  d.Feed("bogus\n");
  std::string payload;
  ASSERT_EQ(d.Next(&payload), FrameDecoder::Result::kError);
  // A well-formed frame after the poison pill must not resurrect it.
  d.Feed(EncodeFrame("ping"));
  EXPECT_EQ(d.Next(&payload), FrameDecoder::Result::kError);
}

TEST(FrameDecoderTest, CompactsConsumedBytesAcrossManyFrames) {
  // Long-lived pipelined connection: the buffer must not grow without
  // bound while frames are consumed as they arrive.
  FrameDecoder d;
  const std::string wire = EncodeFrame("can_know alice doc");
  std::string payload;
  for (int i = 0; i < 10000; ++i) {
    d.Feed(wire);
    ASSERT_EQ(d.Next(&payload), FrameDecoder::Result::kFrame);
  }
  EXPECT_EQ(d.buffered_bytes(), 0u);
}

// ---- SplitRequestLines ----

TEST(SplitRequestLinesTest, EmptyPayloadIsNoRequests) {
  EXPECT_TRUE(SplitRequestLines("").empty());
}

TEST(SplitRequestLinesTest, SplitsOnNewlines) {
  auto lines = SplitRequestLines("ping\nepoch\ncan_know a b");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "ping");
  EXPECT_EQ(lines[1], "epoch");
  EXPECT_EQ(lines[2], "can_know a b");
}

TEST(SplitRequestLinesTest, PreservesInteriorEmptyLines) {
  // Empty lines stay (they answer as errors), keeping line/response
  // pairing intact.
  auto lines = SplitRequestLines("ping\n\nepoch");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "");
}

TEST(SplitRequestLinesTest, TrailingNewlineYieldsTrailingEmptyRequest) {
  auto lines = SplitRequestLines("ping\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "ping");
  EXPECT_EQ(lines[1], "");
}

// ---- IsWriteRequest ----

TEST(IsWriteRequestTest, ClassifiesVerbs) {
  EXPECT_TRUE(IsWriteRequest("admit take a b c r"));
  EXPECT_TRUE(IsWriteRequest("txn begin"));
  EXPECT_TRUE(IsWriteRequest("  txn commit"));  // leading whitespace tolerated
  EXPECT_FALSE(IsWriteRequest("can_know a b"));
  EXPECT_FALSE(IsWriteRequest("ping"));
  EXPECT_FALSE(IsWriteRequest("admitx y"));  // prefix is not the verb
  EXPECT_FALSE(IsWriteRequest(""));
  EXPECT_FALSE(IsWriteRequest("wholly unknown verb"));
}

// ---- ParseRuleClause ----

class ParseRuleClauseTest : public ::testing::Test {
 protected:
  ParseRuleClauseTest() {
    a_ = g_.AddSubject("a");
    b_ = g_.AddSubject("b");
    doc_ = g_.AddObject("doc");
  }

  static std::vector<std::string_view> Tokens(std::initializer_list<std::string_view> t) {
    return std::vector<std::string_view>(t);
  }

  ProtectionGraph g_;
  tg::VertexId a_, b_, doc_;
};

TEST_F(ParseRuleClauseTest, ParsesTakeAndGrant) {
  auto take = ParseRuleClause(Tokens({"take", "a", "b", "doc", "rw"}), g_);
  ASSERT_TRUE(take.ok()) << take.status().ToString();
  EXPECT_EQ(take->kind, RuleKind::kTake);
  EXPECT_EQ(take->x, a_);
  EXPECT_EQ(take->y, b_);
  EXPECT_EQ(take->z, doc_);
  EXPECT_TRUE(take->rights.Has(Right::kRead));
  EXPECT_TRUE(take->rights.Has(Right::kWrite));

  auto grant = ParseRuleClause(Tokens({"grant", "a", "b", "doc", "g"}), g_);
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(grant->kind, RuleKind::kGrant);
}

TEST_F(ParseRuleClauseTest, ParsesCreateWithAndWithoutName) {
  auto anon = ParseRuleClause(Tokens({"create", "a", "object", "rw"}), g_);
  ASSERT_TRUE(anon.ok());
  EXPECT_EQ(anon->kind, RuleKind::kCreate);
  EXPECT_EQ(anon->create_kind, tg::VertexKind::kObject);
  EXPECT_TRUE(anon->new_name.empty());

  auto named = ParseRuleClause(Tokens({"create", "b", "subject", "r", "fresh"}), g_);
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(named->create_kind, tg::VertexKind::kSubject);
  EXPECT_EQ(named->new_name, "fresh");
}

TEST_F(ParseRuleClauseTest, ParsesRemoveAndDeFacto) {
  auto remove = ParseRuleClause(Tokens({"remove", "a", "doc", "r"}), g_);
  ASSERT_TRUE(remove.ok());
  EXPECT_EQ(remove->kind, RuleKind::kRemove);

  auto post = ParseRuleClause(Tokens({"post", "a", "b", "doc"}), g_);
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post->kind, RuleKind::kPost);
  auto spy = ParseRuleClause(Tokens({"spy", "a", "b", "doc"}), g_);
  ASSERT_TRUE(spy.ok());
  EXPECT_EQ(spy->kind, RuleKind::kSpy);
}

TEST_F(ParseRuleClauseTest, RejectsMalformedClauses) {
  EXPECT_FALSE(ParseRuleClause(Tokens({}), g_).ok());
  EXPECT_FALSE(ParseRuleClause(Tokens({"steal", "a", "b", "doc", "r"}), g_).ok());
  EXPECT_FALSE(ParseRuleClause(Tokens({"take", "a", "b", "doc"}), g_).ok());  // arity
  EXPECT_FALSE(ParseRuleClause(Tokens({"take", "nobody", "b", "doc", "r"}), g_).ok());
  EXPECT_FALSE(ParseRuleClause(Tokens({"take", "a", "b", "doc", "qq"}), g_).ok());
  EXPECT_FALSE(ParseRuleClause(Tokens({"take", "a", "b", "doc", ""}), g_).ok());
  EXPECT_FALSE(ParseRuleClause(Tokens({"create", "a", "gizmo", "r"}), g_).ok());
  EXPECT_FALSE(ParseRuleClause(Tokens({"remove", "a", "doc"}), g_).ok());
  EXPECT_FALSE(ParseRuleClause(Tokens({"post", "a", "b"}), g_).ok());
}

// ---- Response builders / field extraction ----

TEST(ResponseTest, OkAndErrorShapes) {
  EXPECT_EQ(OkResponse(""), "{\"ok\":true}");
  EXPECT_EQ(OkResponse("\"verb\":\"ping\""), "{\"ok\":true,\"verb\":\"ping\"}");
  EXPECT_EQ(ErrorResponse("boom"), "{\"ok\":false,\"error\":\"boom\"}");
}

TEST(ResponseTest, ErrorResponseEscapesMessage) {
  const std::string r = ErrorResponse("bad \"name\"\n");
  EXPECT_NE(r.find("\\\"name\\\""), std::string::npos) << r;
  EXPECT_EQ(r.find('\n'), std::string::npos) << "responses must be single-line";
}

TEST(ExtractJsonFieldTest, ExtractsScalarsStringsAndNested) {
  const std::string json =
      "{\"ok\":true,\"epoch\":42,\"x\":\"al\\\"ice\",\"decision\":{\"outcome\":\"accepted\","
      "\"seq\":7},\"sample\":[1,2],\"last\":false}";
  EXPECT_EQ(ExtractJsonField(json, "ok"), "true");
  EXPECT_EQ(ExtractJsonField(json, "epoch"), "42");
  EXPECT_EQ(ExtractJsonField(json, "x"), "\"al\\\"ice\"");
  EXPECT_EQ(ExtractJsonField(json, "decision"), "{\"outcome\":\"accepted\",\"seq\":7}");
  EXPECT_EQ(ExtractJsonField(json, "sample"), "[1,2]");
  EXPECT_EQ(ExtractJsonField(json, "last"), "false");
  EXPECT_EQ(ExtractJsonField(json, "absent"), "");
}

TEST(ExtractJsonFieldTest, NestedKeysDoNotShadowTopLevelOnes) {
  // An admit response embeds an AdmissionDecision whose own "epoch"/"txn"
  // precede the response's; only the depth-1 key may answer.
  const std::string json =
      "{\"ok\":true,\"decision\":{\"epoch\":9,\"txn\":3,\"outcome\":\"ACCEPTED\"},"
      "\"epoch\":10}";
  EXPECT_EQ(ExtractJsonField(json, "epoch"), "10");
  EXPECT_EQ(ExtractJsonField(json, "txn"), "");
  EXPECT_EQ(ExtractJsonField(json, "outcome"), "");
  // A string value that happens to spell a key/colon pair is not a match.
  EXPECT_EQ(ExtractJsonField("{\"msg\":\"fake \\\"epoch\\\": here\",\"epoch\":5}", "epoch"),
            "5");
}

}  // namespace
}  // namespace tg_server

// Concurrent epoch-pinning torture: N reader connections hammer can_knowf
// queries while one writer commits admission transactions, and every
// single response must be consistent with exactly one published epoch.
//
// The graph makes the check exact.  Subject `alpha` holds only a take
// right on `relay`, and `relay` reads objects `b0..bK-1`:
//
//   alpha -t-> relay     relay -r-> b_i   (all in one level)
//
// De facto, alpha knows nothing: can_knowf(alpha, b_i) is false on the
// initial graph.  The writer then commits, one wire transaction per i in
// order, `take alpha relay b_i r` — after which alpha reads b_i directly
// and can_knowf(alpha, b_i) is true.  Each take adds one explicit edge,
// i.e. advances the graph epoch by exactly one, so with initial epoch E0
// the verdict for b_i flips at epoch E0 + i + 1 and nowhere else:
//
//   can_knowf(alpha, b_i) == (response epoch >= E0 + i + 1)
//
// Readers assert that equality on every response.  A response computed
// against a half-published snapshot, a stale cache surviving epoch
// rebinding, or a batch mixing two epochs all break it.  The writer
// independently asserts the commit-reported epochs march E0+1, E0+2, ...
// so the formula itself is validated, not assumed.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/server.h"

namespace tg_server {
namespace {

constexpr size_t kTakes = 40;     // committed transactions (epoch steps)
constexpr size_t kReaders = 3;    // concurrent reader connections
constexpr size_t kBatchLines = 32;  // pipelined queries per reader frame

uint64_t EpochOf(const std::string& response) {
  const std::string field = ExtractJsonField(response, "epoch");
  return field.empty() ? 0 : std::stoull(field);
}

TEST(EpochPinningTest, EveryResponseConsistentWithExactlyOnePublishedEpoch) {
  tg::ProtectionGraph graph;
  tg::VertexId alpha = graph.AddSubject("alpha");
  tg::VertexId relay = graph.AddSubject("relay");
  ASSERT_TRUE(graph.AddExplicit(alpha, relay, tg::RightSet(tg::Right::kTake)).ok());
  for (size_t i = 0; i < kTakes; ++i) {
    tg::VertexId b = graph.AddObject("b" + std::to_string(i));
    ASSERT_TRUE(graph.AddExplicit(relay, b, tg::RightSet(tg::Right::kRead)).ok());
  }
  tg_hier::LevelAssignment levels(graph.VertexCount(), 1);
  for (tg::VertexId v = 0; v < static_cast<tg::VertexId>(graph.VertexCount()); ++v) {
    levels.Assign(v, 0);
  }
  ASSERT_TRUE(levels.Finalize());

  PolicyServer::Options options;
  options.unix_path =
      "/tmp/tg_epoch_pinning_" + std::to_string(::getpid()) + ".sock";
  options.engine.threads = 4;  // several worker slots even on one core
  PolicyServer server(std::move(graph), std::move(levels), options);
  ASSERT_TRUE(server.Start().ok());

  PolicyClient probe;
  ASSERT_TRUE(probe.ConnectUnix(server.unix_path()).ok());
  auto initial = probe.Call("epoch");
  ASSERT_TRUE(initial.ok()) << initial.status().ToString();
  const uint64_t e0 = EpochOf(*initial);
  const uint64_t e_final = e0 + kTakes;

  std::atomic<bool> writer_done{false};
  std::atomic<size_t> writer_failures{0};
  std::atomic<size_t> reader_failures{0};
  std::atomic<size_t> responses_checked{0};
  std::atomic<size_t> flips_observed{0};  // batches seeing both verdicts

  std::thread writer([&] {
    PolicyClient client;
    if (!client.ConnectUnix(server.unix_path()).ok()) {
      ++writer_failures;
      writer_done.store(true);
      return;
    }
    for (size_t i = 0; i < kTakes; ++i) {
      auto batch = client.CallBatch({"txn begin",
                                     "admit take alpha relay b" + std::to_string(i) + " r",
                                     "txn commit"});
      if (!batch.ok() || batch->size() != 3) {
        ++writer_failures;
        break;
      }
      for (const std::string& r : *batch) {
        if (ExtractJsonField(r, "ok") != "true") {
          ADD_FAILURE() << "writer step " << i << ": " << r;
          ++writer_failures;
        }
      }
      // Exactly one effective mutation per commit: the formula the readers
      // rely on is enforced here, not assumed.
      const uint64_t committed_epoch = EpochOf((*batch)[2]);
      if (committed_epoch != e0 + i + 1) {
        ADD_FAILURE() << "commit " << i << " reported epoch " << committed_epoch
                      << ", expected " << (e0 + i + 1);
        ++writer_failures;
      }
      if (ExtractJsonField((*batch)[2], "applied") != "1") {
        ADD_FAILURE() << "commit " << i << " applied != 1: " << (*batch)[2];
        ++writer_failures;
      }
    }
    writer_done.store(true);
  });

  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      PolicyClient client;
      if (!client.ConnectUnix(server.unix_path()).ok()) {
        ++reader_failures;
        return;
      }
      uint64_t lcg = 0x9e3779b97f4a7c15ull * (t + 1);  // per-thread query mix
      uint64_t last_epoch = 0;
      // Keep querying until the writer finished, then one more sweep so the
      // final epoch is exercised too.
      for (bool final_pass = false;;) {
        std::vector<std::string> requests;
        std::vector<size_t> targets;
        requests.reserve(kBatchLines);
        for (size_t q = 0; q < kBatchLines; ++q) {
          lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
          const size_t i = final_pass ? q % kTakes : (lcg >> 33) % kTakes;
          targets.push_back(i);
          requests.push_back("can_knowf alpha b" + std::to_string(i));
        }
        auto responses = client.CallBatch(requests);
        if (!responses.ok() || responses->size() != requests.size()) {
          ++reader_failures;
          return;
        }
        uint64_t frame_epoch = 0;
        bool saw_true = false, saw_false = false;
        for (size_t q = 0; q < responses->size(); ++q) {
          const std::string& r = (*responses)[q];
          const uint64_t epoch = EpochOf(r);
          const std::string verdict = ExtractJsonField(r, "verdict");
          const bool expect_true = epoch >= e0 + targets[q] + 1;
          if (ExtractJsonField(r, "ok") != "true" ||
              verdict != (expect_true ? "true" : "false")) {
            ADD_FAILURE() << "reader " << t << ": verdict inconsistent with epoch: " << r
                          << " (flip epoch " << (e0 + targets[q] + 1) << ")";
            ++reader_failures;
          }
          (verdict == "true" ? saw_true : saw_false) = true;
          // One pipelined frame answers against one pinned snapshot.
          if (q == 0) {
            frame_epoch = epoch;
          } else if (epoch != frame_epoch) {
            ADD_FAILURE() << "reader " << t << ": one frame, two epochs (" << frame_epoch
                          << " vs " << epoch << ")";
            ++reader_failures;
          }
          // Epochs never exceed what the writer created, and never regress
          // across this connection's successive frames.
          if (epoch > e_final || epoch < last_epoch) {
            ADD_FAILURE() << "reader " << t << ": epoch " << epoch << " outside ["
                          << last_epoch << ", " << e_final << "]";
            ++reader_failures;
          }
          ++responses_checked;
        }
        if (saw_true && saw_false) {
          ++flips_observed;
        }
        last_epoch = frame_epoch;
        if (final_pass) {
          return;
        }
        if (writer_done.load()) {
          final_pass = true;
        }
      }
    });
  }

  writer.join();
  for (std::thread& r : readers) {
    r.join();
  }
  EXPECT_EQ(writer_failures.load(), 0u);
  EXPECT_EQ(reader_failures.load(), 0u);
  EXPECT_GE(responses_checked.load(), kReaders * kBatchLines) << "readers barely ran";

  // After everything committed, the next read pins the final epoch and all
  // verdicts are true.
  std::vector<std::string> all;
  for (size_t i = 0; i < kTakes; ++i) {
    all.push_back("can_knowf alpha b" + std::to_string(i));
  }
  auto settled = probe.CallBatch(all);
  ASSERT_TRUE(settled.ok()) << settled.status().ToString();
  for (const std::string& r : *settled) {
    EXPECT_EQ(ExtractJsonField(r, "verdict"), "true") << r;
    EXPECT_EQ(EpochOf(r), e_final) << r;
  }

  server.Stop();
}

}  // namespace
}  // namespace tg_server

// In-process PolicyServer round-trips: the wire verbs end to end, the
// admission/txn ownership rules, and the protocol-robustness paths the
// ISSUE calls out — oversized frame, truncated frame, unknown verb,
// mid-request disconnect, slow-reader backpressure.  Everything runs
// against a loopback unix socket (plus one TCP case) with real sockets,
// so these also exercise the epoll loop, the dispatcher handoff, and the
// zombie-reaping connection lifetime under sanitizers.

#include "src/server/server.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/util/flight_recorder.h"
#include "src/util/metrics.h"
#include "src/util/trace.h"

namespace tg_server {
namespace {

std::string UniqueSocketPath(const char* tag) {
  static int counter = 0;
  return "/tmp/tg_server_test_" + std::to_string(::getpid()) + "_" + tag + "_" +
         std::to_string(counter++) + ".sock";
}

// A five-vertex office: alice can *take* from bob (who reads doc), but has
// no information path of her own until an admitted take gives her one.
//
//   alice -t-> bob    bob -r-> doc    carol -w-> memo    alice -g-> carol
//
// Everything sits in one level, so the admission gate accepts same-level
// rules and the tests can drive writes without tripping the veto paths.
struct OfficeFixture {
  tg::ProtectionGraph graph;
  tg_hier::LevelAssignment levels;

  OfficeFixture() {
    tg::VertexId alice = graph.AddSubject("alice");
    tg::VertexId bob = graph.AddSubject("bob");
    tg::VertexId carol = graph.AddSubject("carol");
    tg::VertexId doc = graph.AddObject("doc");
    tg::VertexId memo = graph.AddObject("memo");
    EXPECT_TRUE(graph.AddExplicit(alice, bob, tg::RightSet(tg::Right::kTake)).ok());
    EXPECT_TRUE(graph.AddExplicit(bob, doc, tg::RightSet(tg::Right::kRead)).ok());
    EXPECT_TRUE(graph.AddExplicit(carol, memo, tg::RightSet(tg::Right::kWrite)).ok());
    EXPECT_TRUE(graph.AddExplicit(alice, carol, tg::RightSet(tg::Right::kGrant)).ok());
    levels = tg_hier::LevelAssignment(graph.VertexCount(), 1);
    for (tg::VertexId v = 0; v < static_cast<tg::VertexId>(graph.VertexCount()); ++v) {
      levels.Assign(v, 0);
    }
    EXPECT_TRUE(levels.Finalize());
  }
};

// Starts a server over the fixture on a fresh unix socket and connects one
// client.  Additional clients/raw sockets connect to server->unix_path().
struct ServerHarness {
  explicit ServerHarness(const char* tag, PolicyServer::Options options = {}) {
    OfficeFixture office;
    options.unix_path = UniqueSocketPath(tag);
    server = std::make_unique<PolicyServer>(std::move(office.graph),
                                            std::move(office.levels), options);
    auto started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    auto connected = client.ConnectUnix(server->unix_path());
    EXPECT_TRUE(connected.ok()) << connected.ToString();
  }

  std::string Call(const std::string& request) {
    auto response = client.Call(request);
    EXPECT_TRUE(response.ok()) << request << ": " << response.status().ToString();
    return response.ok() ? *response : "";
  }

  std::unique_ptr<PolicyServer> server;
  PolicyClient client;
};

// Raw byte-level access for the malformed-input tests (PolicyClient only
// speaks well-formed frames).
struct RawClient {
  int fd = -1;
  FrameDecoder decoder;

  ~RawClient() { Close(); }

  bool Connect(const std::string& path) {
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }

  bool Send(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads until one frame decodes ("payload") or EOF ("<eof>") or a decode
  // error ("<decode-error>").
  std::string ReadFrameOrEof() {
    std::string payload;
    char buf[4096];
    while (true) {
      switch (decoder.Next(&payload)) {
        case FrameDecoder::Result::kFrame:
          return payload;
        case FrameDecoder::Result::kError:
          return "<decode-error>";
        case FrameDecoder::Result::kNeedMore:
          break;
      }
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        return "<eof>";
      }
      decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }

  // Drains to EOF; returns how many complete frames arrived on the way.
  size_t DrainToEof() {
    size_t frames = 0;
    std::string payload;
    char buf[4096];
    while (true) {
      while (decoder.Next(&payload) == FrameDecoder::Result::kFrame) {
        ++frames;
      }
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        return frames;
      }
      decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }

  void Close() {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
};

uint64_t EpochOf(const std::string& response) {
  const std::string field = ExtractJsonField(response, "epoch");
  EXPECT_FALSE(field.empty()) << response;
  return field.empty() ? 0 : std::stoull(field);
}

bool IsOk(const std::string& response) {
  return ExtractJsonField(response, "ok") == "true";
}

// ---- Read verbs ----

TEST(PolicyServerTest, AnswersReadVerbsOverUnixSocket) {
  ServerHarness h("reads");

  EXPECT_EQ(ExtractJsonField(h.Call("ping"), "verb"), "\"ping\"");

  const std::string epoch = h.Call("epoch");
  EXPECT_TRUE(IsOk(epoch)) << epoch;
  EXPECT_EQ(ExtractJsonField(epoch, "vertices"), "5");
  EXPECT_EQ(ExtractJsonField(epoch, "subjects"), "3");

  // De jure: alice -t-> bob -r-> doc is a take path.
  const std::string know = h.Call("can_know alice doc");
  EXPECT_EQ(ExtractJsonField(know, "verdict"), "true") << know;
  // De facto: alice holds no information rights at all yet.
  const std::string knowf = h.Call("can_knowf alice doc");
  EXPECT_EQ(ExtractJsonField(knowf, "verdict"), "false") << knowf;
  // But bob reads doc directly.
  EXPECT_EQ(ExtractJsonField(h.Call("can_knowf bob doc"), "verdict"), "true");

  const std::string share = h.Call("can_share r alice doc");
  EXPECT_EQ(ExtractJsonField(share, "verdict"), "true") << share;

  const std::string knowable = h.Call("knowable bob");
  EXPECT_TRUE(IsOk(knowable)) << knowable;
  EXPECT_FALSE(ExtractJsonField(knowable, "count").empty());

  const std::string levels = h.Call("levels");
  EXPECT_TRUE(IsOk(levels)) << levels;
  EXPECT_FALSE(ExtractJsonField(levels, "level_count").empty());

  const std::string secure = h.Call("check_secure");
  EXPECT_TRUE(IsOk(secure)) << secure;
  EXPECT_FALSE(ExtractJsonField(secure, "secure").empty());

  const std::string stats = h.Call("stats");
  EXPECT_TRUE(IsOk(stats)) << stats;
  EXPECT_EQ(ExtractJsonField(stats, "connections"), "1");
  EXPECT_FALSE(ExtractJsonField(stats, "worker_threads").empty());
  EXPECT_FALSE(ExtractJsonField(stats, "published_epoch").empty());
}

TEST(PolicyServerTest, ChannelsAndExplainChannelVerbs) {
  ServerHarness h("channels");

  // The fixture assigns every vertex to one level, so the typed channel
  // scan answers cleanly with zero channels.
  const std::string channels = h.Call("channels");
  EXPECT_TRUE(IsOk(channels)) << channels;
  EXPECT_EQ(ExtractJsonField(channels, "count"), "0") << channels;

  // alice -t-> bob is a t>* bridge: the explain verb must type it, carry
  // the word in the embedded provenance record, and report a verified
  // witness replay.
  const std::string explain = h.Call("explain_channel alice bob");
  EXPECT_TRUE(IsOk(explain)) << explain;
  EXPECT_NE(explain.find("\"verdict\":true"), std::string::npos) << explain;
  EXPECT_NE(explain.find("\"word\":\"t>*\""), std::string::npos) << explain;
  EXPECT_NE(explain.find("\"verified\":true"), std::string::npos) << explain;

  // No bridge or connection word links bob to carol (their only relation
  // routes through alice's grant, which needs alice as an endpoint).
  const std::string none = h.Call("explain_channel bob carol");
  EXPECT_TRUE(IsOk(none)) << none;
  EXPECT_NE(none.find("\"verdict\":false"), std::string::npos) << none;

  // Unknown names are errors, and the connection stays usable.
  const std::string bad = h.Call("explain_channel alice nobody");
  EXPECT_FALSE(IsOk(bad)) << bad;
  EXPECT_EQ(ExtractJsonField(h.Call("ping"), "verb"), "\"ping\"");
}

TEST(PolicyServerTest, AnswersOverTcpLoopback) {
  OfficeFixture office;
  PolicyServer::Options options;
  options.tcp_port = 0;  // ephemeral
  PolicyServer server(std::move(office.graph), std::move(office.levels), options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.tcp_port(), 0);

  PolicyClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.tcp_port()).ok());
  auto response = client.Call("can_know alice doc");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(ExtractJsonField(*response, "verdict"), "true");
}

TEST(PolicyServerTest, ErrorResponsesKeepConnectionUsable) {
  ServerHarness h("errors");
  // Unknown verb, bad arity, unknown vertex: all answer ok:false without
  // dropping the connection (only *framing* errors close it).
  EXPECT_FALSE(IsOk(h.Call("frobnicate")));
  EXPECT_FALSE(IsOk(h.Call("can_know alice")));
  EXPECT_FALSE(IsOk(h.Call("can_know alice nobody")));
  EXPECT_FALSE(IsOk(h.Call("can_share rw alice doc")));  // one right, not a set
  EXPECT_TRUE(IsOk(h.Call("ping")));
}

TEST(PolicyServerTest, PipelinedBatchAnswersInOrderAgainstOneEpoch) {
  ServerHarness h("pipeline");
  std::vector<std::string> requests = {"ping", "can_know alice doc", "can_knowf alice doc",
                                       "epoch", "knowable bob"};
  auto responses = h.client.CallBatch(requests);
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  ASSERT_EQ(responses->size(), requests.size());
  EXPECT_EQ(ExtractJsonField((*responses)[0], "verb"), "\"ping\"");
  EXPECT_EQ(ExtractJsonField((*responses)[1], "verdict"), "true");
  EXPECT_EQ(ExtractJsonField((*responses)[2], "verdict"), "false");
  const uint64_t epoch = EpochOf((*responses)[0]);
  for (const std::string& r : *responses) {
    EXPECT_TRUE(IsOk(r)) << r;
    EXPECT_EQ(EpochOf(r), epoch) << "one frame must answer against one epoch: " << r;
  }
}

// ---- Admission over the wire ----

TEST(PolicyServerTest, AdmitAppliesRuleAndGivesReadYourWrites) {
  ServerHarness h("admit");
  const uint64_t before = EpochOf(h.Call("epoch"));
  EXPECT_EQ(ExtractJsonField(h.Call("can_knowf alice doc"), "verdict"), "false");

  const std::string admit = h.Call("admit take alice bob doc r");
  ASSERT_TRUE(IsOk(admit)) << admit;
  EXPECT_FALSE(ExtractJsonField(admit, "decision").empty()) << admit;
  EXPECT_EQ(EpochOf(admit), before + 1) << admit;

  // Same connection, next request: must see its own write.
  const std::string after = h.Call("can_knowf alice doc");
  EXPECT_EQ(ExtractJsonField(after, "verdict"), "true") << after;
  EXPECT_GE(EpochOf(after), before + 1);
}

TEST(PolicyServerTest, ReadWriteReadInOneFrameOrdersAroundTheWrite) {
  ServerHarness h("rwr");
  auto responses = h.client.CallBatch({"can_knowf alice doc", "admit take alice bob doc r",
                                       "can_knowf alice doc"});
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  ASSERT_EQ(responses->size(), 3u);
  EXPECT_EQ(ExtractJsonField((*responses)[0], "verdict"), "false") << (*responses)[0];
  EXPECT_TRUE(IsOk((*responses)[1])) << (*responses)[1];
  EXPECT_EQ(ExtractJsonField((*responses)[2], "verdict"), "true") << (*responses)[2];
  EXPECT_LT(EpochOf((*responses)[0]), EpochOf((*responses)[2]));
}

TEST(PolicyServerTest, AdmitRejectsMalformedAndUnknownRules) {
  ServerHarness h("badadmit");
  EXPECT_FALSE(IsOk(h.Call("admit steal alice bob doc r")));
  EXPECT_FALSE(IsOk(h.Call("admit take alice bob nobody r")));
  EXPECT_FALSE(IsOk(h.Call("admit")));
  // The graph is untouched by the failures.
  EXPECT_EQ(ExtractJsonField(h.Call("can_knowf alice doc"), "verdict"), "false");
}

// ---- Transactions and ownership ----

TEST(PolicyServerTest, TxnIsExclusiveToItsConnection) {
  ServerHarness h("txnown");
  PolicyClient other;
  ASSERT_TRUE(other.ConnectUnix(h.server->unix_path()).ok());

  const std::string begin = h.Call("txn begin");
  ASSERT_TRUE(IsOk(begin)) << begin;
  EXPECT_NE(ExtractJsonField(begin, "txn"), "0");

  // The other connection can neither write nor open its own transaction.
  auto blocked = other.Call("admit take alice bob doc r");
  ASSERT_TRUE(blocked.ok());
  EXPECT_FALSE(IsOk(*blocked));
  EXPECT_NE(blocked->find("held by another connection"), std::string::npos) << *blocked;
  auto begin2 = other.Call("txn begin");
  ASSERT_TRUE(begin2.ok());
  EXPECT_FALSE(IsOk(*begin2));
  auto status = other.Call("txn status");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(ExtractJsonField(*status, "owned"), "false") << *status;
  // Reads stay unaffected while the transaction is open.
  auto read = other.Call("can_know alice doc");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(ExtractJsonField(*read, "verdict"), "true");

  // Owner stages and commits; the staged rule lands exactly at commit.
  const std::string staged = h.Call("admit take alice bob doc r");
  ASSERT_TRUE(IsOk(staged)) << staged;
  auto mid = other.Call("can_knowf alice doc");
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(ExtractJsonField(*mid, "verdict"), "false") << "staged rule visible before commit";
  const std::string commit = h.Call("txn commit");
  ASSERT_TRUE(IsOk(commit)) << commit;
  EXPECT_EQ(ExtractJsonField(commit, "committed"), "true");
  EXPECT_EQ(ExtractJsonField(commit, "applied"), "1");

  // Ownership released: the other connection can now transact.
  auto begin3 = other.Call("txn begin");
  ASSERT_TRUE(begin3.ok());
  EXPECT_TRUE(IsOk(*begin3)) << *begin3;
  auto abort = other.Call("txn abort");
  ASSERT_TRUE(abort.ok());
  EXPECT_EQ(ExtractJsonField(*abort, "committed"), "false");
}

TEST(PolicyServerTest, DisconnectAbortsOpenTxn) {
  ServerHarness h("txndrop");
  ASSERT_TRUE(IsOk(h.Call("txn begin")));
  h.client.Close();

  PolicyClient other;
  ASSERT_TRUE(other.ConnectUnix(h.server->unix_path()).ok());
  // The loop thread aborts the orphaned transaction when it notices the
  // EOF; poll briefly rather than assuming we lost the race.
  bool released = false;
  for (int i = 0; i < 500 && !released; ++i) {
    auto status = other.Call("txn status");
    ASSERT_TRUE(status.ok());
    released = ExtractJsonField(*status, "txn") == "0";
    if (!released) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(released) << "orphaned transaction never aborted";
  auto begin = other.Call("txn begin");
  ASSERT_TRUE(begin.ok());
  EXPECT_TRUE(IsOk(*begin)) << *begin;
}

// ---- Protocol robustness ----

TEST(PolicyServerTest, MalformedLengthLineGetsFramedErrorThenClose) {
  ServerHarness h("badlen");
  RawClient raw;
  ASSERT_TRUE(raw.Connect(h.server->unix_path()));
  ASSERT_TRUE(raw.Send("notanumber\n"));
  const std::string error = raw.ReadFrameOrEof();
  EXPECT_FALSE(IsOk(error)) << error;
  EXPECT_EQ(raw.ReadFrameOrEof(), "<eof>");
}

TEST(PolicyServerTest, OversizedFrameGetsFramedErrorThenClose) {
  ServerHarness h("oversize");
  RawClient raw;
  ASSERT_TRUE(raw.Connect(h.server->unix_path()));
  ASSERT_TRUE(raw.Send(std::to_string(kMaxFrameBytes + 1) + "\n"));
  const std::string error = raw.ReadFrameOrEof();
  EXPECT_FALSE(IsOk(error)) << error;
  EXPECT_NE(error.find("exceeds"), std::string::npos) << error;
  EXPECT_EQ(raw.ReadFrameOrEof(), "<eof>");
}

TEST(PolicyServerTest, PayloadMissingTrailingNewlineClosesConnection) {
  ServerHarness h("badterm");
  RawClient raw;
  ASSERT_TRUE(raw.Connect(h.server->unix_path()));
  ASSERT_TRUE(raw.Send("4\npingX"));
  const std::string error = raw.ReadFrameOrEof();
  EXPECT_FALSE(IsOk(error)) << error;
  EXPECT_EQ(raw.ReadFrameOrEof(), "<eof>");
}

TEST(PolicyServerTest, MidFrameDisconnectLeavesServerServing) {
  ServerHarness h("middrop");
  {
    RawClient raw;
    ASSERT_TRUE(raw.Connect(h.server->unix_path()));
    ASSERT_TRUE(raw.Send("100\nonly part of the promised payload"));
  }  // destructor closes mid-frame
  {
    // Disconnect with responses still in flight: the batch results for a
    // closed connection are dropped, not delivered to freed memory.
    RawClient raw;
    ASSERT_TRUE(raw.Connect(h.server->unix_path()));
    std::string payload;
    for (int i = 0; i < 256; ++i) {
      if (i != 0) {
        payload += '\n';
      }
      payload += "can_know alice doc";
    }
    ASSERT_TRUE(raw.Send(EncodeFrame(payload)));
  }  // close without reading anything
  EXPECT_TRUE(IsOk(h.Call("ping")));
}

TEST(PolicyServerTest, EmptyFrameAnswersEmptyFrame) {
  ServerHarness h("empty");
  RawClient raw;
  ASSERT_TRUE(raw.Connect(h.server->unix_path()));
  ASSERT_TRUE(raw.Send(EncodeFrame("") + EncodeFrame("ping")));
  EXPECT_EQ(raw.ReadFrameOrEof(), "");  // zero requests, zero responses, kept paired
  const std::string pong = raw.ReadFrameOrEof();
  EXPECT_TRUE(IsOk(pong)) << pong;
}

TEST(PolicyServerTest, SlowReaderIsClosedNotBufferedForever) {
  PolicyServer::Options options;
  options.max_output_bytes = 1 << 10;  // close once >1 KiB is stuck unsent
  options.max_pending_lines = 1 << 16;
  ServerHarness h("slowreader", options);

  // One frame whose joined responses (~1.4 MB of `levels` JSON) dwarf both
  // the kernel socket buffers and the output cap — and never read a byte.
  RawClient raw;
  ASSERT_TRUE(raw.Connect(h.server->unix_path()));
  std::string payload;
  for (int i = 0; i < 8000; ++i) {
    if (i != 0) {
      payload += '\n';
    }
    payload += "levels";
  }
  ASSERT_TRUE(raw.Send(EncodeFrame(payload)));
  // The server must give up on us: EOF arrives without the response frame
  // ever completing, and the control connection still answers.
  EXPECT_EQ(raw.DrainToEof(), 0u);
  EXPECT_TRUE(IsOk(h.Call("ping")));
}

TEST(PolicyServerTest, BackpressurePausesAndRecovers) {
  PolicyServer::Options options;
  options.max_pending_lines = 8;  // force the pause/resume path
  ServerHarness h("pause", options);
  std::vector<std::string> requests(100, "can_know alice doc");
  for (int round = 0; round < 3; ++round) {
    auto responses = h.client.CallBatch(requests);
    ASSERT_TRUE(responses.ok()) << responses.status().ToString();
    ASSERT_EQ(responses->size(), requests.size());
    for (const std::string& r : *responses) {
      EXPECT_EQ(ExtractJsonField(r, "verdict"), "true") << r;
    }
  }
}

// ---- Lifecycle ----

TEST(PolicyServerTest, StartTwiceFailsStopIsIdempotent) {
  ServerHarness h("lifecycle");
  EXPECT_FALSE(h.server->Start().ok());
  ASSERT_TRUE(IsOk(h.Call("ping")));
  h.server->Stop();
  h.server->Stop();
  EXPECT_GT(h.server->connections_accepted(), 0u);  // exact after Stop()
  // The unix socket is unlinked on shutdown.
  EXPECT_NE(::access(h.server->unix_path().c_str(), F_OK), 0);
}

TEST(PolicyServerTest, StopWithConnectedClientsDoesNotHang) {
  ServerHarness h("stopbusy");
  PolicyClient extra;
  ASSERT_TRUE(extra.ConnectUnix(h.server->unix_path()).ok());
  ASSERT_TRUE(IsOk(h.Call("ping")));
  h.server->Stop();  // clients still connected; must return promptly
}

// ---- Telemetry surface ----

// Forces metrics on and full-fidelity tracing for the body of a telemetry
// test, restoring both (and the slow-query machinery) afterwards so this
// suite's global knobs cannot leak into other tests.  Server Start() sets
// a 1-in-64 sample period, so the period must be re-zeroed after the
// harness exists.
class TelemetryGuard {
 public:
  TelemetryGuard()
      : was_enabled_(tg_util::MetricsEnabled()),
        threshold_(tg_util::SlowQueryThresholdNs()) {
    tg_util::SetMetricsEnabled(true);
  }
  ~TelemetryGuard() {
    tg_util::SetSlowQueryThresholdNs(threshold_);
    tg_util::SetQuerySamplePeriod(0);
    tg_util::SlowQueryLog::Instance().Clear();
    tg_util::SetMetricsEnabled(was_enabled_);
  }

 private:
  bool was_enabled_;
  uint64_t threshold_;
};

TEST(PolicyServerTest, StatsEmbedsTheFullMetricsRegistry) {
  TelemetryGuard guard;
  ServerHarness h("statsreg");
  tg_util::SetQuerySamplePeriod(0);  // record every query's trace events
  ASSERT_TRUE(IsOk(h.Call("can_know alice doc")));
  const std::string stats = h.Call("stats");
  ASSERT_TRUE(IsOk(stats));
  // The hand-picked summary fields are still present...
  EXPECT_FALSE(ExtractJsonField(stats, "connections").empty()) << stats;
  EXPECT_FALSE(ExtractJsonField(stats, "requests").empty()) << stats;
  // ...and the full registry JSON rides along: a superset holding every
  // registered instrument, including the trace-ring loss gauge.
  EXPECT_NE(stats.find("\"metrics\":{"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"trace.dropped\":"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"server.frames_received\":"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"server.request_ns.count\":"), std::string::npos) << stats;
}

TEST(PolicyServerTest, MetricsVerbReturnsPrometheusExposition) {
  TelemetryGuard guard;
  ServerHarness h("promverb");
  ASSERT_TRUE(IsOk(h.Call("ping")));
  const std::string response = h.Call("metrics");
  ASSERT_TRUE(IsOk(response));
  EXPECT_NE(response.find("\"format\":\"prometheus_0_0_4\""), std::string::npos)
      << response.substr(0, 200);
  // The exposition body is JSON-escaped into one field; spot-check that
  // the server families made it through with TYPE headers.
  EXPECT_NE(response.find("# TYPE tg_server_request_ns histogram"), std::string::npos);
  EXPECT_NE(response.find("tg_server_request_ns_bucket{le="), std::string::npos);
  EXPECT_NE(response.find("# TYPE tg_server_requests_rate gauge"), std::string::npos);
  EXPECT_NE(response.find("window=\\\"10s\\\""), std::string::npos);
}

TEST(PolicyServerTest, SlowlogCapturesQueriesPastTheThreshold) {
  TelemetryGuard guard;
  tg_util::SetSlowQueryThresholdNs(1);  // every read is "slow"
  tg_util::SlowQueryLog::Instance().Clear();
  ServerHarness h("slowlog");
  ASSERT_TRUE(IsOk(h.Call("can_know alice doc")));
  ASSERT_TRUE(IsOk(h.Call("can_share r bob doc")));
  const std::string response = h.Call("slowlog 2");
  ASSERT_TRUE(IsOk(response));
  EXPECT_EQ(ExtractJsonField(response, "verb"), "\"slowlog\"") << response;
  EXPECT_EQ(ExtractJsonField(response, "threshold_ns"), "1") << response;
  EXPECT_NE(ExtractJsonField(response, "captured"), "0") << response;
  // Entries carry the request line, a span tree, and (for explainable
  // predicates) the provenance record.
  EXPECT_NE(response.find("\"request\":\"can_share r bob doc\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"spans\":["), std::string::npos) << response;
  EXPECT_NE(response.find("\"provenance\":{"), std::string::npos) << response;
}

// Raw HTTP over the server's TCP listener: the first byte not looking
// like a length line flips the connection into HTTP mode.
std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string request = "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(PolicyServerTest, HttpGetMetricsServesAPrometheusScrape) {
  TelemetryGuard guard;
  OfficeFixture office;
  PolicyServer::Options options;
  options.tcp_port = 0;  // ephemeral
  PolicyServer server(std::move(office.graph), std::move(office.levels), options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.tcp_port(), 0);

  const std::string response = HttpGet(server.tcp_port(), "/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u) << response.substr(0, 120);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"), std::string::npos);
  // The body is a real exposition and Content-Length covers it exactly
  // (the server closes after one response, so the recv loop read it all).
  const size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);
  const std::string length_key = "Content-Length: ";
  const size_t length_at = response.find(length_key);
  ASSERT_NE(length_at, std::string::npos);
  EXPECT_EQ(std::stoull(response.substr(length_at + length_key.size())), body.size());
  EXPECT_EQ(body.rfind("# TYPE ", 0), 0u) << body.substr(0, 120);
  EXPECT_NE(body.find("\ntg_server_http_requests "), std::string::npos);

  // A wire client still speaks the framed protocol on the same listener.
  PolicyClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.tcp_port()).ok());
  auto framed = client.Call("ping");
  ASSERT_TRUE(framed.ok());
  EXPECT_TRUE(IsOk(*framed));
}

TEST(PolicyServerTest, HttpUnknownTargetGets404AndCloses) {
  TelemetryGuard guard;
  OfficeFixture office;
  PolicyServer::Options options;
  options.tcp_port = 0;
  PolicyServer server(std::move(office.graph), std::move(office.levels), options);
  ASSERT_TRUE(server.Start().ok());

  const std::string response = HttpGet(server.tcp_port(), "/nope");
  EXPECT_EQ(response.rfind("HTTP/1.0 404 Not Found", 0), 0u) << response.substr(0, 120);
  // The server stays healthy for framed clients afterwards.
  PolicyClient client;
  ASSERT_TRUE(client.ConnectTcp("127.0.0.1", server.tcp_port()).ok());
  auto framed = client.Call("ping");
  ASSERT_TRUE(framed.ok());
  EXPECT_TRUE(IsOk(*framed));
}

}  // namespace
}  // namespace tg_server

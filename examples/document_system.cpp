// Document management system (section 6's discussion).
//
// Models a small multi-level document store behind a reference monitor:
// authors create and share documents at their level, superiors read down,
// and the monitor vetoes anything that would complete a read-up or
// write-down edge.  Also demonstrates why *declassification* cannot be
// expressed safely: moving a document's level down would hand every prior
// writer a write-down edge, which the paper's security notion forbids.

#include <cstdio>

#include "src/take_grant.h"

namespace {

void Show(const tg_util::StatusOr<tg::RuleApplication>& result, const char* what) {
  std::printf("  %-52s %s\n", what, result.ok() ? "OK" : result.status().ToString().c_str());
}

}  // namespace

int main() {
  // Three clearances: public(0) < internal(1) < secret(2).
  tg_hier::LinearOptions options;
  options.levels = 3;
  options.subjects_per_level = 2;
  options.documents = true;
  tg_hier::ClassifiedSystem system = tg_hier::LinearClassification(options);
  system.levels.SetLevelName(0, "public");
  system.levels.SetLevelName(1, "internal");
  system.levels.SetLevelName(2, "secret");

  auto policy = std::make_shared<tg_hier::BishopRestrictionPolicy>(system.levels);
  tg_sim::ReferenceMonitor monitor(system.graph, policy);

  tg::VertexId analyst = system.level_subjects[1][0];   // internal
  tg::VertexId colleague = system.level_subjects[1][1]; // internal
  tg::VertexId intern = system.level_subjects[0][0];    // public
  tg::VertexId director = system.level_subjects[2][0];  // secret

  std::printf("document system: %s\n", monitor.graph().Summary().c_str());
  std::printf("actors: analyst/colleague=internal, intern=public, director=secret\n\n");

  // 1. The analyst drafts a report at its own level.
  auto created = monitor.Submit(tg::RuleApplication::Create(
      analyst, tg::VertexKind::kObject, tg::kReadWrite, "report"));
  tg::VertexId report = created.ok() ? created->created : tg::kInvalidVertex;
  Show(created, "analyst creates internal report");

  // 2. Share with a colleague (same level): allowed.
  (void)monitor.engine().mutable_graph().AddExplicit(analyst, colleague, tg::kGrant);
  Show(monitor.Submit(tg::RuleApplication::Grant(analyst, colleague, report, tg::kReadWrite)),
       "analyst grants rw on report to colleague");

  // 3. Escalate to the director (read-down for the superior): the director
  //    acquires read via its take edge over the analyst's level? No such
  //    edge exists, so the analyst grants upward -- the new edge is
  //    director -r-> report, a read *down* for the director: allowed.
  (void)monitor.engine().mutable_graph().AddExplicit(analyst, director, tg::kGrant);
  Show(monitor.Submit(tg::RuleApplication::Grant(analyst, director, report, tg::kRead)),
       "analyst grants r on report to director (read-down)");

  // 4. Leak to the intern: vetoed (read-up edge for the intern).
  (void)monitor.engine().mutable_graph().AddExplicit(analyst, intern, tg::kGrant);
  Show(monitor.Submit(tg::RuleApplication::Grant(analyst, intern, report, tg::kRead)),
       "analyst grants r on report to intern (LEAK)");

  // 5. The intern may still receive inert capabilities, e.g. execute.
  (void)monitor.engine().mutable_graph().AddExplicit(analyst, report, tg::RightSet(
      tg::Right::kExecute));
  Show(monitor.Submit(tg::RuleApplication::Grant(analyst, intern, report,
                                                 tg::RightSet(tg::Right::kExecute))),
       "analyst grants e (execute) on report to intern");

  // 6. Declassification attempt: pretend the report becomes public by
  //    re-assigning its level, then audit.  Every internal writer now holds
  //    a write-down edge: the system is no longer secure, which is exactly
  //    the paper's argument that declassification breaks the model.
  tg_hier::LevelAssignment declassified = policy->assignment();
  declassified.Assign(report, 0);
  auto offending = tg_hier::AuditBishopRestriction(monitor.graph(), declassified);
  std::printf("\ndeclassification audit: %zu forbidden edges after lowering the report\n",
              offending.size());
  for (const tg::Edge& e : offending) {
    std::printf("  %s -> %s [%s]\n", monitor.graph().NameOf(e.src).c_str(),
                monitor.graph().NameOf(e.dst).c_str(), e.TotalRights().ToString().c_str());
  }

  // 7. Final state of the monitored system remains clean under its real
  //    level assignment.
  auto clean = tg_hier::AuditBishopRestriction(
      tg_analysis::SaturateDeFacto(monitor.graph()), policy->assignment());
  std::printf("\nfinal audit under true levels: %zu forbidden edges\n", clean.size());
  std::printf("monitor: %zu allowed, %zu vetoed\n", monitor.allowed_count(),
              monitor.vetoed_count());
  std::printf("\naudit log:\n%s", monitor.RenderAuditLog().c_str());
  return 0;
}

// Long-running system simulation: a monitored multi-level organization
// operating for many rounds under mixed legitimate and adversarial load.
//
// Each round, every subject performs plausible work (creating documents,
// sharing at its own level, reading down); meanwhile a standing conspiracy
// tries to move high information low.  The demo runs the same trace under
// the unrestricted engine, under the Bishop restriction policy, and under
// the transactional admission gate (one group-committed transaction per
// round), reporting veto rates, breach status, and the audit/diff of the
// final state.

#include <cstdio>
#include <memory>

#include "src/take_grant.h"

namespace {

struct RoundStats {
  size_t ops = 0;
  size_t vetoed = 0;
  size_t txns_committed = 0;
};

// One round of legitimate-looking workload plus adversarial probes.
RoundStats RunRound(tg_sim::ReferenceMonitor& monitor,
                    const tg_sim::GeneratedHierarchy& h, tg_util::Prng& prng) {
  RoundStats stats;
  const tg::ProtectionGraph& g = monitor.graph();
  // Pick each level's author and sharing peer up front and lay the ad-hoc
  // administrative g edges out-of-band first: the admission gate (gated
  // monitors) repairs its incremental connection state from the mutation
  // journal between transactions, so out-of-band writes must land before
  // the round's transaction opens.
  struct LevelPlan {
    tg::VertexId author = tg::kInvalidVertex;
    tg::VertexId peer = tg::kInvalidVertex;
  };
  std::vector<LevelPlan> plan;
  for (const auto& subjects : h.level_subjects) {
    if (subjects.empty()) {
      continue;
    }
    LevelPlan p;
    p.author = prng.Choose(subjects);
    if (subjects.size() > 1) {
      tg::VertexId peer = subjects[prng.NextBelow(subjects.size())];
      if (peer != p.author) {
        p.peer = peer;
        (void)monitor.engine().mutable_graph().AddExplicit(p.author, peer, tg::kGrant);
      }
    }
    plan.push_back(p);
  }
  if (monitor.gated()) {
    (void)monitor.BeginTxn();
  }
  auto submit = [&](tg::RuleApplication rule) {
    ++stats.ops;
    if (!monitor.Submit(std::move(rule)).ok()) {
      ++stats.vetoed;
    }
  };
  // Legitimate work: each level's author drafts a document and shares
  // reads with its level peer.
  for (const LevelPlan& p : plan) {
    auto created = monitor.Submit(
        tg::RuleApplication::Create(p.author, tg::VertexKind::kObject, tg::kReadWrite));
    ++stats.ops;
    if (created.ok() && p.peer != tg::kInvalidVertex) {
      submit(tg::RuleApplication::Grant(p.author, p.peer, created->created, tg::kRead));
    }
  }
  // Adversarial probes: random applicable de jure rules, preferring ones
  // that move r/w around.
  std::vector<tg::RuleApplication> moves = tg::EnumerateDeJure(g);
  prng.Shuffle(moves);
  size_t probes = std::min<size_t>(moves.size(), 5);
  for (size_t i = 0; i < probes; ++i) {
    submit(moves[i]);
  }
  if (monitor.gated()) {
    auto txn = monitor.CommitTxn();
    if (txn.ok() && txn->committed) {
      ++stats.txns_committed;
    }
  }
  return stats;
}

}  // namespace

int main() {
  constexpr int kRounds = 25;
  tg_util::Prng seed_prng(20260707);
  tg_sim::RandomHierarchyOptions options;
  options.levels = 3;
  options.subjects_per_level = 3;
  options.objects_per_level = 2;
  options.planted_channels = 2;  // the org has pre-existing cross-level tg links
  tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, seed_prng);
  tg::VertexId low = h.level_subjects[0][0];
  tg::VertexId high = h.level_subjects[2][0];

  std::printf("system: %s, 3 levels, 2 planted cross-level channels\n",
              h.graph.Summary().c_str());
  std::printf("standing conspiracy goal: %s learns %s\n\n",
              h.graph.NameOf(low).c_str(), h.graph.NameOf(high).c_str());

  std::printf("%-22s %8s %8s %10s %8s %8s\n", "policy", "ops", "vetoed", "veto-rate",
              "breach", "audit");
  for (int mode = 0; mode < 3; ++mode) {
    std::unique_ptr<tg_sim::ReferenceMonitor> monitor;
    std::string name;
    if (mode == 0) {
      monitor = std::make_unique<tg_sim::ReferenceMonitor>(
          h.graph, std::make_shared<tg::AllowAllPolicy>());
      name = "allow-all";
    } else if (mode == 1) {
      // The production stack: Bishop restriction plus a blanket ban on
      // take/grant moving the delete right (a site-specific rule).
      monitor = std::make_unique<tg_sim::ReferenceMonitor>(
          h.graph,
          std::make_shared<tg_hier::CompositePolicy>(
              std::vector<std::shared_ptr<tg::RulePolicy>>{
                  std::make_shared<tg_hier::BishopRestrictionPolicy>(h.levels),
                  std::make_shared<tg_hier::ApplicationRestrictionPolicy>(
                      h.levels, tg::RightSet(tg::Right::kDelete))}));
      name = "bishop+app-restrict";
    } else {
      // The transactional write path: every round is one group-committed
      // admission transaction; vetoes record without aborting the batch.
      tg_hier::AdmissionGate::Options gate_options;
      gate_options.abort_txn_on_veto = false;
      monitor =
          std::make_unique<tg_sim::ReferenceMonitor>(h.graph, h.levels, gate_options);
      name = std::string("admission-gate(") +
             tg_hier::AdmissionModeName(monitor->admission()->mode()) + ")";
    }
    tg_util::Prng prng(42);
    size_t total_ops = 0;
    size_t total_vetoed = 0;
    size_t total_txns = 0;
    for (int round = 0; round < kRounds; ++round) {
      RoundStats stats = RunRound(*monitor, h, prng);
      total_ops += stats.ops;
      total_vetoed += stats.vetoed;
      total_txns += stats.txns_committed;
    }
    tg::ProtectionGraph final_graph = tg_analysis::SaturateDeFacto(monitor->graph());
    bool breached = tg_analysis::KnowEdgePresent(final_graph, low, high);
    size_t audit = tg_hier::AuditBishopRestriction(final_graph, h.levels).size();
    std::printf("%-22s %8zu %8zu %9.1f%% %8s %8zu\n", name.c_str(), total_ops,
                total_vetoed, 100.0 * static_cast<double>(total_vetoed) /
                                  static_cast<double>(total_ops),
                breached ? "YES" : "no", audit);
    if (mode == 1) {
      tg::GraphDiff diff = tg::DiffGraphs(h.graph, monitor->graph());
      std::printf("\nrestricted run: %zu changes vs day zero "
                  "(%zu new vertices, %zu new explicit edges)\n",
                  diff.ChangeCount(), diff.added_vertices.size(),
                  diff.added_explicit.size());
      std::printf("last vetoes:\n%s\n", monitor->RenderAuditLog(3).c_str());
    }
    if (mode == 2) {
      tg_hier::AdmissionGate* gate = monitor->admission();
      std::printf("\ngated run: %zu txn(s) committed, %zu accepted, %zu vetoed, "
                  "%zu rejected; %zu footprint repair(s), %zu rebuild(s)\n",
                  total_txns, gate->accepted_count(), gate->vetoed_count(),
                  gate->rejected_count(), gate->state_repairs(),
                  gate->state_rebuilds());
      std::printf("last decisions:\n%s", gate->RenderDecisions(3).c_str());
    }
  }
  return 0;
}

// Long-running system simulation: a monitored multi-level organization
// operating for many rounds under mixed legitimate and adversarial load.
//
// Each round, every subject performs plausible work (creating documents,
// sharing at its own level, reading down); meanwhile a standing conspiracy
// tries to move high information low.  The demo runs the same trace under
// the unrestricted engine and under the Bishop restriction, reporting
// veto rates, breach status, and the audit/diff of the final state.

#include <cstdio>

#include "src/take_grant.h"

namespace {

struct RoundStats {
  size_t ops = 0;
  size_t vetoed = 0;
};

// One round of legitimate-looking workload plus adversarial probes.
RoundStats RunRound(tg_sim::ReferenceMonitor& monitor,
                    const tg_sim::GeneratedHierarchy& h, tg_util::Prng& prng) {
  RoundStats stats;
  const tg::ProtectionGraph& g = monitor.graph();
  auto submit = [&](tg::RuleApplication rule) {
    ++stats.ops;
    if (!monitor.Submit(std::move(rule)).ok()) {
      ++stats.vetoed;
    }
  };
  // Legitimate work: each level's first subject drafts a document and
  // shares reads with a level peer.
  for (size_t level = 0; level < h.level_subjects.size(); ++level) {
    const auto& subjects = h.level_subjects[level];
    if (subjects.empty()) {
      continue;
    }
    tg::VertexId author = prng.Choose(subjects);
    auto created = monitor.Submit(
        tg::RuleApplication::Create(author, tg::VertexKind::kObject, tg::kReadWrite));
    ++stats.ops;
    if (created.ok() && subjects.size() > 1) {
      tg::VertexId peer = subjects[(prng.NextBelow(subjects.size()))];
      if (peer != author) {
        // Ad-hoc g edge (out-of-band administrative action), then grant.
        (void)monitor.engine().mutable_graph().AddExplicit(author, peer, tg::kGrant);
        submit(tg::RuleApplication::Grant(author, peer, created->created, tg::kRead));
      }
    }
  }
  // Adversarial probes: random applicable de jure rules, preferring ones
  // that move r/w around.
  std::vector<tg::RuleApplication> moves = tg::EnumerateDeJure(g);
  prng.Shuffle(moves);
  size_t probes = std::min<size_t>(moves.size(), 5);
  for (size_t i = 0; i < probes; ++i) {
    submit(moves[i]);
  }
  return stats;
}

}  // namespace

int main() {
  constexpr int kRounds = 25;
  tg_util::Prng seed_prng(20260707);
  tg_sim::RandomHierarchyOptions options;
  options.levels = 3;
  options.subjects_per_level = 3;
  options.objects_per_level = 2;
  options.planted_channels = 2;  // the org has pre-existing cross-level tg links
  tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, seed_prng);
  tg::VertexId low = h.level_subjects[0][0];
  tg::VertexId high = h.level_subjects[2][0];

  std::printf("system: %s, 3 levels, 2 planted cross-level channels\n",
              h.graph.Summary().c_str());
  std::printf("standing conspiracy goal: %s learns %s\n\n",
              h.graph.NameOf(low).c_str(), h.graph.NameOf(high).c_str());

  std::printf("%-22s %8s %8s %10s %8s %8s\n", "policy", "ops", "vetoed", "veto-rate",
              "breach", "audit");
  for (int mode = 0; mode < 2; ++mode) {
    std::shared_ptr<tg::RulePolicy> policy;
    if (mode == 0) {
      policy = std::make_shared<tg::AllowAllPolicy>();
    } else {
      // The production stack: Bishop restriction plus a blanket ban on
      // take/grant moving the delete right (a site-specific rule).
      policy = std::make_shared<tg_hier::CompositePolicy>(
          std::vector<std::shared_ptr<tg::RulePolicy>>{
              std::make_shared<tg_hier::BishopRestrictionPolicy>(h.levels),
              std::make_shared<tg_hier::ApplicationRestrictionPolicy>(
                  h.levels, tg::RightSet(tg::Right::kDelete))});
    }
    tg_sim::ReferenceMonitor monitor(h.graph, policy);
    tg_util::Prng prng(42);
    size_t total_ops = 0;
    size_t total_vetoed = 0;
    for (int round = 0; round < kRounds; ++round) {
      RoundStats stats = RunRound(monitor, h, prng);
      total_ops += stats.ops;
      total_vetoed += stats.vetoed;
    }
    tg::ProtectionGraph final_graph = tg_analysis::SaturateDeFacto(monitor.graph());
    bool breached = tg_analysis::KnowEdgePresent(final_graph, low, high);
    size_t audit = tg_hier::AuditBishopRestriction(final_graph, h.levels).size();
    std::printf("%-22s %8zu %8zu %9.1f%% %8s %8zu\n", policy->Name().c_str(), total_ops,
                total_vetoed, 100.0 * static_cast<double>(total_vetoed) /
                                  static_cast<double>(total_ops),
                breached ? "YES" : "no", audit);
    if (mode == 1) {
      tg::GraphDiff diff = tg::DiffGraphs(h.graph, monitor.graph());
      std::printf("\nrestricted run: %zu changes vs day zero "
                  "(%zu new vertices, %zu new explicit edges)\n",
                  diff.ChangeCount(), diff.added_vertices.size(),
                  diff.added_explicit.size());
      std::printf("last vetoes:\n%s", monitor.RenderAuditLog(3).c_str());
    }
  }
  return 0;
}

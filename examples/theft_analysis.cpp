// Theft analysis: sharing vs stealing.
//
// Builds a small organization and contrasts can_share (owners may
// cooperate) with can_steal (no initial owner of the coveted right ever
// grants).  Shows a theft witness and a case where a right is shareable
// but theft-proof.

#include <cstdio>

#include "src/take_grant.h"

int main() {
  using tg::Right;

  tg::ProtectionGraph g;
  tg::VertexId mallory = g.AddSubject("mallory");   // the thief
  tg::VertexId clerk = g.AddSubject("clerk");       // careless: t-exposed
  tg::VertexId curator = g.AddSubject("curator");   // careful: grant-only
  tg::VertexId ledger = g.AddObject("ledger");
  tg::VertexId vault = g.AddObject("vault");

  // mallory holds take over the clerk; the clerk reads the ledger.
  (void)g.AddExplicit(mallory, clerk, tg::kTake);
  (void)g.AddExplicit(clerk, ledger, tg::kRead);
  // The curator reads the vault and *can* grant (an outgoing g edge), but
  // nobody holds take rights over the curator.
  (void)g.AddExplicit(curator, mallory, tg::kGrant);
  (void)g.AddExplicit(curator, vault, tg::kRead);

  std::printf("graph: %s\n\n", g.Summary().c_str());

  struct Target {
    const char* name;
    tg::VertexId object;
  } targets[] = {{"ledger", ledger}, {"vault", vault}};

  for (const Target& t : targets) {
    bool share = tg_analysis::CanShare(g, Right::kRead, mallory, t.object);
    bool steal = tg_analysis::CanSteal(g, Right::kRead, mallory, t.object);
    std::printf("%s: can_share(r)=%s  can_steal(r)=%s\n", t.name, share ? "yes" : "no",
                steal ? "yes" : "no");
    if (steal) {
      auto witness = tg_analysis::BuildCanStealWitness(g, Right::kRead, mallory, t.object);
      if (witness.has_value()) {
        std::printf("theft witness (initial owners never grant):\n%s",
                    witness->ToString(g).c_str());
      }
    } else if (share) {
      std::printf("  -> only obtainable with an owner's cooperation: the curator\n"
                  "     must grant it; no take route reaches an owner.\n");
    }
    std::printf("\n");
  }

  // Quantify on random graphs: how much rarer is theft than sharing?
  tg_util::Prng prng(99);
  tg_sim::RandomGraphOptions options;
  options.subjects = 4;
  options.objects = 2;
  options.edge_factor = 1.2;
  int shares = 0;
  int thefts = 0;
  int pairs = 0;
  tg_analysis::OracleOptions oracle;
  oracle.max_creates = 1;
  oracle.max_states = 15000;
  for (int trial = 0; trial < 8; ++trial) {
    tg::ProtectionGraph r = tg_sim::RandomGraph(options, prng);
    for (tg::VertexId x = 0; x < r.VertexCount(); ++x) {
      for (tg::VertexId y = 0; y < r.VertexCount(); ++y) {
        if (x == y) {
          continue;
        }
        ++pairs;
        shares += tg_analysis::CanShare(r, Right::kRead, x, y) ? 1 : 0;
        thefts += tg_analysis::CanSteal(r, Right::kRead, x, y, oracle) ? 1 : 0;
      }
    }
  }
  std::printf("random sweep: %d pairs, %d shareable, %d stealable\n", pairs, shares, thefts);
  return 0;
}

// tgtop: a curses-free live dashboard for the policy server.
//
//   tgtop (--socket PATH | --port N [--host IP]) [--interval SEC]
//         [--iterations N] [--once]
//
// Polls the server's `stats` verb (which embeds the full metrics-registry
// JSON, including the rolling-window instruments) and redraws one screen
// per interval: epoch / epoch-lag / queue depth up top, then a per-verb
// table of rolling 10 s QPS and P50/P95/P99 latency.  No curses — the
// screen is repainted with plain ANSI clear-home, so it works over any
// terminal (and `--once` prints a single snapshot for scripts and smoke
// tests).
//
//   $ tgtop --port 7411
//   tgtop — policy server @ 127.0.0.1:7411   epoch 17 (lag 0)   conns 4
//   requests 128934 total, 4312.5/s (10s)   queue 12   bytes in 12.1 MiB ...
//   verb              qps(10s)       p50       p95       p99      total
//   can_know            3911.2      16 us     33 us     66 us     101202
//   ...

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/server/client.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "tgtop: %s\n", message.c_str());
  return 1;
}

// The verbs the server exports per-verb telemetry for (the "other" bucket
// collects everything else).  Mirrors the server's whitelist.
constexpr const char* kVerbs[] = {
    "ping",     "epoch",        "can_know", "can_knowf", "can_share", "knowable",
    "levels",   "check_secure", "channels", "explain_channel",
    "stats",    "metrics",      "slowlog",  "admit",     "txn",       "other"};

// Finds `"key":` in our flat single-line JSON and parses the number after
// it (handles the nested "metrics" object keys too — key lookup is by the
// full quoted string, which is unique in the response).  Returns fallback
// when absent.
double FindNumber(const std::string& json, const std::string& key, double fallback = 0.0) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) {
    return fallback;
  }
  return std::atof(json.c_str() + at + needle.size());
}

std::string FormatNs(double ns) {
  char buf[32];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1f s", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  }
  return buf;
}

std::string FormatBytes(double b) {
  char buf[32];
  if (b >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f GiB", b / (1024.0 * 1024.0 * 1024.0));
  } else if (b >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", b / (1024.0 * 1024.0));
  } else if (b >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", b);
  }
  return buf;
}

void RenderScreen(const std::string& stats, const std::string& where, bool clear) {
  if (clear) {
    std::fputs("\x1b[2J\x1b[H", stdout);
  }
  const double epoch = FindNumber(stats, "epoch");
  const double published = FindNumber(stats, "published_epoch");
  const double lag = FindNumber(stats, "server.epoch_lag", epoch - published);
  std::printf("tgtop — policy server @ %s   epoch %.0f (lag %.0f)   conns %.0f   workers %.0f\n",
              where.c_str(), epoch, lag, FindNumber(stats, "connections"),
              FindNumber(stats, "worker_threads"));
  std::printf(
      "requests %.0f total, %.1f/s (10s)   queue %.0f   bytes in %s out %s   pauses %.0f\n",
      FindNumber(stats, "requests"), FindNumber(stats, "server.requests.w10s_rate"),
      FindNumber(stats, "server.queue_depth"),
      FormatBytes(FindNumber(stats, "server.bytes_in")).c_str(),
      FormatBytes(FindNumber(stats, "server.bytes_out")).c_str(),
      FindNumber(stats, "server.backpressure_pauses"));
  std::printf("%-17s %10s %9s %9s %9s %10s\n", "verb", "qps(10s)", "p50", "p95", "p99",
              "total");
  for (const char* verb : kVerbs) {
    const std::string base = std::string("server.verb_ns{verb=") + verb + "}";
    const double total = FindNumber(stats, base + ".count");
    const double qps = FindNumber(stats, base + ".w10s_rate");
    if (total == 0.0 && qps == 0.0) {
      continue;  // never seen; keep the table to live verbs
    }
    std::printf("%-17s %10.1f %9s %9s %9s %10.0f\n", verb, qps,
                FormatNs(FindNumber(stats, base + ".w10s_p50")).c_str(),
                FormatNs(FindNumber(stats, base + ".w10s_p95")).c_str(),
                FormatNs(FindNumber(stats, base + ".w10s_p99")).c_str(), total);
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string host = "127.0.0.1";
  int port = -1;
  double interval_sec = 2.0;
  long iterations = 0;  // 0 = until interrupted
  bool once = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tgtop: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next("--socket");
    } else if (arg == "--host") {
      host = next("--host");
    } else if (arg == "--port") {
      port = std::atoi(next("--port"));
    } else if (arg == "--interval") {
      interval_sec = std::atof(next("--interval"));
    } else if (arg == "--iterations") {
      iterations = std::atol(next("--iterations"));
    } else if (arg == "--once") {
      once = true;
    } else {
      return Fail("unknown flag '" + arg + "'");
    }
  }
  if (socket_path.empty() && port < 0) {
    return Fail("need --socket PATH or --port N");
  }
  if (interval_sec <= 0.0) {
    interval_sec = 2.0;
  }
  if (once) {
    iterations = 1;
  }

  tg_server::PolicyClient client;
  tg_util::Status status = socket_path.empty() ? client.ConnectTcp(host, port)
                                               : client.ConnectUnix(socket_path);
  if (!status.ok()) {
    return Fail(status.ToString());
  }
  const std::string where =
      socket_path.empty() ? host + ":" + std::to_string(port) : socket_path;

  for (long n = 0; iterations == 0 || n < iterations; ++n) {
    if (n != 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(interval_sec * 1000.0)));
    }
    auto stats = client.Call("stats");
    if (!stats.ok()) {
      return Fail(stats.status().ToString());
    }
    if (tg_server::ExtractJsonField(*stats, "ok") != "true") {
      return Fail("stats error: " + *stats);
    }
    RenderScreen(*stats, where, !once);
  }
  return 0;
}

// policy_client: command-line client for the policy server.
//
//   policy_client (--socket PATH | --port N [--host IP]) [REQUEST...]
//
// With REQUEST words, sends them as one request line and prints the JSON
// response (exit 0 on "ok":true, 2 on an error response).  Without, reads
// request lines from stdin — an interactive session against a live daemon:
//
//   $ policy_client --socket /tmp/tg.sock
//   > can_know eng_lead ceo_mail
//   {"ok":true,"verb":"can_know",...,"verdict":false,"epoch":0}
//   > admit grant ceo eng_lead ceo_mail r
//   {"ok":true,"verb":"admit","decision":{...},"epoch":1}
//   > quit

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "src/server/client.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "policy_client: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string host = "127.0.0.1";
  int port = -1;
  std::string request;

  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "policy_client: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next("--socket");
    } else if (arg == "--host") {
      host = next("--host");
    } else if (arg == "--port") {
      port = std::atoi(next("--port"));
    } else {
      break;  // first request word
    }
  }
  for (; i < argc; ++i) {
    if (!request.empty()) {
      request += ' ';
    }
    request += argv[i];
  }
  if (socket_path.empty() && port < 0) {
    return Fail("need --socket PATH or --port N");
  }

  tg_server::PolicyClient client;
  tg_util::Status status = socket_path.empty() ? client.ConnectTcp(host, port)
                                               : client.ConnectUnix(socket_path);
  if (!status.ok()) {
    return Fail(status.ToString());
  }

  if (!request.empty()) {
    auto response = client.Call(request);
    if (!response.ok()) {
      return Fail(response.status().ToString());
    }
    std::printf("%s\n", response->c_str());
    return tg_server::ExtractJsonField(*response, "ok") == "true" ? 0 : 2;
  }

  // Interactive: one request line per prompt, until EOF / quit.
  const bool tty = isatty(fileno(stdin)) != 0;
  std::string line;
  while (true) {
    if (tty) {
      std::printf("> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) {
      break;
    }
    if (line == "quit" || line == "exit") {
      break;
    }
    if (line.empty()) {
      continue;
    }
    auto response = client.Call(line);
    if (!response.ok()) {
      return Fail(response.status().ToString());
    }
    std::printf("%s\n", response->c_str());
  }
  return 0;
}

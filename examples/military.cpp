// Military classification demo (Figure 4.2).
//
// Builds the lattice of (authority, category) levels, shows that levels in
// different categories are incomparable, and demonstrates the paper's
// headline property: even a conspiracy between a top-secret insider and an
// unclassified outsider cannot move information down the lattice when the
// Bishop restriction mediates the de jure rules.

#include <cstdio>

#include "src/take_grant.h"

int main() {
  tg_hier::MilitaryOptions options;
  options.authority_levels = 4;  // unclassified(0) .. top secret(3)
  options.categories = 2;        // categories A and B
  options.subjects_per_node = 1;
  tg_hier::ClassifiedSystem system = tg_hier::MilitaryClassification(options);

  std::printf("military lattice: %s\n", system.graph.Summary().c_str());
  std::printf("levels (%zu):", system.levels.LevelCount());
  for (tg_hier::LevelId l = 0; l < system.levels.LevelCount(); ++l) {
    std::printf(" %s", system.levels.LevelName(l).c_str());
  }
  std::printf("\n\n");

  // Incomparability: A1 vs B1.
  tg::VertexId a1 = system.graph.FindVertex("A1s0");
  tg::VertexId b1 = system.graph.FindVertex("B1s0");
  std::printf("A1 comparable to B1? %s (different categories)\n",
              system.levels.Comparable(system.levels.LevelOf(a1), system.levels.LevelOf(b1))
                  ? "yes"
                  : "no");

  // The baseline system is secure.
  tg_hier::SecurityReport report = tg_hier::CheckSecure(system.graph, system.levels);
  std::printf("baseline secure: %s\n\n", report.secure ? "yes" : "no");

  // Conspiracy: the top-secret category-A subject and the unclassified
  // subject conspire to leak the A3 document down to unclassified.
  tg::VertexId insider = system.graph.FindVertex("A3s0");
  tg::VertexId outsider = system.graph.FindVertex("Us0");
  tg::VertexId crown_jewels = system.graph.FindVertex("A3doc");

  // Give the conspiracy a channel Wu's model would have allowed: a direct
  // take edge between the levels.
  tg::ProtectionGraph rigged = system.graph;
  (void)rigged.AddExplicit(outsider, insider, tg::kTake);
  std::printf("planted channel: %s -t-> %s\n", rigged.NameOf(outsider).c_str(),
              rigged.NameOf(insider).c_str());
  std::printf("unrestricted can_share(r, outsider, A3doc): %s\n",
              tg_analysis::CanShare(rigged, tg::Right::kRead, outsider, crown_jewels)
                  ? "true  (Wu-style hierarchy falls)"
                  : "false");

  // Run the conspiracy with and without the Bishop restriction.
  for (bool restricted : {false, true}) {
    std::shared_ptr<tg::RulePolicy> policy;
    if (restricted) {
      policy = std::make_shared<tg_hier::BishopRestrictionPolicy>(system.levels);
    } else {
      policy = std::make_shared<tg::AllowAllPolicy>();
    }
    tg_sim::ReferenceMonitor monitor(rigged, policy);
    tg_sim::AttackOptions attack;
    attack.strategy = tg_sim::AdversaryStrategy::kGreedy;
    attack.max_steps = 200;
    tg_util::Prng prng(7);
    tg_sim::AttackOutcome outcome =
        tg_sim::RunConspiracy(monitor, system.levels, outsider, crown_jewels, attack, prng);
    std::printf("\n[%s] breached=%s steps=%zu vetoed=%zu\n",
                restricted ? "bishop-restriction" : "unrestricted",
                outcome.breached ? "YES" : "no", outcome.steps_applied, outcome.steps_vetoed);
    if (restricted) {
      std::printf("last audit entries:\n%s", monitor.RenderAuditLog(4).c_str());
    }
  }
  return 0;
}

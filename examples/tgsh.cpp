// tgsh: an interactive shell for exploring take-grant protection graphs.
//
//   $ ./tgsh                 # empty graph
//   $ ./tgsh graph.tgg       # start from a file
//   $ echo "subject a
//   object b
//   edge a b r
//   know a b" | ./tgsh -     # scripted via stdin
//
// Commands (one per line; '#' starts a comment):
//   subject NAME                    add a subject
//   object NAME                     add an object
//   edge SRC DST RIGHTS             add an explicit edge (rights like "rw")
//   implicit SRC DST RIGHTS         add an implicit edge
//   take X Y Z RIGHTS               X takes (RIGHTS to Z) from Y
//   grant X Y Z RIGHTS              X grants (RIGHTS to Z) to Y
//   create X subject|object RIGHTS [NAME]
//   remove X Y RIGHTS
//   post X Y Z / pass X Y Z / spy X Y Z / find X Y Z
//   share RIGHT X Y                 can_share?   (with witness)
//   steal RIGHT X Y                 can_steal?   (with witness)
//   know X Y                        can_know?    knowf X Y for de facto only
//   islands                         print the island decomposition
//   levels                          print computed rwtg-levels
//   channels [MAX] [F.lvl]          typed cross-level channels (Theorem 5.2)
//                                   against F.lvl (or computed rwtg-levels):
//                                   word type, pivot edge, verified witness
//   saturate                        apply de facto rules to fixpoint
//   show                            print the graph (.tgg form)
//   dot FILE                        export Graphviz
//   save FILE / load FILE           .tgg I/O
//   stats [reset]                   engine metrics (counters/latencies); reset zeroes them
//   trace [N]                       last N trace spans (default 20)
//   trace export FILE               write Perfetto/Chrome trace_event JSON
//   profile [reset]                 per-span-kind latency percentiles (p50/p95/p99)
//   explain know|knowf|share ...    run a predicate and print its provenance record
//   explain channel U V             type the U->V channel: word, pivot, replayed path
//   journal [N]                     last N mutation-journal records (default 20)
//   admit on [edge|conn] [F.lvl]    enforce the Theorem-5.5 restriction live:
//                                   levels from F.lvl (or computed rwtg-levels)
//                                   gate every submitted rule in O(1)
//   admit off                       drop the gate (keeps the admitted graph)
//   admit status / admit log [N]    gate counters / recent decisions with provenance
//   txn begin | commit | abort      group-commit rules atomically through the gate
//   txn status                      open transaction id and staged count
//   help / quit

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/analysis/provenance.h"
#include "src/take_grant.h"
#include "src/util/metrics.h"
#include "src/util/strings.h"
#include "src/util/trace.h"
#include "src/util/trace_export.h"

namespace {

struct Shell {
  tg::ProtectionGraph graph;
  // Memoizes know queries between mutations; keyed on graph.epoch() and
  // repaired from the mutation journal, so rule applications invalidate
  // only the entries they can affect.  Must be explicitly invalidated when
  // `graph` is *replaced* (load, saturate), since a fresh graph restarts
  // its epoch counter.
  tg_analysis::AnalysisCache cache;
  // Live enforcement: when set, every rule routes through the gate (Admit
  // outside a transaction, Submit inside one) and `graph` mirrors the
  // gate's *published* state — mid-transaction, queries deliberately see
  // the pre-transaction epoch, exactly like a pinned reader.
  std::unique_ptr<tg_hier::AdmissionGate> gate;
  bool done = false;

  tg::VertexId Resolve(std::string_view name) {
    tg::VertexId v = graph.FindVertex(name);
    if (v == tg::kInvalidVertex) {
      std::printf("error: unknown vertex '%.*s'\n", static_cast<int>(name.size()),
                  name.data());
    }
    return v;
  }

  std::optional<tg::RightSet> ResolveRights(std::string_view text) {
    auto rights = tg::RightSet::Parse(text);
    if (!rights.has_value() || rights->empty()) {
      std::printf("error: bad right set '%.*s'\n", static_cast<int>(text.size()), text.data());
      return std::nullopt;
    }
    return rights;
  }

  std::optional<tg::Right> ResolveRight(std::string_view text) {
    if (text.size() == 1) {
      if (auto right = tg::RightFromChar(text[0])) {
        return right;
      }
    }
    std::printf("error: bad right '%.*s' (one of r w t g e a c d)\n",
                static_cast<int>(text.size()), text.data());
    return std::nullopt;
  }

  void ApplyAndReport(tg::RuleApplication rule) {
    if (gate != nullptr) {
      std::string rendered = rule.ToString(gate->graph());
      tg_hier::AdmissionDecision d =
          gate->in_txn() ? gate->Submit(std::move(rule)) : gate->Admit(std::move(rule));
      switch (d.outcome) {
        case tg_hier::AdmissionOutcome::kAccepted:
          if (d.txn != 0) {
            std::printf("staged (txn %llu): %s\n",
                        static_cast<unsigned long long>(d.txn),
                        d.applied.ToString(gate->graph()).c_str());
          } else {
            std::printf("admitted: %s\n", d.applied.ToString(gate->graph()).c_str());
          }
          break;
        case tg_hier::AdmissionOutcome::kVetoed:
          std::printf("vetoed: %s -- %s\n", rendered.c_str(), d.reason.c_str());
          break;
        case tg_hier::AdmissionOutcome::kRejected:
          std::printf("rejected: %s -- %s\n", rendered.c_str(), d.reason.c_str());
          break;
      }
      if (d.txn != 0 && !d.accepted() && !gate->in_txn()) {
        std::printf("(transaction %llu aborted and rolled back)\n",
                    static_cast<unsigned long long>(d.txn));
      }
      graph = gate->graph();
      return;
    }
    std::string rendered = rule.ToString(graph);
    tg_util::Status status = ApplyRule(graph, rule);
    if (status.ok()) {
      std::printf("ok: %s\n", rule.ToString(graph).c_str());
    } else {
      std::printf("refused: %s -- %s\n", rendered.c_str(), status.ToString().c_str());
    }
  }

  void Execute(const std::string& line);
};

void PrintHelp() {
  std::printf(
      "graph:    subject N | object N | edge S D R | implicit S D R | show | save F | load F\n"
      "rules:    take X Y Z R | grant X Y Z R | create X subject|object R [N] |\n"
      "          remove X Y R | post/pass/spy/find X Y Z | saturate\n"
      "queries:  share R X Y | steal R X Y | know X Y | knowf X Y | islands | levels |\n"
      "          channels [MAX] [FILE.lvl]\n"
      "output:   dot FILE\n"
      "observe:  stats [reset] | trace [N] | trace export FILE | profile [reset] |\n"
      "          explain know X Y | explain knowf X Y | explain share R X Y |\n"
      "          explain channel U V | journal [N]\n"
      "enforce:  admit on [edge|conn] [LEVELS.lvl] | admit off | admit status |\n"
      "          admit log [N] |\n"
      "          txn begin | txn commit | txn abort | txn status\n"
      "misc:     help | quit\n");
}

void Shell::Execute(const std::string& raw) {
  size_t hash = raw.find('#');
  std::string line(tg_util::StripWhitespace(hash == std::string::npos ? std::string_view(raw)
                                                                      : std::string_view(raw).substr(0, hash)));
  if (line.empty()) {
    return;
  }
  std::vector<std::string_view> tok = tg_util::SplitWhitespace(line);
  const std::string_view cmd = tok[0];
  auto need = [&](size_t n) {
    if (tok.size() != n + 1) {
      std::printf("error: '%.*s' expects %zu argument(s); see help\n",
                  static_cast<int>(cmd.size()), cmd.data(), n);
      return false;
    }
    return true;
  };

  // While the gate is live, out-of-band structural edits would bypass the
  // restriction (and conflict with any open transaction); rules only.
  auto gate_blocks = [&] {
    if (gate != nullptr) {
      std::printf("error: admission gate active; use rules, or 'admit off' first\n");
      return true;
    }
    return false;
  };

  if (cmd == "quit" || cmd == "exit") {
    done = true;
  } else if (cmd == "help") {
    PrintHelp();
  } else if (cmd == "admit") {
    if (tok.size() >= 2 && tok[1] == "on") {
      if (gate != nullptr) {
        std::printf("error: gate already active ('admit status')\n");
        return;
      }
      // admit on [edge|conn] [FILE.lvl] — declared levels from a .lvl file,
      // or self-consistent computed rwtg-levels when no file is given.
      // (Computed levels can never produce a veto — they are derived from
      // the graph's own reachability — so policy demos want a file.)
      tg_hier::AdmissionGate::Options options;
      size_t next = 2;
      if (tok.size() > next && (tok[next] == "edge" || tok[next] == "conn")) {
        if (tok[next] == "edge") {
          options.mode = tg_hier::AdmissionMode::kEdgeLevel;
        }
        ++next;
      }
      tg_hier::LevelAssignment levels(0, 0);
      if (tok.size() > next) {
        auto loaded = tg_hier::LoadLevelsFile(std::string(tok[next]), graph);
        if (!loaded.ok()) {
          std::printf("error: %s\n", loaded.status().ToString().c_str());
          return;
        }
        levels = std::move(loaded).value();
        ++next;
      } else {
        levels = tg_hier::ComputeRwtgLevels(graph, cache);
        tg_hier::AssignObjectLevels(graph, levels);
      }
      if (tok.size() > next) {
        std::printf("error: admit on [edge|conn] [LEVELS.lvl]\n");
        return;
      }
      gate = tg_hier::AdmissionGate::Create(graph, levels, options);
      std::printf("ok: admission gate on (%s mode%s, %zu level(s))\n",
                  tg_hier::AdmissionModeName(gate->mode()),
                  gate->mode_fell_back() ? ", fell back from conn" : "",
                  static_cast<size_t>(levels.LevelCount()));
    } else if (tok.size() == 2 && tok[1] == "off") {
      if (gate == nullptr) {
        std::printf("error: gate not active\n");
        return;
      }
      if (gate->in_txn()) {
        tg_hier::TxnResult r = gate->Abort("admit off");
        std::printf("(open transaction %llu aborted)\n",
                    static_cast<unsigned long long>(r.txn));
      }
      graph = gate->graph();
      gate.reset();
      std::printf("ok: admission gate off (admitted graph kept)\n");
    } else if (tok.size() == 2 && tok[1] == "status") {
      if (gate == nullptr) {
        std::printf("gate: off\n");
        return;
      }
      std::printf("gate: on, %s mode%s\n", tg_hier::AdmissionModeName(gate->mode()),
                  gate->mode_fell_back() ? " (fell back from conn)" : "");
      std::printf("decisions: %llu accepted, %llu vetoed, %llu rejected\n",
                  static_cast<unsigned long long>(gate->accepted_count()),
                  static_cast<unsigned long long>(gate->vetoed_count()),
                  static_cast<unsigned long long>(gate->rejected_count()));
      std::printf("txns: %llu committed, %llu aborted\n",
                  static_cast<unsigned long long>(gate->txns_committed()),
                  static_cast<unsigned long long>(gate->txns_aborted()));
      std::printf("state: %llu footprint repair(s), %llu full rebuild(s)\n",
                  static_cast<unsigned long long>(gate->state_repairs()),
                  static_cast<unsigned long long>(gate->state_rebuilds()));
      if (gate->in_txn()) {
        std::printf("txn %llu open: %zu rule(s) staged\n",
                    static_cast<unsigned long long>(gate->txn_id()), gate->staged_count());
      }
    } else if ((tok.size() == 2 || tok.size() == 3) && tok[1] == "log") {
      if (gate == nullptr) {
        std::printf("error: gate not active\n");
        return;
      }
      size_t limit = 10;
      if (tok.size() == 3) {
        limit = static_cast<size_t>(std::atol(std::string(tok[2]).c_str()));
      }
      std::string text = gate->RenderDecisions(limit);
      std::printf("%s", text.empty() ? "(no decisions yet)\n" : text.c_str());
    } else {
      std::printf("error: admit on [edge|conn] [LEVELS.lvl] | admit off | admit status | admit log [N]\n");
    }
  } else if (cmd == "txn") {
    if (gate == nullptr) {
      std::printf("error: 'txn' needs the admission gate ('admit on')\n");
      return;
    }
    if (!need(1)) {
      return;
    }
    if (tok[1] == "begin") {
      uint64_t id = gate->Begin();
      std::printf("ok: txn %llu open\n", static_cast<unsigned long long>(id));
    } else if (tok[1] == "commit") {
      auto result = gate->Commit();
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
        return;
      }
      if (result->committed) {
        std::printf("ok: txn %llu committed %zu rule(s) (epoch %llu -> %llu)\n",
                    static_cast<unsigned long long>(result->txn), result->applied,
                    static_cast<unsigned long long>(result->first_epoch),
                    static_cast<unsigned long long>(result->last_epoch));
      } else {
        std::printf("aborted: txn %llu -- %s\n",
                    static_cast<unsigned long long>(result->txn), result->reason.c_str());
      }
      graph = gate->graph();
    } else if (tok[1] == "abort") {
      size_t staged = gate->staged_count();
      tg_hier::TxnResult r = gate->Abort();
      std::printf("ok: txn %llu aborted (%zu staged rule(s) rolled back)\n",
                  static_cast<unsigned long long>(r.txn), staged);
    } else if (tok[1] == "status") {
      if (gate->in_txn()) {
        std::printf("txn %llu open: %zu rule(s) staged\n",
                    static_cast<unsigned long long>(gate->txn_id()), gate->staged_count());
      } else {
        std::printf("no open transaction\n");
      }
    } else {
      std::printf("error: txn begin|commit|abort|status\n");
    }
  } else if (cmd == "subject" || cmd == "object") {
    if (!need(1) || gate_blocks()) {
      return;
    }
    tg::VertexId v = graph.AddVertex(
        cmd == "subject" ? tg::VertexKind::kSubject : tg::VertexKind::kObject, tok[1]);
    std::printf("ok: %s %s\n", cmd == "subject" ? "subject" : "object",
                graph.NameOf(v).c_str());
  } else if (cmd == "edge" || cmd == "implicit") {
    if (!need(3) || gate_blocks()) {
      return;
    }
    tg::VertexId src = Resolve(tok[1]);
    tg::VertexId dst = Resolve(tok[2]);
    auto rights = ResolveRights(tok[3]);
    if (src == tg::kInvalidVertex || dst == tg::kInvalidVertex || !rights) {
      return;
    }
    tg_util::Status s = cmd == "edge" ? graph.AddExplicit(src, dst, *rights)
                                      : graph.AddImplicit(src, dst, *rights);
    std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
  } else if (cmd == "take" || cmd == "grant") {
    if (!need(4)) {
      return;
    }
    tg::VertexId x = Resolve(tok[1]);
    tg::VertexId y = Resolve(tok[2]);
    tg::VertexId z = Resolve(tok[3]);
    auto rights = ResolveRights(tok[4]);
    if (x == tg::kInvalidVertex || y == tg::kInvalidVertex || z == tg::kInvalidVertex ||
        !rights) {
      return;
    }
    ApplyAndReport(cmd == "take" ? tg::RuleApplication::Take(x, y, z, *rights)
                                 : tg::RuleApplication::Grant(x, y, z, *rights));
  } else if (cmd == "create") {
    if (tok.size() != 4 && tok.size() != 5) {
      std::printf("error: create X subject|object RIGHTS [NAME]\n");
      return;
    }
    tg::VertexId x = Resolve(tok[1]);
    if (x == tg::kInvalidVertex) {
      return;
    }
    if (tok[2] != "subject" && tok[2] != "object") {
      std::printf("error: create kind must be subject or object\n");
      return;
    }
    auto rights = tg::RightSet::Parse(tok[3]);
    if (!rights.has_value()) {
      std::printf("error: bad right set\n");
      return;
    }
    ApplyAndReport(tg::RuleApplication::Create(
        x, tok[2] == "subject" ? tg::VertexKind::kSubject : tg::VertexKind::kObject, *rights,
        tok.size() == 5 ? std::string(tok[4]) : ""));
  } else if (cmd == "remove") {
    if (!need(3)) {
      return;
    }
    tg::VertexId x = Resolve(tok[1]);
    tg::VertexId y = Resolve(tok[2]);
    auto rights = ResolveRights(tok[3]);
    if (x == tg::kInvalidVertex || y == tg::kInvalidVertex || !rights) {
      return;
    }
    ApplyAndReport(tg::RuleApplication::Remove(x, y, *rights));
  } else if (cmd == "post" || cmd == "pass" || cmd == "spy" || cmd == "find") {
    if (!need(3)) {
      return;
    }
    tg::VertexId x = Resolve(tok[1]);
    tg::VertexId y = Resolve(tok[2]);
    tg::VertexId z = Resolve(tok[3]);
    if (x == tg::kInvalidVertex || y == tg::kInvalidVertex || z == tg::kInvalidVertex) {
      return;
    }
    tg::RuleApplication rule = cmd == "post"   ? tg::RuleApplication::Post(x, y, z)
                               : cmd == "pass" ? tg::RuleApplication::Pass(x, y, z)
                               : cmd == "spy"  ? tg::RuleApplication::Spy(x, y, z)
                                               : tg::RuleApplication::Find(x, y, z);
    ApplyAndReport(rule);
  } else if (cmd == "share" || cmd == "steal") {
    if (!need(3)) {
      return;
    }
    auto right = ResolveRight(tok[1]);
    tg::VertexId x = Resolve(tok[2]);
    tg::VertexId y = Resolve(tok[3]);
    if (!right || x == tg::kInvalidVertex || y == tg::kInvalidVertex) {
      return;
    }
    if (cmd == "share") {
      bool yes = tg_analysis::CanShare(graph, *right, x, y);
      std::printf("can_share(%c, %s, %s) = %s\n", tg::RightChar(*right),
                  graph.NameOf(x).c_str(), graph.NameOf(y).c_str(), yes ? "true" : "false");
      if (yes) {
        if (auto w = tg_analysis::BuildCanShareWitness(graph, *right, x, y)) {
          std::printf("%s", w->ToString(graph).c_str());
        }
      }
    } else {
      bool yes = tg_analysis::CanSteal(graph, *right, x, y);
      std::printf("can_steal(%c, %s, %s) = %s\n", tg::RightChar(*right),
                  graph.NameOf(x).c_str(), graph.NameOf(y).c_str(), yes ? "true" : "false");
      if (yes) {
        if (auto w = tg_analysis::BuildCanStealWitness(graph, *right, x, y)) {
          std::printf("%s", w->ToString(graph).c_str());
        }
      }
    }
  } else if (cmd == "know" || cmd == "knowf") {
    if (!need(2)) {
      return;
    }
    tg::VertexId x = Resolve(tok[1]);
    tg::VertexId y = Resolve(tok[2]);
    if (x == tg::kInvalidVertex || y == tg::kInvalidVertex) {
      return;
    }
    if (cmd == "know") {
      bool yes = cache.CanKnow(graph, x, y);
      std::printf("can_know(%s, %s) = %s\n", graph.NameOf(x).c_str(),
                  graph.NameOf(y).c_str(), yes ? "true" : "false");
      if (yes && x != y) {
        if (auto w = tg_analysis::BuildCanKnowWitness(graph, x, y); w && !w->empty()) {
          std::printf("%s", w->ToString(graph).c_str());
        }
      }
    } else {
      bool yes = tg_analysis::CanKnowF(graph, x, y);
      std::printf("can_know_f(%s, %s) = %s\n", graph.NameOf(x).c_str(),
                  graph.NameOf(y).c_str(), yes ? "true" : "false");
      if (yes && x != y) {
        if (auto path = tg_analysis::FindAdmissibleRwPath(graph, x, y)) {
          std::printf("path: %s\n", path->ToString(graph).c_str());
        }
      }
    }
  } else if (cmd == "islands") {
    tg_analysis::Islands islands(graph);
    for (size_t i = 0; i < islands.Count(); ++i) {
      std::printf("I%zu:", i + 1);
      for (tg::VertexId v : islands.Members(static_cast<uint32_t>(i))) {
        std::printf(" %s", graph.NameOf(v).c_str());
      }
      std::printf("\n");
    }
    if (islands.Count() == 0) {
      std::printf("(no subjects)\n");
    }
  } else if (cmd == "levels") {
    // Through the cache: repeated `levels` between mutations reuse the
    // memoized snapshot and all-pairs BOC matrix.
    tg_hier::LevelAssignment levels = tg_hier::ComputeRwtgLevels(graph, cache);
    tg_hier::AssignObjectLevels(graph, levels);
    auto members = levels.Members();
    for (size_t l = 0; l < members.size(); ++l) {
      std::printf("%s:", levels.LevelName(static_cast<tg_hier::LevelId>(l)).c_str());
      for (tg::VertexId v : members[l]) {
        std::printf(" %s", graph.NameOf(v).c_str());
      }
      std::printf("\n");
    }
  } else if (cmd == "channels") {
    // channels [MAX] [FILE.lvl] — without a levels file the computed
    // rwtg-levels are used, which are secure by construction, so the file
    // form is how you audit a *designer's* assignment for leaks.
    if (tok.size() > 3) {
      std::printf("error: channels [MAX] [FILE.lvl]\n");
      return;
    }
    size_t max_channels = 0;
    std::string levels_file;
    for (size_t a = 1; a < tok.size(); ++a) {
      const std::string arg(tok[a]);
      if (!arg.empty() && arg[0] >= '0' && arg[0] <= '9') {
        max_channels = static_cast<size_t>(std::atol(arg.c_str()));
      } else {
        levels_file = arg;
      }
    }
    tg_hier::LevelAssignment levels;
    if (!levels_file.empty()) {
      auto loaded = tg_hier::LoadLevelsFile(levels_file, graph);
      if (!loaded.ok()) {
        std::printf("error: %s\n", loaded.status().ToString().c_str());
        return;
      }
      levels = std::move(loaded).value();
    } else {
      levels = tg_hier::ComputeRwtgLevels(graph, cache);
    }
    tg_hier::AssignObjectLevels(graph, levels);
    const std::vector<tg_hier::TypedCrossLevelChannel> channels =
        tg_hier::FindTypedCrossLevelChannels(graph, levels, cache, max_channels);
    for (const tg_hier::TypedCrossLevelChannel& c : channels) {
      std::printf("%s (%s) -> %s (%s) word=%s%s%s replay=%s\n",
                  graph.NameOf(c.channel.from).c_str(),
                  levels.LevelName(c.from_level).c_str(),
                  graph.NameOf(c.channel.to).c_str(), levels.LevelName(c.to_level).c_str(),
                  tg_analysis::ChannelWordTypeName(c.channel.word_type),
                  c.channel.pivot_src != tg::kInvalidVertex ? " pivot=" : "",
                  c.channel.pivot_src != tg::kInvalidVertex
                      ? (graph.NameOf(c.channel.pivot_src) + "->" +
                         graph.NameOf(c.channel.pivot_dst))
                            .c_str()
                      : "",
                  c.channel.replay_verified ? "VERIFIED" : "FAILED");
      std::printf("  %s\n", c.channel.path.ToString(graph).c_str());
    }
    if (channels.empty()) {
      std::printf("(no cross-level channels: secure by Theorem 5.2)\n");
    }
  } else if (cmd == "saturate") {
    if (gate_blocks()) {
      return;
    }
    size_t before = graph.ImplicitEdgeCount();
    graph = tg_analysis::SaturateDeFacto(graph);
    cache.Invalidate();
    std::printf("ok: %zu new implicit edge(s)\n", graph.ImplicitEdgeCount() - before);
  } else if (cmd == "stats") {
    if (tok.size() == 2 && tok[1] == "reset") {
      tg_util::MetricsRegistry::Instance().ResetAll();
      tg_util::TraceBuffer::Instance().Clear();
      std::printf("ok: metrics and trace reset\n");
      return;
    }
    if (!tg_util::MetricsEnabled()) {
      std::printf("(metrics disabled; unset TG_METRICS or set it to 1)\n");
      return;
    }
    std::string text = tg_util::MetricsRegistry::Instance().RenderText();
    std::printf("%s", text.empty() ? "(no metrics recorded yet)\n" : text.c_str());
    std::printf("cache: %zu/%zu entries, %zu hits, %zu misses, %zu evictions\n",
                cache.entry_count(), cache.max_entries(), cache.hits(), cache.misses(),
                cache.evictions());
  } else if (cmd == "explain") {
    // explain know X Y | explain knowf X Y | explain share R X Y |
    // explain channel U V
    if (tok.size() < 2) {
      std::printf("error: explain know|knowf|share|channel ...\n");
      return;
    }
    const std::string_view what = tok[1];
    tg_analysis::QueryProvenance record;
    if ((what == "know" || what == "knowf") && tok.size() == 4) {
      tg::VertexId x = Resolve(tok[2]);
      tg::VertexId y = Resolve(tok[3]);
      if (x == tg::kInvalidVertex || y == tg::kInvalidVertex) {
        return;
      }
      record = what == "know" ? tg_analysis::ExplainCanKnow(graph, x, y, &cache)
                              : tg_analysis::ExplainCanKnowF(graph, x, y);
    } else if (what == "channel" && tok.size() == 4) {
      tg::VertexId u = Resolve(tok[2]);
      tg::VertexId v = Resolve(tok[3]);
      if (u == tg::kInvalidVertex || v == tg::kInvalidVertex) {
        return;
      }
      record = tg_analysis::ExplainChannel(graph, u, v, &cache);
    } else if (what == "share" && tok.size() == 5) {
      auto right = ResolveRight(tok[2]);
      tg::VertexId x = Resolve(tok[3]);
      tg::VertexId y = Resolve(tok[4]);
      if (!right || x == tg::kInvalidVertex || y == tg::kInvalidVertex) {
        return;
      }
      record = tg_analysis::ExplainCanShare(graph, *right, x, y);
    } else {
      std::printf(
          "error: explain know X Y | explain knowf X Y | explain share R X Y | "
          "explain channel U V\n");
      return;
    }
    std::printf("%s", record.ToText().c_str());
    tg_analysis::RecordProvenance(record);
  } else if (cmd == "profile") {
    if (tok.size() == 2 && tok[1] == "reset") {
      tg_util::ResetSpanProfile();
      std::printf("ok: span profile reset\n");
      return;
    }
    if (tok.size() != 1) {
      std::printf("error: profile [reset]\n");
      return;
    }
    std::printf("%s", tg_util::RenderSpanProfileText().c_str());
  } else if (cmd == "trace" && tok.size() == 3 && tok[1] == "export") {
    const std::string path(tok[2]);
    if (tg_util::WriteChromeTraceJson(path)) {
      std::printf("ok: %zu span(s) -> %s\n", tg_util::TraceBuffer::Instance().Events().size(),
                  path.c_str());
    } else {
      std::printf("error: cannot write %s\n", path.c_str());
    }
  } else if (cmd == "trace") {
    if (tok.size() > 2) {
      std::printf("error: trace [N] | trace export FILE\n");
      return;
    }
    size_t limit = 20;
    if (tok.size() == 2) {
      limit = static_cast<size_t>(std::atol(std::string(tok[1]).c_str()));
    }
    std::string text = tg_util::TraceBuffer::Instance().RenderText(limit);
    std::printf("%s", text.empty() ? "(trace empty)\n" : text.c_str());
    uint64_t total = tg_util::TraceBuffer::Instance().total_recorded();
    if (total > tg_util::TraceBuffer::Instance().capacity()) {
      std::printf("(%llu spans recorded; older spans overwritten)\n",
                  static_cast<unsigned long long>(total));
    }
  } else if (cmd == "journal") {
    if (tok.size() > 2) {
      std::printf("error: journal [N]\n");
      return;
    }
    size_t limit = 20;
    if (tok.size() == 2) {
      limit = static_cast<size_t>(std::atol(std::string(tok[1]).c_str()));
    }
    const tg::MutationJournal& journal = graph.journal();
    std::printf("epoch %llu, %zu record(s) retained since epoch %llu\n",
                static_cast<unsigned long long>(graph.epoch()), journal.size(),
                static_cast<unsigned long long>(journal.base_epoch()));
    for (const tg::MutationRecord& rec : journal.LastN(limit)) {
      std::printf("%s\n", rec.ToString(&graph).c_str());
    }
  } else if (cmd == "show") {
    std::printf("%s", tg::PrintGraph(graph).c_str());
  } else if (cmd == "dot") {
    if (!need(1)) {
      return;
    }
    std::ofstream out{std::string(tok[1])};
    if (!out) {
      std::printf("error: cannot write %.*s\n", static_cast<int>(tok[1].size()),
                  tok[1].data());
      return;
    }
    out << tg::ToDot(graph);
    std::printf("ok\n");
  } else if (cmd == "save") {
    if (!need(1)) {
      return;
    }
    std::ofstream out{std::string(tok[1])};
    if (!out) {
      std::printf("error: cannot write file\n");
      return;
    }
    out << tg::PrintGraph(graph);
    std::printf("ok\n");
  } else if (cmd == "load") {
    if (!need(1) || gate_blocks()) {
      return;
    }
    auto loaded = tg::LoadGraphFile(std::string(tok[1]));
    if (!loaded.ok()) {
      std::printf("error: %s\n", loaded.status().ToString().c_str());
      return;
    }
    graph = std::move(loaded).value();
    cache.Invalidate();
    std::printf("ok: %s\n", graph.Summary().c_str());
  } else {
    std::printf("error: unknown command '%.*s' (try help)\n", static_cast<int>(cmd.size()),
                cmd.data());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  bool interactive = true;
  if (argc >= 2) {
    std::string arg = argv[1];
    if (arg == "-") {
      interactive = false;
    } else {
      auto loaded = tg::LoadGraphFile(arg);
      if (!loaded.ok()) {
        std::fprintf(stderr, "tgsh: %s\n", loaded.status().ToString().c_str());
        return 1;
      }
      shell.graph = std::move(loaded).value();
      std::printf("loaded: %s\n", shell.graph.Summary().c_str());
    }
  }
  // Interactive when stdin is a terminal; scripted otherwise.
  if (interactive) {
    std::printf("tgsh -- take-grant shell (help for commands)\n");
  }
  std::string line;
  while (!shell.done) {
    if (interactive) {
      std::printf("tg> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) {
      break;
    }
    shell.Execute(line);
  }
  return 0;
}

// policy_server: the always-on policy daemon.
//
//   policy_server --graph FILE.tgg [FILE.lvl] [--socket PATH] [--port N]
//                 [--threads N] [--cache N] [--admit-mode connection|edge]
//   policy_server --demo [--socket PATH] [--port N] [--threads N]
//
// Loads a protection graph (with a designer .lvl assignment, or rwtg-levels
// computed from the graph when none is given), wraps it in a PolicyEngine —
// AdmissionGate write path, MVCC epoch-pinned read snapshots — and serves
// the wire protocol of src/server/protocol.h on a unix-domain socket
// (--socket), a loopback TCP port (--port; 0 picks an ephemeral port), or
// both.  Prints one READY line once listening, then runs until SIGINT or
// SIGTERM.
//
//   $ policy_server --graph data/org_chart.tgg data/org_chart.lvl \
//       --socket /tmp/tg.sock &
//   policy_server: READY socket=/tmp/tg.sock vertices=... workers=...
//   $ policy_client --socket /tmp/tg.sock can_know eng_lead ceo_mail

#include <signal.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "src/take_grant.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "policy_server: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string graph_path;
  std::string levels_path;
  bool demo = false;
  tg_server::PolicyServer::Options options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "policy_server: %s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--graph") {
      graph_path = next("--graph");
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        levels_path = argv[++i];
      }
    } else if (arg == "--socket") {
      options.unix_path = next("--socket");
    } else if (arg == "--port") {
      options.tcp_port = std::atoi(next("--port"));
    } else if (arg == "--threads") {
      options.engine.threads = static_cast<size_t>(std::atol(next("--threads")));
    } else if (arg == "--cache") {
      options.engine.cache_entries = static_cast<size_t>(std::atol(next("--cache")));
    } else if (arg == "--admit-mode") {
      const std::string mode = next("--admit-mode");
      if (mode == "connection") {
        options.engine.gate.mode = tg_hier::AdmissionMode::kConnection;
      } else if (mode == "edge") {
        options.engine.gate.mode = tg_hier::AdmissionMode::kEdgeLevel;
      } else {
        return Fail("--admit-mode must be connection or edge");
      }
    } else if (arg == "--demo") {
      demo = true;
    } else {
      return Fail("unknown flag '" + arg + "' (see the file comment for usage)");
    }
  }
  if (graph_path.empty() && !demo) {
    return Fail("need --graph FILE.tgg [FILE.lvl] or --demo");
  }
  if (options.unix_path.empty() && options.tcp_port < 0) {
    return Fail("need a listener: --socket PATH and/or --port N (0 = ephemeral)");
  }

  tg::ProtectionGraph graph;
  tg_hier::LevelAssignment levels;
  if (demo) {
    tg_util::Prng prng(17);
    tg_sim::RandomHierarchyOptions hier;
    hier.levels = 3;
    hier.subjects_per_level = 3;
    hier.objects_per_level = 2;
    tg_sim::GeneratedHierarchy generated = tg_sim::RandomHierarchy(hier, prng);
    graph = std::move(generated.graph);
    levels = std::move(generated.levels);
  } else {
    auto loaded = tg::LoadGraphFile(graph_path);
    if (!loaded.ok()) {
      return Fail(loaded.status().ToString());
    }
    graph = std::move(loaded).value();
    if (!levels_path.empty()) {
      auto parsed = tg_hier::LoadLevelsFile(levels_path, graph);
      if (!parsed.ok()) {
        return Fail(parsed.status().ToString());
      }
      levels = std::move(parsed).value();
    } else {
      levels = tg_hier::ComputeRwtgLevels(graph);
      tg_hier::AssignObjectLevels(graph, levels);
    }
  }

  // Block the termination signals before Start so the server's threads
  // inherit the mask; the main thread then waits for one with sigwait.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  const size_t vertices = graph.VertexCount();
  tg_server::PolicyServer server(std::move(graph), std::move(levels), options);
  if (auto s = server.Start(); !s.ok()) {
    return Fail(s.ToString());
  }
  std::printf("policy_server: READY");
  if (!server.unix_path().empty()) {
    std::printf(" socket=%s", server.unix_path().c_str());
  }
  if (server.tcp_port() >= 0) {
    std::printf(" port=%d", server.tcp_port());
  }
  std::printf(" vertices=%zu workers=%zu\n", vertices, server.engine().worker_threads());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::printf("policy_server: stopping (signal %d)\n", sig);
  server.Stop();
  return 0;
}

// audit_tool: command-line security analyzer for .tgg protection graphs.
//
//   audit_tool <graph.tgg> [--levels file.lvl] [--dot out.dot] [--metrics-json FILE]
//              [--trace-json FILE] [--provenance-json FILE] [--channels-json FILE]
//   audit_tool --demo
//
// Loads a graph (or builds a demo), computes islands and rwtg-levels, runs
// the security analysis, and prints every cross-level channel with a
// witness path.  With --levels, audits against the designer's level
// assignment (read-up/write-down edges, Theorem 5.2 channels, and the full
// can_know security check) instead of the computed one.  With --dot,
// writes a Graphviz rendering clustered by level.  With --metrics-json,
// dumps the engine metrics registry (cache hits, BFS visits, latency
// histograms) as one flat JSON object to FILE ("-" = stdout) after the
// audit finishes.  With --trace-json, exports the span ring as Perfetto/
// Chrome trace_event JSON after the audit.  With --provenance-json, writes
// one provenance record per explained can_know query (JSONL, one object
// per line) covering every subject pair plus the designer-level CheckSecure
// when --levels is given.  With --channels-json, writes one ExplainChannel
// provenance record (JSONL) per subject pair carrying a Theorem 5.2
// bridge/connection word — each record names the word type, the pivot
// edge, and a replay-verified witness path; with --levels the pairs are
// the designer-level cross-level channels, otherwise every channel-
// connected subject pair (capped).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/provenance.h"
#include "src/take_grant.h"
#include "src/util/metrics.h"
#include "src/util/trace_export.h"

namespace {

tg::ProtectionGraph DemoGraph() {
  // A hierarchy with one planted channel, for demonstration.
  tg_util::Prng prng(17);
  tg_sim::RandomHierarchyOptions options;
  options.levels = 3;
  options.subjects_per_level = 2;
  options.objects_per_level = 1;
  options.planted_channels = 1;
  return tg_sim::RandomHierarchy(options, prng).graph;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "audit_tool: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  tg::ProtectionGraph graph;
  std::string dot_path;
  std::string levels_path;
  std::string metrics_path;
  std::string trace_path;
  std::string provenance_path;
  std::string channels_path;

  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) {
    graph = DemoGraph();
  } else if (argc >= 2 && argv[1][0] != '-') {
    auto loaded = tg::LoadGraphFile(argv[1]);
    if (!loaded.ok()) {
      return Fail(loaded.status().ToString());
    }
    graph = std::move(loaded).value();
  } else {
    std::fprintf(stderr,
                 "usage: %s <graph.tgg> [--levels file.lvl] [--dot out.dot]"
                 " [--metrics-json FILE] [--trace-json FILE] [--provenance-json FILE]"
                 " [--channels-json FILE] | --demo\n",
                 argv[0]);
    return 2;
  }
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--dot") == 0) {
      dot_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--levels") == 0) {
      levels_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--metrics-json") == 0) {
      metrics_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--trace-json") == 0) {
      trace_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--provenance-json") == 0) {
      provenance_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--channels-json") == 0) {
      channels_path = argv[i + 1];
    }
  }

  std::printf("loaded: %s\n\n", graph.Summary().c_str());

  // One cache for the whole audit: the snapshot and the all-pairs matrices
  // are built once and shared by the channel scan, the security check, the
  // computed levels, and the knowable-set report below.
  tg_analysis::AnalysisCache cache;

  std::optional<tg_hier::LevelAssignment> designer_levels;
  if (!levels_path.empty()) {
    auto designer = tg_hier::LoadLevelsFile(levels_path, graph);
    if (!designer.ok()) {
      return Fail(designer.status().ToString());
    }
    std::printf("designer levels: %zu levels from %s\n", designer->LevelCount(),
                levels_path.c_str());
    auto offending = tg_hier::AuditBishopRestriction(graph, *designer);
    std::printf("edge audit (designer levels): %zu forbidden edges\n", offending.size());
    for (const tg::Edge& e : offending) {
      std::printf("  %s -> %s [%s]\n", graph.NameOf(e.src).c_str(),
                  graph.NameOf(e.dst).c_str(), e.TotalRights().ToString().c_str());
    }
    auto channels = tg_hier::FindCrossLevelChannels(graph, *designer, cache, 10);
    std::printf("cross-level channels (Theorem 5.2): %zu\n", channels.size());
    for (const auto& channel : channels) {
      std::printf("  %s\n", channel.path.c_str());
    }
    tg_hier::SecurityReport report = tg_hier::CheckSecure(graph, *designer, cache, 10);
    std::printf("secure against all conspiracies: %s\n", report.secure ? "yes" : "NO");
    for (const auto& violation : report.violations) {
      std::printf("  %s\n", violation.detail.c_str());
    }
    std::printf("\n");
    designer_levels = std::move(designer).value();
  }

  // Islands.
  tg_analysis::Islands islands(graph);
  std::printf("islands (%zu):\n", islands.Count());
  for (size_t i = 0; i < islands.Count(); ++i) {
    std::printf("  I%zu = {", i + 1);
    bool first = true;
    for (tg::VertexId v : islands.Members(static_cast<uint32_t>(i))) {
      std::printf("%s%s", first ? "" : ", ", graph.NameOf(v).c_str());
      first = false;
    }
    std::printf("}\n");
  }

  // Computed rwtg-levels.
  tg_hier::LevelAssignment levels = tg_hier::ComputeRwtgLevels(graph, cache);
  tg_hier::AssignObjectLevels(graph, levels);
  std::printf("\nrwtg-levels (%zu):\n", levels.LevelCount());
  auto members = levels.Members();
  for (size_t l = 0; l < members.size(); ++l) {
    std::printf("  %s = {", levels.LevelName(static_cast<tg_hier::LevelId>(l)).c_str());
    bool first = true;
    for (tg::VertexId v : members[l]) {
      std::printf("%s%s", first ? "" : ", ", graph.NameOf(v).c_str());
      first = false;
    }
    std::printf("}\n");
  }

  // Security: computed levels are self-consistently secure by construction,
  // so the actionable audit is the Bishop edge audit plus the pairwise
  // higher-relation report.
  auto offending = tg_hier::AuditBishopRestriction(graph, levels);
  std::printf("\nedge audit: %zu forbidden edges\n", offending.size());
  for (const tg::Edge& e : offending) {
    std::printf("  %s -> %s [%s]\n", graph.NameOf(e.src).c_str(),
                graph.NameOf(e.dst).c_str(), e.TotalRights().ToString().c_str());
  }

  // Pairwise sharing surface: which subjects can steal r over which others?
  std::printf("\nshareable read rights (x can come to hold r over y):\n");
  size_t listed = 0;
  for (tg::VertexId x = 0; x < graph.VertexCount() && listed < 20; ++x) {
    if (!graph.IsSubject(x)) {
      continue;
    }
    for (tg::VertexId y = 0; y < graph.VertexCount() && listed < 20; ++y) {
      if (x == y || graph.HasExplicit(x, y, tg::Right::kRead)) {
        continue;
      }
      if (tg_analysis::CanShare(graph, tg::Right::kRead, x, y)) {
        std::printf("  %s => %s\n", graph.NameOf(x).c_str(), graph.NameOf(y).c_str());
        ++listed;
      }
    }
  }
  if (listed == 0) {
    std::printf("  (none beyond existing edges)\n");
  }

  // Knowable-set sizes through the same cache: the snapshot built for the
  // audit above is reused and every row is memoized, so an interactive
  // caller re-asking any of these questions would hit the cache.
  std::printf("\nknowable sets (|{y : can_know(x, y)}| per subject):\n");
  std::vector<tg::VertexId> audit_subjects;
  for (tg::VertexId x = 0; x < graph.VertexCount(); ++x) {
    if (!graph.IsSubject(x)) {
      continue;
    }
    audit_subjects.push_back(x);
    const std::vector<bool>& row = cache.Knowable(graph, x);
    size_t count = static_cast<size_t>(std::count(row.begin(), row.end(), true));
    std::printf("  %s: %zu\n", graph.NameOf(x).c_str(), count);
  }

  // Mutual-knowledge summary over the cached rows: every pairwise lookup
  // here is a cache hit, so large graphs pay |subjects| closures total.
  size_t mutual_pairs = 0;
  for (tg::VertexId x : audit_subjects) {
    for (tg::VertexId y : audit_subjects) {
      if (x < y && cache.CanKnow(graph, x, y) && cache.CanKnow(graph, y, x)) {
        ++mutual_pairs;
      }
    }
  }
  std::printf("mutual-knowledge subject pairs: %zu\n", mutual_pairs);

  // Provenance: how the graph got here (file loads replay as mutations, so
  // the journal shows the construction; incremental consumers key on it).
  std::printf("mutation journal: epoch %llu, %zu record(s) retained\n",
              static_cast<unsigned long long>(graph.epoch()), graph.journal().size());

  if (!dot_path.empty()) {
    tg::DotOptions dot_options;
    for (tg::VertexId v = 0; v < graph.VertexCount(); ++v) {
      if (levels.IsAssigned(v)) {
        dot_options.clusters[v] = levels.LevelName(levels.LevelOf(v));
      }
    }
    std::ofstream out(dot_path);
    if (!out) {
      return Fail("cannot write " + dot_path);
    }
    out << tg::ToDot(graph, dot_options);
    std::printf("\nwrote %s\n", dot_path.c_str());
  }

  if (!provenance_path.empty()) {
    // One JSONL record per ordered subject pair (capped so a huge graph
    // does not explode the file); every explained query routes through the
    // audit cache, so the records show the real hit/overlay provenance the
    // audit above established.
    constexpr size_t kMaxRecords = 64;
    std::ofstream out(provenance_path);
    if (!out) {
      return Fail("cannot write " + provenance_path);
    }
    size_t written = 0;
    for (tg::VertexId x : audit_subjects) {
      for (tg::VertexId y : audit_subjects) {
        if (x == y || written >= kMaxRecords) {
          continue;
        }
        tg_analysis::QueryProvenance record = tg_analysis::ExplainCanKnow(graph, x, y, &cache);
        out << record.ToJson() << "\n";
        tg_analysis::RecordProvenance(record);
        ++written;
      }
    }
    std::printf("\nwrote %s (%zu provenance record(s))\n", provenance_path.c_str(), written);
  }

  if (!channels_path.empty()) {
    // One ExplainChannel JSONL record per channel-connected subject pair:
    // with --levels the pairs are the designer-level cross-level channels
    // (each already typed by the audit), otherwise every ordered subject
    // pair is probed, capped like --provenance-json.  Records with a true
    // verdict carry the word type, pivot edge, and replay-verified witness.
    constexpr size_t kMaxRecords = 64;
    std::ofstream out(channels_path);
    if (!out) {
      return Fail("cannot write " + channels_path);
    }
    std::vector<std::pair<tg::VertexId, tg::VertexId>> pairs;
    if (designer_levels.has_value()) {
      for (const auto& channel :
           tg_hier::FindTypedCrossLevelChannels(graph, *designer_levels, cache, kMaxRecords)) {
        pairs.emplace_back(channel.channel.from, channel.channel.to);
      }
    } else {
      for (tg::VertexId x : audit_subjects) {
        for (tg::VertexId y : audit_subjects) {
          if (x != y && pairs.size() < kMaxRecords) {
            pairs.emplace_back(x, y);
          }
        }
      }
    }
    size_t written = 0;
    for (const auto& [u, v] : pairs) {
      tg_analysis::QueryProvenance record = tg_analysis::ExplainChannel(graph, u, v, &cache);
      if (!record.verdict) {
        continue;  // probe pairs without a channel stay out of the export
      }
      out << record.ToJson() << "\n";
      tg_analysis::RecordProvenance(record);
      ++written;
    }
    std::printf("\nwrote %s (%zu channel record(s))\n", channels_path.c_str(), written);
  }

  if (!metrics_path.empty()) {
    std::string json = tg_util::MetricsRegistry::Instance().RenderJson();
    if (metrics_path == "-") {
      std::printf("\n%s\n", json.c_str());
    } else {
      std::ofstream out(metrics_path);
      if (!out) {
        return Fail("cannot write " + metrics_path);
      }
      out << json << "\n";
      std::printf("\nwrote %s\n", metrics_path.c_str());
    }
  }

  if (!trace_path.empty()) {
    // Exported last so the trace covers every query this audit ran,
    // including the explained provenance calls above.
    if (!tg_util::WriteChromeTraceJson(trace_path)) {
      return Fail("cannot write " + trace_path);
    }
    std::printf("wrote %s\n", trace_path.c_str());
  }
  return 0;
}

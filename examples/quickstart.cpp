// Quickstart: build a protection graph, apply rewrite rules, and query the
// three predicates of the model.
//
//   $ ./quickstart
//
// Walks through the core API: graph construction, take/grant application,
// de facto information flow, decision procedures, and witnesses.

#include <cstdio>

#include "src/take_grant.h"

int main() {
  using tg::Right;

  // 1. Build a graph: alice can take from the vault chain; bob writes a
  //    shared mailbox that alice reads.
  tg::ProtectionGraph g;
  tg::VertexId alice = g.AddSubject("alice");
  tg::VertexId bob = g.AddSubject("bob");
  tg::VertexId vault = g.AddObject("vault");
  tg::VertexId secret = g.AddObject("secret");
  tg::VertexId mailbox = g.AddObject("mailbox");

  (void)g.AddExplicit(alice, vault, tg::kTake);      // alice -t-> vault
  (void)g.AddExplicit(vault, secret, tg::kRead);     // vault -r-> secret
  (void)g.AddExplicit(alice, mailbox, tg::kRead);    // alice -r-> mailbox
  (void)g.AddExplicit(bob, mailbox, tg::kWrite);     // bob -w-> mailbox

  std::printf("graph: %s\n\n", g.Summary().c_str());

  // 2. De jure transfer: can alice acquire the read right over the secret?
  bool share = tg_analysis::CanShare(g, Right::kRead, alice, secret);
  std::printf("can_share(r, alice, secret) = %s\n", share ? "true" : "false");
  if (auto witness = tg_analysis::BuildCanShareWitness(g, Right::kRead, alice, secret)) {
    std::printf("witness:\n%s", witness->ToString(g).c_str());
  }

  // 3. De facto flow: alice learns what bob knows through the mailbox.
  bool know_f = tg_analysis::CanKnowF(g, alice, bob);
  std::printf("\ncan_know_f(alice, bob) = %s\n", know_f ? "true" : "false");
  if (auto path = tg_analysis::FindAdmissibleRwPath(g, alice, bob)) {
    std::printf("admissible rw-path: %s\n", path->ToString(g).c_str());
  }

  // 4. Combined: can_know composes authority transfer with information flow.
  std::printf("can_know(alice, secret) = %s\n",
              tg_analysis::CanKnow(g, alice, secret) ? "true" : "false");
  std::printf("can_know(bob, secret)   = %s\n",
              tg_analysis::CanKnow(g, bob, secret) ? "true" : "false");

  // 5. Actually perform the transfer through the rule engine and re-check.
  tg::RuleEngine engine(g);
  auto take = engine.Apply(tg::RuleApplication::Take(alice, vault, secret, tg::kRead));
  std::printf("\napply: %s -> %s\n",
              tg::RuleApplication::Take(alice, vault, secret, tg::kRead).ToString(g).c_str(),
              take.ok() ? "ok" : take.status().ToString().c_str());
  std::printf("alice now reads secret directly: %s\n",
              engine.graph().HasExplicit(alice, secret, Right::kRead) ? "yes" : "no");

  // 6. Serialize for later analysis.
  std::printf("\n.tgg serialization:\n%s", tg::PrintGraph(engine.graph()).c_str());
  return 0;
}

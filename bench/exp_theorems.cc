// Reproduces the paper's theorems:
//
//   T2.3  can_share decision procedure == exhaustive de jure search
//   T3.1  can_know_f == de facto saturation (exact oracle)
//   T3.2  can_know == bounded exhaustive search over both rule families
//   T4.3  structures confine information flow to the upward direction
//   T4.5  objects at their lowest accessor's level leak nothing downward
//   T5.2  secure <=> no bridges/connections between rwtg-levels

#include "bench/exp_common.h"
#include "src/take_grant.h"

namespace {

struct AgreementStats {
  int pairs = 0;
  int positive = 0;
  int disagreements = 0;
};

template <typename Fast, typename Slow>
AgreementStats Compare(const tg::ProtectionGraph& g, Fast fast, Slow slow) {
  AgreementStats stats;
  for (tg::VertexId x = 0; x < g.VertexCount(); ++x) {
    for (tg::VertexId y = 0; y < g.VertexCount(); ++y) {
      if (x == y) {
        continue;
      }
      bool f = fast(g, x, y);
      bool s = slow(g, x, y);
      ++stats.pairs;
      stats.positive += f ? 1 : 0;
      stats.disagreements += (f != s) ? 1 : 0;
    }
  }
  return stats;
}

std::string StatLine(const AgreementStats& s) {
  return std::to_string(s.pairs) + " pairs, " + std::to_string(s.positive) + " positive, " +
         std::to_string(s.disagreements) + " disagreements";
}

}  // namespace

int main() {
  exp::Reporter report("paper theorems");
  using tg::Right;
  using tg::VertexId;

  // ---- Theorem 2.3 ----
  {
    tg_util::Prng prng(23);
    AgreementStats total;
    int witnesses_checked = 0;
    int witnesses_replayed = 0;
    for (int trial = 0; trial < 12; ++trial) {
      tg_sim::RandomGraphOptions options;
      options.subjects = 3;
      options.objects = 2;
      options.edge_factor = 1.0 + 0.1 * (trial % 4);
      tg::ProtectionGraph g = tg_sim::RandomGraph(options, prng);
      AgreementStats stats = Compare(
          g,
          [](const tg::ProtectionGraph& gg, VertexId x, VertexId y) {
            return tg_analysis::CanShare(gg, Right::kRead, x, y);
          },
          [](const tg::ProtectionGraph& gg, VertexId x, VertexId y) {
            tg_analysis::OracleOptions oracle;
            oracle.max_creates = 1;
            oracle.max_states = 40000;
            return tg_analysis::OracleCanShare(gg, Right::kRead, x, y, oracle);
          });
      total.pairs += stats.pairs;
      total.positive += stats.positive;
      total.disagreements += stats.disagreements;
      // Every positive answer must come with a replayable rule witness.
      for (VertexId x = 0; x < g.VertexCount(); ++x) {
        for (VertexId y = 0; y < g.VertexCount(); ++y) {
          if (x == y || !tg_analysis::CanShare(g, Right::kRead, x, y)) {
            continue;
          }
          ++witnesses_checked;
          auto witness = tg_analysis::BuildCanShareWitness(g, Right::kRead, x, y);
          if (witness.has_value() &&
              witness->VerifyAddsExplicit(g, x, y, Right::kRead).ok()) {
            ++witnesses_replayed;
          }
        }
      }
    }
    report.Check("T2.3", "can_share == exhaustive search (" + StatLine(total) + ")", true,
                 total.disagreements == 0 && total.positive > 0);
    report.Check("T2.3",
                 "every positive answer has a replayable witness (" +
                     std::to_string(witnesses_replayed) + "/" +
                     std::to_string(witnesses_checked) + ")",
                 true, witnesses_checked > 0 && witnesses_replayed == witnesses_checked);
  }

  // ---- Theorem 3.1 ----
  {
    tg_util::Prng prng(31);
    AgreementStats total;
    for (int trial = 0; trial < 30; ++trial) {
      tg_sim::RandomGraphOptions options;
      options.subjects = 4;
      options.objects = 3;
      options.edge_factor = 1.5;
      tg::ProtectionGraph g = tg_sim::RandomGraph(options, prng);
      AgreementStats stats =
          Compare(g, tg_analysis::CanKnowF,
                  [](const tg::ProtectionGraph& gg, VertexId x, VertexId y) {
                    return tg_analysis::OracleCanKnowF(gg, x, y);
                  });
      total.pairs += stats.pairs;
      total.positive += stats.positive;
      total.disagreements += stats.disagreements;
    }
    report.Check("T3.1", "can_know_f == de facto saturation (" + StatLine(total) + ")", true,
                 total.disagreements == 0 && total.positive > 0);
  }

  // ---- Theorem 3.2 ----
  {
    tg_util::Prng prng(32);
    AgreementStats total;
    for (int trial = 0; trial < 8; ++trial) {
      tg_sim::RandomGraphOptions options;
      options.subjects = 3;
      options.objects = 2;
      options.edge_factor = 1.1;
      tg::ProtectionGraph g = tg_sim::RandomGraph(options, prng);
      AgreementStats stats =
          Compare(g, tg_analysis::CanKnow,
                  [](const tg::ProtectionGraph& gg, VertexId x, VertexId y) {
                    tg_analysis::OracleOptions oracle;
                    oracle.max_creates = 1;
                    oracle.max_states = 25000;
                    return tg_analysis::OracleCanKnow(gg, x, y, oracle);
                  });
      total.pairs += stats.pairs;
      total.positive += stats.positive;
      total.disagreements += stats.disagreements;
    }
    report.Check("T3.2", "can_know == bounded exhaustive search (" + StatLine(total) + ")",
                 true, total.disagreements == 0 && total.positive > 0);
  }

  // ---- Theorem 4.3 ----
  {
    tg_util::Prng prng(43);
    bool up_total = true;
    bool down_none = true;
    int pairs = 0;
    for (int trial = 0; trial < 6; ++trial) {
      tg_sim::RandomHierarchyOptions options;
      options.levels = 4;
      options.subjects_per_level = 2;
      options.read_down = 1.0;
      tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
      for (size_t k = 0; k < 4; ++k) {
        for (size_t j = 0; j < k; ++j) {
          for (VertexId a : h.level_subjects[k]) {
            for (VertexId b : h.level_subjects[j]) {
              ++pairs;
              up_total &= tg_analysis::CanKnowF(h.graph, a, b);
              down_none &= !tg_analysis::CanKnowF(h.graph, b, a);
            }
          }
        }
      }
    }
    report.Check("T4.3", "l_k knows l_j for k>j (" + std::to_string(pairs) + " pairs)", true,
                 up_total);
    report.Check("T4.3", "l_j never knows l_k for k>j", true, down_none);
  }

  // ---- Theorem 4.5 ----
  {
    tg_hier::LinearOptions options;
    options.levels = 4;
    options.subjects_per_level = 2;
    tg_hier::ClassifiedSystem sys = tg_hier::LinearClassification(options);
    bool contained = true;
    int pairs = 0;
    for (size_t doc_level = 1; doc_level < 4; ++doc_level) {
      VertexId doc = sys.level_documents[doc_level];
      for (size_t sub_level = 0; sub_level < doc_level; ++sub_level) {
        for (VertexId s : sys.level_subjects[sub_level]) {
          ++pairs;
          contained &= !tg_analysis::CanKnowF(sys.graph, s, doc);
        }
      }
    }
    report.Check("T4.5",
                 "no lower subject learns a higher document (" + std::to_string(pairs) +
                     " pairs)",
                 true, contained);
  }

  // ---- Theorem 5.2 ----
  {
    tg_util::Prng prng(52);
    int graphs = 0;
    int agreements = 0;
    int insecure_seen = 0;
    for (int trial = 0; trial < 20; ++trial) {
      tg_sim::RandomHierarchyOptions options;
      options.levels = 2 + trial % 3;
      options.subjects_per_level = 2;
      options.planted_channels = trial % 3;
      tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
      bool by_definition = tg_hier::CheckSecure(h.graph, h.levels, 1).secure;
      bool by_structure = tg_hier::SecureByTheorem52(h.graph, h.levels);
      ++graphs;
      agreements += (by_definition == by_structure) ? 1 : 0;
      insecure_seen += by_definition ? 0 : 1;
    }
    report.Check("T5.2",
                 "secure <=> no cross-level bridges/connections (" + std::to_string(graphs) +
                     " graphs, " + std::to_string(insecure_seen) + " insecure)",
                 true, agreements == graphs && insecure_seen > 0);
  }

  return report.Finish();
}

// Million-vertex audit benchmark: the condensation-first, level-sharded
// engine vs the dense per-candidate matrix pipeline.
//
// Three claims, each checked in-binary (non-zero exit on failure):
//   1. The dense all-pairs matrix cannot even be allocated at 10^6
//      vertices (BitMatrix::TryCreate fails against MaxBytes()), while
//      the sharded CheckSecure + FindCrossLevelChannels complete the full
//      audit and prove the planted-channel-free hierarchy secure.
//   2. At n = 4096 sparse hierarchies the sharded engine is >= 5x faster
//      than the dense engine (min-of-3 wall times; single-core runs
//      qualify — the win is algorithmic, not parallelism).
//   3. Dense and sharded engines produce bit-identical reports —
//      violations, channels, order, and max_violations cutoffs — wherever
//      both can run.
//
// Emits BENCH_scale.json (JSON lines) in the working directory; every row
// carries the machine context (hardware_concurrency / TG_THREADS) and the
// condense.* / row.* metric deltas for the phase it times.
//
//   bench_scale --smoke   # tiny graphs, BENCH_scale_smoke.json; used by
//                         # the bench_scale_smoke ctest

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/exp_common.h"
#include "src/take_grant.h"

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

tg_sim::GeneratedHierarchy BuildHierarchy(size_t levels, size_t clusters, size_t planted,
                                          uint64_t seed) {
  tg_util::Prng prng(seed);
  tg_sim::HierarchicalGraphOptions options;
  options.levels = levels;
  options.clusters_per_level = clusters;
  options.subjects_per_cluster = 24;
  options.objects_per_cluster = 8;
  options.tg_chords_per_cluster = 2;
  options.reads_down_per_subject = 1;
  options.planted_channels = planted;
  return tg_sim::HierarchicalGraph(options, prng);
}

bool SameReports(const tg_hier::SecurityReport& a, const tg_hier::SecurityReport& b) {
  if (a.secure != b.secure || a.violations.size() != b.violations.size()) {
    return false;
  }
  for (size_t i = 0; i < a.violations.size(); ++i) {
    if (a.violations[i].lower != b.violations[i].lower ||
        a.violations[i].higher != b.violations[i].higher ||
        a.violations[i].detail != b.violations[i].detail) {
      return false;
    }
  }
  return true;
}

bool SameChannels(const std::vector<tg_hier::CrossLevelChannel>& a,
                  const std::vector<tg_hier::CrossLevelChannel>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].from != b[i].from || a[i].to != b[i].to || a[i].path != b[i].path) {
      return false;
    }
  }
  return true;
}

// min-of-3 wall time for one engine, asserting every run's report matches
// the first.
double MinOf3Ms(const tg::ProtectionGraph& g, const tg_hier::LevelAssignment& levels,
                tg_hier::AuditEngine engine, tg_hier::SecurityReport& out, bool& stable) {
  double best = 0.0;
  stable = true;
  for (int rep = 0; rep < 3; ++rep) {
    Clock::time_point t0 = Clock::now();
    tg_hier::SecurityReport report = tg_hier::CheckSecure(g, levels, /*max_violations=*/0,
                                                          /*pool=*/nullptr, engine);
    const double ms = MsSince(t0);
    if (rep == 0) {
      out = std::move(report);
      best = ms;
    } else {
      stable = stable && SameReports(out, report);
      best = std::min(best, ms);
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  exp::Reporter reporter(smoke ? "scale audit smoke (sharded vs dense equivalence)"
                               : "scale audit: condensation-first sharded engine at 10^6");
  // The smoke run executes from the build tree (ctest/check.sh); don't
  // shadow a real artifact with tiny-size numbers.
  exp::JsonlWriter jsonl(smoke ? "BENCH_scale_smoke.json" : "BENCH_scale.json");

  exp::JsonObject env_row;
  env_row.Set("record", "env");
  exp::AppendEnvInfo(env_row);
  jsonl.Write(env_row.Set("dense_matrix_max_bytes", tg::BitMatrix::MaxBytes()).Set("smoke", smoke));

  // --- Equivalence: dense vs sharded on secure and insecure hierarchies
  // (sharded forced explicitly; these sizes are below the kAuto cutover).
  {
    const size_t clusters = smoke ? 3 : 8;
    for (size_t planted : {size_t{0}, size_t{4}}) {
      tg_sim::GeneratedHierarchy h = BuildHierarchy(/*levels=*/4, clusters, planted, 7 + planted);
      const std::string tag = "eq_p" + std::to_string(planted);
      tg_hier::SecurityReport dense = tg_hier::CheckSecure(
          h.graph, h.levels, /*max_violations=*/0, nullptr, tg_hier::AuditEngine::kDense);
      tg_hier::SecurityReport sharded = tg_hier::CheckSecure(
          h.graph, h.levels, /*max_violations=*/0, nullptr, tg_hier::AuditEngine::kSharded);
      reporter.Check(tag, "sharded CheckSecure report identical to dense", true,
                     SameReports(dense, sharded));
      // The cutoff path must match too: cap below the full violation count.
      tg_hier::SecurityReport dense_cut = tg_hier::CheckSecure(
          h.graph, h.levels, /*max_violations=*/3, nullptr, tg_hier::AuditEngine::kDense);
      tg_hier::SecurityReport sharded_cut = tg_hier::CheckSecure(
          h.graph, h.levels, /*max_violations=*/3, nullptr, tg_hier::AuditEngine::kSharded);
      reporter.Check(tag + "_cut", "max_violations cutoff identical across engines", true,
                     SameReports(dense_cut, sharded_cut));
      std::vector<tg_hier::CrossLevelChannel> dense_ch = tg_hier::FindCrossLevelChannels(
          h.graph, h.levels, /*max_channels=*/0, nullptr, tg_hier::AuditEngine::kDense);
      std::vector<tg_hier::CrossLevelChannel> sharded_ch = tg_hier::FindCrossLevelChannels(
          h.graph, h.levels, /*max_channels=*/0, nullptr, tg_hier::AuditEngine::kSharded);
      reporter.Check(tag + "_ch", "sharded channel list identical to dense", true,
                     SameChannels(dense_ch, sharded_ch));
      reporter.Check(tag + "_sec", "planted channels decide security", planted == 0, dense.secure);
      jsonl.Write(exp::JsonObject()
                      .Set("record", "equivalence")
                      .Set("vertices", static_cast<uint64_t>(h.graph.VertexCount()))
                      .Set("planted", static_cast<uint64_t>(planted))
                      .Set("violations", static_cast<uint64_t>(dense.violations.size()))
                      .Set("channels", static_cast<uint64_t>(dense_ch.size()))
                      .Set("identical", SameReports(dense, sharded) &&
                                            SameChannels(dense_ch, sharded_ch)));
    }
  }

  // --- Speedup: sharded vs dense at n = 4096 (full mode only). ---
  if (!smoke) {
    tg_sim::GeneratedHierarchy h = BuildHierarchy(/*levels=*/8, /*clusters=*/16,
                                                  /*planted=*/0, /*seed=*/11);
    const size_t n = h.graph.VertexCount();
    exp::MetricsDelta delta;
    tg_hier::SecurityReport dense_report;
    tg_hier::SecurityReport sharded_report;
    bool dense_stable = true;
    bool sharded_stable = true;
    const double dense_ms =
        MinOf3Ms(h.graph, h.levels, tg_hier::AuditEngine::kDense, dense_report, dense_stable);
    exp::JsonObject dense_row;
    dense_row.Set("record", "speedup").Set("engine", "dense").Set("vertices",
                                                                  static_cast<uint64_t>(n));
    delta.AppendTo(dense_row.Set("min_ms", dense_ms));
    jsonl.Write(dense_row);
    delta.Reset();
    const double sharded_ms = MinOf3Ms(h.graph, h.levels, tg_hier::AuditEngine::kSharded,
                                       sharded_report, sharded_stable);
    exp::JsonObject sharded_row;
    sharded_row.Set("record", "speedup").Set("engine", "sharded").Set("vertices",
                                                                      static_cast<uint64_t>(n));
    delta.AppendTo(sharded_row.Set("min_ms", sharded_ms));
    jsonl.Write(sharded_row);
    const double speedup = sharded_ms > 0.0 ? dense_ms / sharded_ms : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line), "n=%zu dense=%.1fms sharded=%.1fms speedup=%.1fx", n,
                  dense_ms, sharded_ms, speedup);
    reporter.Note("speedup", line);
    reporter.Check("speedup", "sharded >= 5x faster than dense at n=4096", true, speedup >= 5.0);
    reporter.Check("speedup_eq", "speedup runs stable and identical across engines", true,
                   dense_stable && sharded_stable && SameReports(dense_report, sharded_report));
    jsonl.Write(exp::JsonObject()
                    .Set("record", "speedup_summary")
                    .Set("vertices", static_cast<uint64_t>(n))
                    .Set("dense_min_ms", dense_ms)
                    .Set("sharded_min_ms", sharded_ms)
                    .Set("speedup", speedup));
  }

  // --- Scale: full audit at >= 10^6 vertices, where dense cannot even
  // allocate its matrix. ---
  {
    const size_t clusters = smoke ? 6 : 4096;  // 32 vertices per cluster, 8 levels
    Clock::time_point t_build = Clock::now();
    tg_sim::GeneratedHierarchy h =
        BuildHierarchy(/*levels=*/8, clusters, /*planted=*/0, /*seed=*/42);
    const double build_ms = MsSince(t_build);
    const size_t n = h.graph.VertexCount();
    if (!smoke) {
      reporter.Check("scale_n", "hierarchy has >= 10^6 vertices", true, n >= 1000000);
    }
    // The dense matrix for this n is unallocatable by construction: the
    // guard must refuse it (at the smoke size it must succeed instead).
    tg_util::StatusOr<tg::BitMatrix> dense_try = tg::BitMatrix::TryCreate(n, n);
    reporter.Check("scale_alloc",
                   smoke ? "dense matrix fits at smoke size"
                         : "dense n x n matrix refused by allocation guard",
                   smoke, dense_try.ok());

    exp::MetricsDelta delta;
    Clock::time_point t_audit = Clock::now();
    tg_hier::SecurityReport report = tg_hier::CheckSecure(h.graph, h.levels, /*max_violations=*/0,
                                                          nullptr, tg_hier::AuditEngine::kSharded);
    const double audit_ms = MsSince(t_audit);
    reporter.Check("scale_audit", "sharded CheckSecure completes and proves security", true,
                   report.secure && report.violations.empty());
    exp::JsonObject audit_row;
    audit_row.Set("record", "scale_audit")
        .Set("vertices", static_cast<uint64_t>(n))
        .Set("edges", static_cast<uint64_t>(h.graph.ExplicitEdgeCount()))
        .Set("build_ms", build_ms)
        .Set("audit_ms", audit_ms)
        .Set("secure", report.secure)
        .Set("dense_alloc_ok", dense_try.ok());
    delta.AppendTo(audit_row);
    jsonl.Write(audit_row);

    delta.Reset();
    Clock::time_point t_ch = Clock::now();
    std::vector<tg_hier::CrossLevelChannel> channels = tg_hier::FindCrossLevelChannels(
        h.graph, h.levels, /*max_channels=*/0, nullptr, tg_hier::AuditEngine::kSharded);
    const double channels_ms = MsSince(t_ch);
    reporter.Check("scale_ch", "no cross-level channels at scale", true, channels.empty());
    exp::JsonObject ch_row;
    ch_row.Set("record", "scale_channels")
        .Set("vertices", static_cast<uint64_t>(n))
        .Set("channels_ms", channels_ms)
        .Set("channels", static_cast<uint64_t>(channels.size()));
    delta.AppendTo(ch_row);
    jsonl.Write(ch_row);
  }

  return reporter.Finish();
}

// Rewrite-engine throughput: raw rule application, policy-mediated
// application, de facto saturation, and witness replay.

#include <benchmark/benchmark.h>

#include "src/take_grant.h"

namespace {

void BM_TakeRuleApplication(benchmark::State& state) {
  tg::ProtectionGraph base;
  tg::VertexId x = base.AddSubject("x");
  tg::VertexId y = base.AddObject("y");
  tg::VertexId z = base.AddObject("z");
  (void)base.AddExplicit(x, y, tg::kTake);
  (void)base.AddExplicit(y, z, tg::kReadWrite);
  tg::RuleApplication rule = tg::RuleApplication::Take(x, y, z, tg::kRead);
  for (auto _ : state) {
    tg::ProtectionGraph g = base;
    tg::RuleApplication r = rule;
    benchmark::DoNotOptimize(ApplyRule(g, r).ok());
  }
}
BENCHMARK(BM_TakeRuleApplication);

void BM_EngineWithBishopPolicy(benchmark::State& state) {
  tg::ProtectionGraph base;
  tg::VertexId x = base.AddSubject("x");
  tg::VertexId y = base.AddObject("y");
  tg::VertexId z = base.AddObject("z");
  (void)base.AddExplicit(x, y, tg::kTake);
  (void)base.AddExplicit(y, z, tg::kReadWrite);
  tg_hier::LevelAssignment levels(base.VertexCount(), 1);
  levels.Assign(x, 0);
  levels.Assign(y, 0);
  levels.Assign(z, 0);
  (void)levels.Finalize();
  tg::RuleApplication rule = tg::RuleApplication::Take(x, y, z, tg::kRead);
  for (auto _ : state) {
    tg::RuleEngine engine(base, std::make_shared<tg_hier::BishopRestrictionPolicy>(levels));
    benchmark::DoNotOptimize(engine.Apply(rule).ok());
  }
}
BENCHMARK(BM_EngineWithBishopPolicy);

void BM_DeFactoSaturation(benchmark::State& state) {
  const size_t levels = static_cast<size_t>(state.range(0));
  tg_util::Prng prng(31);
  tg_sim::RandomHierarchyOptions options;
  options.levels = levels;
  options.subjects_per_level = 3;
  options.objects_per_level = 2;
  tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg_analysis::SaturateDeFacto(h.graph).ImplicitEdgeCount());
  }
  state.SetComplexityN(static_cast<int64_t>(h.graph.VertexCount()));
}
BENCHMARK(BM_DeFactoSaturation)->RangeMultiplier(2)->Range(2, 16);

void BM_EnumerateDeJure(benchmark::State& state) {
  const size_t levels = static_cast<size_t>(state.range(0));
  tg_util::Prng prng(37);
  tg_sim::RandomHierarchyOptions options;
  options.levels = levels;
  options.subjects_per_level = 3;
  options.objects_per_level = 2;
  options.intra_tg = 0.6;
  tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateDeJure(h.graph).size());
  }
  state.SetComplexityN(static_cast<int64_t>(h.graph.VertexCount()));
}
BENCHMARK(BM_EnumerateDeJure)->RangeMultiplier(2)->Range(2, 16);

void BM_WitnessConstructionAndReplay(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  tg::ProtectionGraph g = tg_sim::ChainGraph(n);
  tg::VertexId head = g.FindVertex("head");
  tg::VertexId target = g.FindVertex("target");
  for (auto _ : state) {
    auto witness = tg_analysis::BuildCanShareWitness(g, tg::Right::kRead, head, target);
    benchmark::DoNotOptimize(witness->VerifyAddsExplicit(g, head, target, tg::Right::kRead));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_WitnessConstructionAndReplay)->RangeMultiplier(4)->Range(8, 512);

}  // namespace

BENCHMARK_MAIN();

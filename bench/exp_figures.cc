// Reproduces every figure of the paper as an executable claim.
//
//   F2.1  Wu's hierarchical model falls to a two-subject conspiracy
//   F2.2  islands / bridges / initial / terminal spans of the term figure
//   F3.1  rw-path word association and admissibility
//   F4.1  the linear classification modelled as a structure
//   F4.2  the military classification (partial order, incomparable levels)
//   F5.1  the execute right crosses levels; w does not, under restriction
//   F6.1  a graph breached by de jure rules alone

#include "bench/exp_common.h"
#include "src/take_grant.h"

int main() {
  exp::Reporter report("paper figures");
  using tg::Right;

  // ---- Figure 2.1 ----
  {
    tg_sim::Fig21 fig = tg_sim::MakeFig21();
    report.Check("F2.1", "conspirators reverse the t edge: lo can acquire r over secret",
                 true, tg_analysis::CanShare(fig.graph, Right::kRead, fig.lo, fig.secret));
    auto witness =
        tg_analysis::BuildCanShareWitness(fig.graph, Right::kRead, fig.lo, fig.secret);
    report.Check("F2.1", "the conspiracy has a replayable rule witness", true,
                 witness.has_value() &&
                     witness->VerifyAddsExplicit(fig.graph, fig.lo, fig.secret, Right::kRead)
                         .ok());
    report.Check("F2.1", "hence Wu's hierarchy is insecure under can_know", false,
                 tg_hier::CheckSecure(fig.graph, fig.levels, 1).secure);
  }

  // ---- Figure 2.2 ----
  {
    tg_sim::Fig22 fig = tg_sim::MakeFig22();
    tg_analysis::Islands islands(fig.graph);
    report.Check("F2.2", "three islands: {p,u}, {w}, {y,s2}", true,
                 islands.Count() == 3 && islands.SameIsland(fig.p, fig.u) &&
                     islands.SameIsland(fig.y, fig.s2) && !islands.SameIsland(fig.u, fig.w));
    auto b1 = tg_analysis::FindBridge(fig.graph, fig.u, fig.w);
    auto b2 = tg_analysis::FindBridge(fig.graph, fig.w, fig.y);
    report.Check("F2.2", "bridges u~w and w~y exist", true,
                 b1.has_value() && b2.has_value());
    if (b1 && b2) {
      report.Note("F2.2", "bridge u~w: " + b1->ToString(fig.graph));
      report.Note("F2.2", "bridge w~y: " + b2->ToString(fig.graph));
    }
    report.Check("F2.2", "p initially spans to q", true,
                 tg_analysis::InitiallySpansTo(fig.graph, fig.p, fig.q));
    report.Check("F2.2", "s2 terminally spans to s", true,
                 tg_analysis::TerminallySpansTo(fig.graph, fig.s2, fig.s));
    report.Check("F2.2", "Theorem 2.3 composes: can_share(r, p, q)", true,
                 tg_analysis::CanShare(fig.graph, Right::kRead, fig.p, fig.q));
  }

  // ---- Figure 3.1 ----
  {
    tg_sim::Fig31 fig = tg_sim::MakeFig31();
    auto path = tg_analysis::FindAdmissibleRwPath(fig.graph, fig.a, fig.c);
    report.Check("F3.1", "path a,b,c has admissible word r> w<", true,
                 path.has_value() && tg::WordToString(path->word()) == "r> w<");
    report.Check("F3.1", "can_know_f(a, c) via the admissible path", true,
                 tg_analysis::CanKnowF(fig.graph, fig.a, fig.c));
    report.Check("F3.1", "no flow the other way (c cannot learn a)", false,
                 tg_analysis::CanKnowF(fig.graph, fig.c, fig.a));
  }

  // ---- Figure 4.1 ----
  {
    tg_hier::LinearOptions options;
    options.levels = 4;
    options.subjects_per_level = 2;
    tg_hier::ClassifiedSystem sys = tg_hier::LinearClassification(options);
    report.Check("F4.1", "4-level linear classification is a secure structure", true,
                 tg_hier::CheckSecure(sys.graph, sys.levels, 1).secure);
    bool up_ok = true;
    bool down_blocked = true;
    for (size_t hi = 1; hi < 4; ++hi) {
      for (tg::VertexId h : sys.level_subjects[hi]) {
        for (tg::VertexId l : sys.level_subjects[hi - 1]) {
          up_ok &= tg_analysis::CanKnowF(sys.graph, h, l);
          down_blocked &= !tg_analysis::CanKnowF(sys.graph, l, h);
        }
      }
    }
    report.Check("F4.1", "every L(k) subject knows every L(k-1) subject", true, up_ok);
    report.Check("F4.1", "no lower subject knows a higher one", true, down_blocked);
  }

  // ---- Figure 4.2 ----
  {
    tg_hier::MilitaryOptions options;
    options.authority_levels = 4;
    options.categories = 2;
    tg_hier::ClassifiedSystem sys = tg_hier::MilitaryClassification(options);
    report.Check("F4.2", "military lattice is a secure structure", true,
                 tg_hier::CheckSecure(sys.graph, sys.levels, 1).secure);
    tg::VertexId a2 = sys.graph.FindVertex("A2s0");
    tg::VertexId b2 = sys.graph.FindVertex("B2s0");
    report.Check("F4.2", "same-authority different-category levels incomparable", false,
                 sys.levels.Comparable(sys.levels.LevelOf(a2), sys.levels.LevelOf(b2)));
    report.Check("F4.2", "no information flows between categories", false,
                 tg_analysis::CanKnow(sys.graph, a2, b2) ||
                     tg_analysis::CanKnow(sys.graph, b2, a2));
  }

  // ---- Figure 5.1 ----
  {
    tg_sim::Fig51 fig = tg_sim::MakeFig51();
    tg::RuleEngine unrestricted(fig.graph, nullptr);
    bool leak = unrestricted
                    .Apply(tg::RuleApplication::Take(fig.x, fig.z, fig.y, tg::kWrite))
                    .ok();
    report.Check("F5.1", "unrestricted: x obtains w over lower-level y", true, leak);
    auto policy = std::make_shared<tg_hier::BishopRestrictionPolicy>(fig.levels);
    tg::RuleEngine restricted(fig.graph, policy);
    bool w_blocked =
        !restricted.Apply(tg::RuleApplication::Take(fig.x, fig.z, fig.y, tg::kWrite)).ok();
    bool e_allowed = restricted
                         .Apply(tg::RuleApplication::Take(fig.x, fig.z, fig.y,
                                                          tg::RightSet(Right::kExecute)))
                         .ok();
    report.Check("F5.1", "restricted: the w take is vetoed (restriction b)", true, w_blocked);
    report.Check("F5.1", "restricted: x still obtains the execute right", true, e_allowed);
  }

  // ---- Figure 6.1 ----
  {
    tg_sim::Fig61 fig = tg_sim::MakeFig61();
    report.Check("F6.1", "no de facto flow exists from lo to secret", false,
                 tg_analysis::CanKnowF(fig.graph, fig.lo, fig.secret));
    tg::RuleEngine engine(fig.graph, nullptr);
    (void)engine.Apply(tg::RuleApplication::Take(fig.lo, fig.hi, fig.secret, tg::kRead));
    report.Check("F6.1", "one de jure take completes the breach", true,
                 tg_analysis::CanKnowF(engine.graph(), fig.lo, fig.secret));
    auto policy = std::make_shared<tg_hier::BishopRestrictionPolicy>(fig.levels);
    tg::RuleEngine restricted(fig.graph, policy);
    report.Check("F6.1", "the de jure restriction vetoes that take", false,
                 restricted.Apply(tg::RuleApplication::Take(fig.lo, fig.hi, fig.secret,
                                                            tg::kRead))
                     .ok());
  }

  return report.Finish();
}

// Policy-server benchmark: QPS and latency of the always-on daemon under a
// multi-connection Zipfian load, across three workloads —
//
//   read_only        100% queries (can_know / can_knowf / can_share /
//                    knowable), every connection a reader
//   mixed            90% reads / 10% admissions, all writes through ONE
//                    writer connection (deterministic write order)
//   admission_heavy  50% reads / 50% admissions, the writer wrapping every
//                    32 rules in a wire transaction (group commits)
//
// The server runs in-process (unix-domain socket), so the bench can reset
// the metrics registry per run and read the server.request_ns histogram —
// the PR-5 percentile plumbing — for P50/P95/P99 next to driver-side QPS.
// Every timed number is min-of-3 (max-of-3 for QPS).
//
// Checks in-binary that the wire answers are bit-equivalent to in-process
// calls: the recorded admission stream replays through a shadow
// AdmissionGate (same options, same order) which must land on the same
// epoch and decision counts, and sampled queries against the final graph
// must return the same verdicts the analysis library computes directly.
// Exits non-zero on any failure.
//
// The read-only workload additionally runs with a single-worker engine;
// on multi-core hardware the multi-worker QPS must be >= 2x that (the
// check is skipped — but both rows still recorded — when
// hardware_concurrency < 2, e.g. single-core CI).
//
// Each workload row also records the rolling-window view of the same
// histogram (trailing-10s rate + percentiles) next to the cumulative one.
//
//   bench_server           # full sweep, writes BENCH_server.json
//   bench_server --smoke   # tiny load, BENCH_server_smoke.json; equivalence
//                          # checks plus two telemetry guards: metrics-on
//                          # read QPS must stay >= 0.97x metrics-off, and a
//                          # 1 ns slow-query threshold must capture entries
//                          # (used by the bench_server_smoke ctest)

#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/exp_common.h"
#include "src/take_grant.h"
#include "src/util/flight_recorder.h"
#include "src/util/metrics.h"
#include "src/util/prng.h"
#include "src/util/strings.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Zipf(s=1) sampler over [0, n) via inverse-CDF on the harmonic weights:
// vertex 0 is the hot key, the tail is long — the classic skewed key
// distribution for cache-friendly serving benchmarks.
class Zipf {
 public:
  Zipf(size_t n, uint64_t seed) : prng_(seed), cdf_(n) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / static_cast<double>(i + 1);
      cdf_[i] = sum;
    }
    total_ = sum;
  }

  size_t Next() {
    const double u = static_cast<double>(prng_.NextBelow(1u << 30)) /
                     static_cast<double>(1u << 30) * total_;
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

  tg_util::Prng& prng() { return prng_; }

 private:
  tg_util::Prng prng_;
  std::vector<double> cdf_;
  double total_ = 0.0;
};

// One read request line over the initial vertex set, Zipfian endpoints.
std::string MakeReadLine(Zipf& zipf, const std::vector<std::string>& names) {
  const std::string& a = names[zipf.Next()];
  const std::string& b = names[zipf.Next()];
  switch (zipf.prng().NextBelow(4)) {
    case 0:
      return "can_know " + a + " " + b;
    case 1:
      return "can_knowf " + a + " " + b;
    case 2:
      return "can_share r " + a + " " + b;
    default:
      return "knowable " + a;
  }
}

// One admit request line: half guaranteed-acceptable creates (they advance
// the epoch, forcing real publications), half random take/grant rules that
// exercise the veto / rejection paths.
std::string MakeAdmitLine(Zipf& zipf, const std::vector<std::string>& subjects,
                          const std::vector<std::string>& names, size_t* create_seq) {
  const std::string& s = subjects[zipf.Next() % subjects.size()];
  if (zipf.prng().NextBelow(2) == 0) {
    return "admit create " + s + " object rw bx" + std::to_string((*create_seq)++);
  }
  const std::string& y = names[zipf.Next()];
  const std::string& z = names[zipf.Next()];
  const char* rights = zipf.prng().NextBelow(2) == 0 ? "r" : "w";
  return (zipf.prng().NextBelow(2) == 0 ? "admit take " : "admit grant ") + s + " " + y +
         " " + z + " " + rights;
}

struct WorkloadResult {
  double qps = 0.0;
  uint64_t p50_ns = 0, p95_ns = 0, p99_ns = 0;
  // Rolling-window view of the same histogram at the moment the drivers
  // finished: trailing-10s server-side rate and percentiles.
  double w10s_rate = 0.0;
  uint64_t w10s_p50 = 0, w10s_p95 = 0, w10s_p99 = 0;
  std::string slowlog;  // raw `slowlog 4` response (slow-query capture check)
  uint64_t requests = 0;
  uint64_t write_lines = 0;
  uint64_t final_epoch = 0;
  uint64_t batches = 0;
  bool ok = true;
  std::string error;
  std::vector<std::string> write_log;  // admit/txn lines, in send order
};

struct WorkloadSpec {
  const char* name;
  int write_pct = 0;   // share of requests that are admissions
  bool use_txns = false;
};

struct LoadConfig {
  size_t connections = 4;
  size_t requests = 20000;
  size_t pipeline = 64;  // request lines per frame
  size_t threads = 0;    // engine workers (0 = default)
};

WorkloadResult RunWorkload(const tg::ProtectionGraph& graph,
                           const tg_hier::LevelAssignment& levels,
                           const WorkloadSpec& spec, const LoadConfig& load,
                           uint64_t seed) {
  WorkloadResult result;
  tg_server::PolicyServer::Options options;
  options.unix_path = "/tmp/tg_bench_server_" + std::to_string(::getpid()) + ".sock";
  options.engine.threads = load.threads;
  tg_server::PolicyServer server(graph, levels, options);
  if (auto s = server.Start(); !s.ok()) {
    result.ok = false;
    result.error = s.ToString();
    return result;
  }

  std::vector<std::string> names;
  std::vector<std::string> subjects;
  for (tg::VertexId v = 0; v < static_cast<tg::VertexId>(graph.VertexCount()); ++v) {
    names.push_back(graph.NameOf(v));
    if (graph.IsSubject(v)) {
      subjects.push_back(graph.NameOf(v));
    }
  }

  const uint64_t writes = result.write_lines =
      static_cast<uint64_t>(load.requests) * static_cast<uint64_t>(spec.write_pct) / 100;
  const uint64_t reads = load.requests - writes;
  result.requests = load.requests;

  // Pre-generate the writer's admission stream so the timed region spends
  // its cycles on serving, and so the shadow replay sees the exact lines.
  if (writes > 0) {
    Zipf zipf(names.size(), seed * 31 + 7);
    size_t create_seq = 0;
    uint64_t admits = 0;
    for (uint64_t i = 0; i < writes; ++i) {
      if (spec.use_txns && admits % 32 == 0) {
        result.write_log.push_back("txn begin");
      }
      result.write_log.push_back(MakeAdmitLine(zipf, subjects, names, &create_seq));
      ++admits;
      if (spec.use_txns && (admits % 32 == 0 || i + 1 == writes)) {
        result.write_log.push_back("txn commit");
      }
    }
  }

  tg_util::MetricsRegistry::Instance().ResetAll();
  std::atomic<bool> failed{false};
  std::string first_error;
  std::mutex error_mu;
  auto report = [&](const tg_util::Status& s) {
    if (!failed.exchange(true)) {
      std::lock_guard<std::mutex> lock(error_mu);
      first_error = s.ToString();
    }
  };

  Clock::time_point t0 = Clock::now();
  std::vector<std::thread> drivers;
  const size_t readers = load.connections;
  for (size_t t = 0; t < readers; ++t) {
    const uint64_t share = reads / readers + (t < reads % readers ? 1 : 0);
    drivers.emplace_back([&, t, share] {
      tg_server::PolicyClient client;
      if (auto s = client.ConnectUnix(server.unix_path()); !s.ok()) {
        report(s);
        return;
      }
      Zipf zipf(names.size(), seed + t);
      uint64_t sent = 0;
      std::vector<std::string> frame;
      while (sent < share && !failed.load(std::memory_order_relaxed)) {
        frame.clear();
        const uint64_t take = std::min<uint64_t>(load.pipeline, share - sent);
        for (uint64_t i = 0; i < take; ++i) {
          frame.push_back(MakeReadLine(zipf, names));
        }
        auto responses = client.CallBatch(frame);
        if (!responses.ok()) {
          report(responses.status());
          return;
        }
        sent += take;
      }
    });
  }
  if (writes > 0) {
    drivers.emplace_back([&] {
      tg_server::PolicyClient client;
      if (auto s = client.ConnectUnix(server.unix_path()); !s.ok()) {
        report(s);
        return;
      }
      // Smaller write frames: admissions answer serially, and the point of
      // the single writer is ordering, not syscall amortization.
      const size_t kWriteFrame = 8;
      size_t at = 0;
      while (at < result.write_log.size() && !failed.load(std::memory_order_relaxed)) {
        const size_t take = std::min(kWriteFrame, result.write_log.size() - at);
        std::vector<std::string> frame(result.write_log.begin() + at,
                                       result.write_log.begin() + at + take);
        auto responses = client.CallBatch(frame);
        if (!responses.ok()) {
          report(responses.status());
          return;
        }
        at += take;
      }
    });
  }
  for (std::thread& t : drivers) {
    t.join();
  }
  const double elapsed = SecondsSince(t0);

  if (failed.load()) {
    result.ok = false;
    result.error = first_error;
    server.Stop();
    return result;
  }

  result.qps = static_cast<double>(load.requests + result.write_log.size() -
                                   result.write_lines) /  // txn lines count too
               elapsed;
  tg_util::Histogram& h = tg_util::GetHistogram("server.request_ns");
  result.p50_ns = h.P50();
  result.p95_ns = h.P95();
  result.p99_ns = h.P99();
  const tg_util::WindowedHistogram::Snapshot w =
      tg_util::GetWindowedHistogram("server.request_ns").Window(10 * 1000000000ull);
  result.w10s_rate = w.rate_per_sec;
  result.w10s_p50 = w.p50;
  result.w10s_p95 = w.p95;
  result.w10s_p99 = w.p99;
  result.batches = tg_util::MetricsRegistry::Instance().CounterValue(
      "server.batches_dispatched");

  // ---- Equivalence: wire answers == in-process answers. ----
  // 1. Replay the recorded write stream through a shadow gate; the server
  //    executed the same lines in the same order (single writer), so the
  //    published epoch and the final graph must match exactly.
  tg_hier::AdmissionGate::Options gate_options;  // defaults match the server's
  auto shadow = tg_hier::AdmissionGate::Create(graph, levels, gate_options);
  for (const std::string& line : result.write_log) {
    std::vector<std::string_view> tok = tg_util::SplitWhitespace(line);
    if (tok[0] == "txn") {
      if (tok[1] == "begin") {
        (void)shadow->Begin();
      } else {
        (void)shadow->Commit();
      }
      continue;
    }
    auto rule = tg_server::ParseRuleClause(
        std::vector<std::string_view>(tok.begin() + 1, tok.end()), shadow->graph());
    if (!rule.ok()) {
      continue;  // server rejected it identically (name resolution is shared)
    }
    if (shadow->in_txn()) {
      (void)shadow->Submit(std::move(rule).value());
    } else {
      (void)shadow->Admit(std::move(rule).value());
    }
  }

  tg_server::PolicyClient checker;
  if (auto s = checker.ConnectUnix(server.unix_path()); !s.ok()) {
    result.ok = false;
    result.error = s.ToString();
    server.Stop();
    return result;
  }
  auto stats = checker.Call("stats");
  if (!stats.ok()) {
    result.ok = false;
    result.error = stats.status().ToString();
    server.Stop();
    return result;
  }
  result.final_epoch =
      static_cast<uint64_t>(std::atoll(tg_server::ExtractJsonField(*stats, "epoch").c_str()));
  if (result.final_epoch != shadow->graph().epoch()) {
    result.ok = false;
    result.error = "epoch divergence: server " + std::to_string(result.final_epoch) +
                   " vs shadow " + std::to_string(shadow->graph().epoch());
    server.Stop();
    return result;
  }

  // 2. Sampled queries against the final graph: the wire verdict must be
  //    bit-identical to the analysis library on the shadow graph.
  const tg::ProtectionGraph& fg = shadow->graph();
  tg_analysis::AnalysisCache cache;
  Zipf zipf(names.size(), seed ^ 0x5eed);
  for (int i = 0; i < 64; ++i) {
    const std::string line = MakeReadLine(zipf, names);
    auto response = checker.Call(line);
    if (!response.ok()) {
      result.ok = false;
      result.error = response.status().ToString();
      break;
    }
    std::vector<std::string_view> tok = tg_util::SplitWhitespace(line);
    tg::VertexId x = fg.FindVertex(tok.size() > 2 && tok[0] == "can_share" ? tok[2] : tok[1]);
    std::string expect;
    if (tok[0] == "can_know") {
      expect = cache.CanKnow(fg, x, fg.FindVertex(tok[2])) ? "true" : "false";
    } else if (tok[0] == "can_knowf") {
      expect = tg_analysis::CanKnowF(fg, x, fg.FindVertex(tok[2])) ? "true" : "false";
    } else if (tok[0] == "can_share") {
      expect = tg_analysis::CanShare(fg, *tg::RightFromChar('r'), x, fg.FindVertex(tok[3]))
                   ? "true"
                   : "false";
    } else {  // knowable
      const std::vector<bool>& row = cache.Knowable(fg, x);
      expect = std::to_string(std::count(row.begin(), row.end(), true));
    }
    const std::string got = tok[0] == "knowable"
                                ? tg_server::ExtractJsonField(*response, "count")
                                : tg_server::ExtractJsonField(*response, "verdict");
    if (got != expect) {
      result.ok = false;
      result.error = "verdict divergence on '" + line + "': wire " + got +
                     " vs in-process " + expect;
      break;
    }
  }

  // Grab the slow-query log while the server is still up; callers that ran
  // with TG_SLOW_QUERY_NS set assert on its `captured` count.
  if (auto slow = checker.Call("slowlog 4"); slow.ok()) {
    result.slowlog = *slow;
  }

  server.Stop();
  return result;
}

// Result of the in-server observability-tax measurement (smoke mode).
struct OverheadResult {
  double qps_on = 0.0;   // lines per process-CPU-second, metrics on
  double qps_off = 0.0;  // lines per process-CPU-second, metrics off
  double ratio = 0.0;    // qps_on / qps_off from median per-phase CPU time
  bool ok = true;
  std::string error;
};

// Nanosecond-resolution CPU seconds consumed by the whole process (every
// thread: client, event loop, dispatcher).  The overhead gate compares CPU
// time, not wall time: the instrumentation tax is extra cycles, while wall
// time on a single shared core also swings with scheduler wakeup patterns
// that are bistable across runs and dwarf a 3% effect.
double ProcessCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

// Measures the TG_METRICS tax inside one live server: identical
// pre-generated read frames are served in alternating metrics-on /
// metrics-off phases over one warm connection, and each mode's cost is the
// median per-phase process CPU time.  Interleaving means slow machine
// moments hit both modes alike, so the ratio reflects the instrumentation
// itself rather than run-to-run setup noise.
OverheadResult RunOverheadPhases(const tg::ProtectionGraph& graph,
                                 const tg_hier::LevelAssignment& levels) {
  OverheadResult result;
  tg_server::PolicyServer::Options options;
  options.unix_path =
      "/tmp/tg_bench_server_oh_" + std::to_string(::getpid()) + ".sock";
  tg_server::PolicyServer server(graph, levels, options);
  if (auto s = server.Start(); !s.ok()) {
    result.ok = false;
    result.error = s.ToString();
    return result;
  }
  std::vector<std::string> names;
  for (tg::VertexId v = 0; v < static_cast<tg::VertexId>(graph.VertexCount()); ++v) {
    names.push_back(graph.NameOf(v));
  }
  tg_server::PolicyClient client;
  if (auto s = client.ConnectUnix(server.unix_path()); !s.ok()) {
    result.ok = false;
    result.error = s.ToString();
    server.Stop();
    return result;
  }

  // One phase worth of frames, reused verbatim by every phase so both
  // modes serve byte-identical requests.
  Zipf zipf(names.size(), 77);
  const size_t kFrame = 32;
  // Phases last tens of milliseconds — long enough to average over
  // scheduler quanta and timer ticks, whose alignment otherwise dominates
  // an 8 ms phase on a single-core box (client and server share the core).
  const size_t kFramesPerPhase = 120;
  std::vector<std::vector<std::string>> frames(kFramesPerPhase);
  for (std::vector<std::string>& frame : frames) {
    for (size_t i = 0; i < kFrame; ++i) {
      frame.push_back(MakeReadLine(zipf, names));
    }
  }

  // ABBA ordering (on,off,off,on per block of four): back-to-back phases
  // drift measurably warmer, so a fixed on-first order would flatter
  // whichever mode runs second.  Alternating the order inside each block
  // cancels that linear bias.  The first block is warmup, and the reported
  // ratio compares the MEDIAN phase time per mode — a descheduled or
  // timer-tick-unlucky phase (routine on a single shared core) is then
  // discarded outright instead of polluting an average.
  const int kBlocks = 20;  // block 0 is warmup
  std::vector<double> phases_on, phases_off;
  for (int block = 0; block < kBlocks && result.ok; ++block) {
    for (int pos = 0; pos < 4 && result.ok; ++pos) {
      const bool on = pos == 0 || pos == 3;
      tg_util::SetMetricsEnabled(on);
      const double cpu0 = ProcessCpuSeconds();
      for (const std::vector<std::string>& frame : frames) {
        auto responses = client.CallBatch(frame);
        if (!responses.ok()) {
          result.ok = false;
          result.error = responses.status().ToString();
          break;
        }
      }
      const double elapsed = ProcessCpuSeconds() - cpu0;
      if (std::getenv("TG_OH_DEBUG") != nullptr) {
        std::fprintf(stderr, "block %2d %s %.4fs\n", block, on ? "on " : "off", elapsed);
      }
      if (block == 0) {
        continue;
      }
      (on ? phases_on : phases_off).push_back(elapsed);
    }
  }
  tg_util::SetMetricsEnabled(true);
  server.Stop();
  if (result.ok && !phases_on.empty() && !phases_off.empty()) {
    auto median = [](std::vector<double>& v) {
      std::sort(v.begin(), v.end());
      return v[v.size() / 2];
    };
    const double lines_per_phase = static_cast<double>(kFrame) * kFramesPerPhase;
    result.qps_on = lines_per_phase / median(phases_on);
    result.qps_off = lines_per_phase / median(phases_off);
    result.ratio = result.qps_on / result.qps_off;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  LoadConfig load;
  bool threads_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_server: %s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--connections") {
      load.connections = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--requests") {
      load.requests = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--pipeline") {
      load.pipeline = static_cast<size_t>(std::atol(next()));
    } else if (arg == "--threads") {
      load.threads = static_cast<size_t>(std::atol(next()));
      threads_given = true;
    } else {
      std::fprintf(stderr, "bench_server: unknown flag '%s'\n", arg.c_str());
      return 1;
    }
  }

  const size_t hw = std::thread::hardware_concurrency();
  if (threads_given && load.threads > hw) {
    std::fprintf(stderr,
                 "bench_server: --threads %zu exceeds hardware_concurrency %zu; "
                 "oversubscribed workers would only fabricate QPS\n",
                 load.threads, hw);
    return 1;
  }

  exp::Reporter reporter(smoke ? "policy server smoke (wire == in-process guard)"
                               : "policy server: QPS / latency under Zipfian load");
  exp::JsonlWriter jsonl(smoke ? "BENCH_server_smoke.json" : "BENCH_server.json");
  const int reps = smoke ? 1 : 3;

  if (smoke) {
    load.connections = 2;
    load.requests = 400;
    load.pipeline = 16;
  }

  exp::JsonObject env_row;
  env_row.Set("record", "env");
  exp::AppendEnvInfo(env_row);
  jsonl.Write(env_row.Set("reps", static_cast<uint64_t>(reps))
                  .Set("server_threads",
                       static_cast<uint64_t>(load.threads == 0
                                                 ? tg_util::ThreadPool::DefaultThreadCount()
                                                 : load.threads))
                  .Set("connections", static_cast<uint64_t>(load.connections))
                  .Set("smoke", smoke));

  tg_sim::HierarchicalGraphOptions hier;
  if (smoke) {
    hier.levels = 2;
    hier.clusters_per_level = 2;
    hier.subjects_per_cluster = 4;
    hier.objects_per_cluster = 2;
  } else {
    hier.levels = 4;
    hier.clusters_per_level = 4;
    hier.subjects_per_cluster = 8;
    hier.objects_per_cluster = 3;
  }
  hier.planted_channels = 0;
  tg_util::Prng prng(4242);
  tg_sim::GeneratedHierarchy h = tg_sim::HierarchicalGraph(hier, prng);
  reporter.Note("setup", "n=" + std::to_string(h.graph.VertexCount()) +
                             " hardware_concurrency=" + std::to_string(hw));

  const WorkloadSpec kWorkloads[] = {
      {"read_only", 0, false},
      {"mixed", 10, false},
      {"admission_heavy", 50, true},
  };

  bool all_ok = true;
  double read_only_qps = 0.0;
  for (const WorkloadSpec& spec : kWorkloads) {
    WorkloadResult best;
    best.qps = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      WorkloadResult r = RunWorkload(h.graph, h.levels, spec, load, 1000 + rep);
      if (!r.ok) {
        best = std::move(r);
        break;
      }
      if (r.qps > best.qps) {
        best = std::move(r);
      }
    }
    all_ok = all_ok && best.ok;
    reporter.Check(spec.name, "wire responses equivalent to in-process calls", true,
                   best.ok);
    if (!best.ok) {
      reporter.Note(spec.name, "error: " + best.error);
    }
    char summary[256];
    std::snprintf(summary, sizeof(summary),
                  "qps=%.0f p50=%.1fus p95=%.1fus p99=%.1fus epoch=%llu batches=%llu",
                  best.qps, best.p50_ns / 1e3, best.p95_ns / 1e3, best.p99_ns / 1e3,
                  static_cast<unsigned long long>(best.final_epoch),
                  static_cast<unsigned long long>(best.batches));
    reporter.Note(spec.name, summary);
    if (std::strcmp(spec.name, "read_only") == 0) {
      read_only_qps = best.qps;
    }
    exp::JsonObject row;
    row.Set("record", "workload")
        .Set("workload", spec.name)
        .Set("write_pct", spec.write_pct)
        .Set("use_txns", spec.use_txns)
        .Set("connections", static_cast<uint64_t>(load.connections))
        .Set("pipeline", static_cast<uint64_t>(load.pipeline))
        .Set("requests", best.requests)
        .Set("write_lines", best.write_lines)
        .Set("qps", best.qps)
        .Set("request_ns_p50", best.p50_ns)
        .Set("request_ns_p95", best.p95_ns)
        .Set("request_ns_p99", best.p99_ns)
        .Set("w10s_rate", best.w10s_rate)
        .Set("w10s_p50", best.w10s_p50)
        .Set("w10s_p95", best.w10s_p95)
        .Set("w10s_p99", best.w10s_p99)
        .Set("final_epoch", best.final_epoch)
        .Set("batches", best.batches)
        .Set("equivalent", best.ok);
    exp::AppendEnvInfo(row);
    jsonl.Write(row);
  }

  // Worker scaling: read-only with a single engine worker vs the default
  // pool.  The >= 2x claim only applies on multi-core hardware; a
  // single-core box records both rows and skips the check.
  if (!smoke) {
    LoadConfig single = load;
    single.threads = 1;
    WorkloadResult best;
    best.qps = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      WorkloadResult r = RunWorkload(h.graph, h.levels, kWorkloads[0], single, 2000 + rep);
      if (!r.ok) {
        best = std::move(r);
        break;
      }
      if (r.qps > best.qps) {
        best = std::move(r);
      }
    }
    all_ok = all_ok && best.ok;
    char summary[160];
    std::snprintf(summary, sizeof(summary), "single-worker qps=%.0f (multi %.0f, %.2fx)",
                  best.qps, read_only_qps,
                  best.qps > 0 ? read_only_qps / best.qps : 0.0);
    reporter.Note("scaling", summary);
    exp::JsonObject row;
    row.Set("record", "workload")
        .Set("workload", "read_only_1worker")
        .Set("write_pct", 0)
        .Set("use_txns", false)
        .Set("connections", static_cast<uint64_t>(load.connections))
        .Set("pipeline", static_cast<uint64_t>(load.pipeline))
        .Set("requests", best.requests)
        .Set("write_lines", best.write_lines)
        .Set("qps", best.qps)
        .Set("request_ns_p50", best.p50_ns)
        .Set("request_ns_p95", best.p95_ns)
        .Set("request_ns_p99", best.p99_ns)
        .Set("w10s_rate", best.w10s_rate)
        .Set("w10s_p50", best.w10s_p50)
        .Set("w10s_p95", best.w10s_p95)
        .Set("w10s_p99", best.w10s_p99)
        .Set("final_epoch", best.final_epoch)
        .Set("batches", best.batches)
        .Set("equivalent", best.ok);
    exp::AppendEnvInfo(row);
    jsonl.Write(row);
    if (hw >= 2) {
      reporter.Check("scaling", "multi-worker read QPS >= 2x single-worker", true,
                     read_only_qps >= 2.0 * best.qps);
    } else {
      reporter.Note("scaling", "hardware_concurrency < 2: scaling check skipped");
    }
  }

  if (smoke) {
    // ---- Telemetry overhead: TG_METRICS=1 vs TG_METRICS=0 on read_only. ----
    // Both modes are measured inside ONE live server over the same warm
    // connection, in interleaved on/off phases serving identical frames:
    // server startup, cache warmup, and thread placement — the dominant
    // run-to-run noise on small boxes — cancel out, and the phase averages
    // isolate the instrumentation tax itself.
    // Noise on a shared single core is one-sided for this purpose: a
    // contaminated attempt exaggerates the gap between modes, it cannot
    // hide a real instrumentation regression across every retry.  So the
    // gate takes the best of up to four attempts, and a true >3% tax
    // (e.g. sampling accidentally disabled) still fails all of them.
    OverheadResult overhead = RunOverheadPhases(h.graph, h.levels);
    for (int attempt = 1; attempt < 4 && overhead.ok && overhead.ratio < 0.97; ++attempt) {
      OverheadResult retry = RunOverheadPhases(h.graph, h.levels);
      if (!retry.ok || retry.ratio > overhead.ratio) {
        overhead = retry;
      }
    }
    const double qps_on = overhead.qps_on;
    const double qps_off = overhead.qps_off;
    const bool overhead_ok = overhead.ok;
    if (!overhead_ok) {
      reporter.Note("metrics_overhead", "error: " + overhead.error);
    }
    const double ratio = overhead.ratio;
    all_ok = all_ok && overhead_ok;
    reporter.Check("metrics_overhead", "metrics-on read QPS >= 0.97x metrics-off", true,
                   overhead_ok && ratio >= 0.97);
    char summary[160];
    std::snprintf(summary, sizeof(summary), "qps on=%.0f off=%.0f median phase ratio=%.3f",
                  qps_on, qps_off, ratio);
    reporter.Note("metrics_overhead", summary);
    exp::JsonObject overhead_row;
    overhead_row.Set("record", "metrics_overhead")
        .Set("qps_metrics_on", qps_on)
        .Set("qps_metrics_off", qps_off)
        .Set("ratio", ratio);
    exp::AppendEnvInfo(overhead_row);
    jsonl.Write(overhead_row);

    // ---- Slow-query capture: a 1 ns threshold captures everything. ----
    tg_util::SetSlowQueryThresholdNs(1);
    LoadConfig tiny = load;
    tiny.requests = 64;
    WorkloadResult slow = RunWorkload(h.graph, h.levels, kWorkloads[0], tiny, 4242);
    tg_util::SetSlowQueryThresholdNs(0);
    const uint64_t captured = static_cast<uint64_t>(
        std::atoll(tg_server::ExtractJsonField(slow.slowlog, "captured").c_str()));
    all_ok = all_ok && slow.ok;
    reporter.Check("slow_query", "TG_SLOW_QUERY_NS=1 captures queries into slowlog", true,
                   slow.ok && captured >= 1);
    reporter.Note("slow_query", "captured=" + std::to_string(captured));
  }

  const int failures = reporter.Finish();
  return all_ok ? failures : 1;
}

// Extension experiments (beyond the paper's own claims):
//
//   STEAL   can_steal — theft of authority under the strong reading (no
//           initial owner ever grants); fast necessary filter vs the
//           bounded exhaustive certificate
//   RULES   de facto rule-set ablation (section 6: "merely one possible
//           set"): flow coverage of each rule subset on random graphs
//   DECL    reclassification analysis (section 6's open question): what
//           blocks lowering/raising a document's level, and what the
//           revocation protocol can and cannot fix

#include <cstdio>

#include "bench/exp_common.h"
#include "src/take_grant.h"

int main() {
  exp::Reporter report("extensions");
  using tg::Right;
  using tg::RuleKind;
  using tg::VertexId;

  // ---- can_steal ----
  {
    tg_util::Prng prng(1001);
    tg_sim::RandomGraphOptions options;
    options.subjects = 3;
    options.objects = 2;
    options.edge_factor = 1.2;
    tg_analysis::OracleOptions oracle;
    oracle.max_creates = 1;
    oracle.max_states = 25000;
    int pairs = 0;
    int thefts = 0;
    int shares = 0;
    int filter_misses = 0;
    for (int trial = 0; trial < 10; ++trial) {
      tg::ProtectionGraph g = tg_sim::RandomGraph(options, prng);
      for (VertexId x = 0; x < g.VertexCount(); ++x) {
        for (VertexId y = 0; y < g.VertexCount(); ++y) {
          if (x == y) {
            continue;
          }
          ++pairs;
          bool steal = tg_analysis::OracleCanSteal(g, Right::kRead, x, y, oracle);
          thefts += steal ? 1 : 0;
          shares += tg_analysis::CanShare(g, Right::kRead, x, y) ? 1 : 0;
          if (steal && !tg_analysis::CanStealNecessary(g, Right::kRead, x, y)) {
            ++filter_misses;
          }
        }
      }
    }
    report.Note("STEAL", "pairs=" + std::to_string(pairs) + " shareable=" +
                             std::to_string(shares) + " stealable=" + std::to_string(thefts) +
                             " (theft is strictly rarer than sharing)");
    report.Check("STEAL", "the fast necessary filter rejects no real theft", true,
                 filter_misses == 0);
    report.Check("STEAL", "some rights are shareable yet not stealable", true,
                 thefts < shares);
  }

  // ---- de facto rule-set ablation ----
  {
    tg_util::Prng prng(1002);
    tg_sim::RandomGraphOptions options;
    options.subjects = 5;
    options.objects = 4;
    options.edge_factor = 1.6;
    constexpr int kTrials = 20;
    struct Row {
      const char* name;
      tg_analysis::DeFactoMask mask;
      size_t pairs = 0;
    };
    tg_analysis::DeFactoMask spy_post = tg_analysis::DeFactoMask::None();
    spy_post.spy = true;
    spy_post.post = true;
    Row rows[] = {
        {"none", tg_analysis::DeFactoMask::None()},
        {"spy", tg_analysis::DeFactoMask::Only(RuleKind::kSpy)},
        {"post", tg_analysis::DeFactoMask::Only(RuleKind::kPost)},
        {"pass", tg_analysis::DeFactoMask::Only(RuleKind::kPass)},
        {"find", tg_analysis::DeFactoMask::Only(RuleKind::kFind)},
        {"spy+post", spy_post},
        {"all", tg_analysis::DeFactoMask::All()},
    };
    for (int trial = 0; trial < kTrials; ++trial) {
      tg::ProtectionGraph g = tg_sim::RandomGraph(options, prng);
      for (Row& row : rows) {
        row.pairs += tg_analysis::KnowablePairCount(g, row.mask);
      }
    }
    std::printf("RULES      knowable pairs over %d random graphs:\n", kTrials);
    for (const Row& row : rows) {
      std::printf("RULES        %-10s %zu\n", row.name, row.pairs);
    }
    size_t all_pairs = rows[6].pairs;
    report.Check("RULES", "every proper subset loses flows vs the full set", true,
                 rows[1].pairs < all_pairs && rows[2].pairs < all_pairs &&
                     rows[3].pairs < all_pairs && rows[4].pairs < all_pairs &&
                     rows[5].pairs < all_pairs);
    report.Check("RULES", "even 'none' has flows (direct r/w edges)", true,
                 rows[0].pairs > 0 && rows[0].pairs < rows[1].pairs);
  }

  // ---- conspirator counting ----
  {
    // How many subjects must actively participate?  The canonical ladder:
    // direct take (1), duality-lemma reversal (2), grant relay (3).
    tg::ProtectionGraph g1;
    VertexId x1 = g1.AddSubject("x");
    VertexId s1 = g1.AddObject("s");
    VertexId y1 = g1.AddObject("y");
    (void)g1.AddExplicit(x1, s1, tg::kTake);
    (void)g1.AddExplicit(s1, y1, tg::kRead);
    auto c1 = tg_analysis::MinConspirators(g1, Right::kRead, x1, y1);

    tg::ProtectionGraph g2;
    VertexId x2 = g2.AddSubject("x");
    VertexId s2 = g2.AddSubject("s");
    VertexId y2 = g2.AddObject("y");
    (void)g2.AddExplicit(s2, x2, tg::kTake);
    (void)g2.AddExplicit(s2, y2, tg::kRead);
    auto c2 = tg_analysis::MinConspirators(g2, Right::kRead, x2, y2);

    tg::ProtectionGraph g3;
    VertexId x3 = g3.AddSubject("x");
    VertexId a3 = g3.AddObject("a");
    VertexId m3 = g3.AddSubject("m");
    VertexId s3 = g3.AddSubject("s");
    VertexId y3 = g3.AddObject("y");
    (void)g3.AddExplicit(s3, m3, tg::kGrant);
    (void)g3.AddExplicit(m3, a3, tg::kGrant);
    (void)g3.AddExplicit(x3, a3, tg::kTake);
    (void)g3.AddExplicit(s3, y3, tg::kRead);
    auto c3 = tg_analysis::MinConspirators(g3, Right::kRead, x3, y3);

    report.Check("CONSP", "direct take needs exactly 1 active conspirator", true,
                 c1.has_value() && *c1 == 1);
    report.Check("CONSP", "duality-lemma reversal needs exactly 2", true,
                 c2.has_value() && *c2 == 2);
    report.Check("CONSP", "a three-island grant relay needs exactly 3", true,
                 c3.has_value() && *c3 == 3);

    // Operational cross-check: the simulator with a conspirator budget of
    // k-1 fails where the analysis says k are needed, and succeeds with k.
    auto attack = [&](const tg::ProtectionGraph& graph,
                      std::vector<VertexId> corrupt, VertexId from, VertexId to) {
      tg_hier::LevelAssignment flat(graph.VertexCount(), 1);
      (void)flat.Finalize();
      tg_sim::ReferenceMonitor monitor(graph, std::make_shared<tg::AllowAllPolicy>());
      tg_sim::AttackOptions attack_options;
      attack_options.strategy = tg_sim::AdversaryStrategy::kGreedy;
      attack_options.corrupt = std::move(corrupt);
      attack_options.max_steps = 80;
      tg_util::Prng prng(9);
      return tg_sim::RunConspiracy(monitor, flat, from, to, attack_options, prng).breached;
    };
    report.Check("CONSP", "simulator: duality graph, 1 corrupt subject fails", false,
                 attack(g2, {x2}, x2, y2));
    report.Check("CONSP", "simulator: duality graph, both corrupt succeeds", true,
                 attack(g2, {x2, s2}, x2, y2));
    report.Check("CONSP", "simulator: relay graph, 2 corrupt fail", false,
                 attack(g3, {x3, s3}, x3, y3));
    report.Check("CONSP", "simulator: relay graph, all 3 succeed", true,
                 attack(g3, {x3, m3, s3}, x3, y3));
  }

  // ---- reclassification ----
  {
    tg_hier::LinearOptions options;
    options.levels = 3;
    options.subjects_per_level = 2;
    tg_hier::ClassifiedSystem sys = tg_hier::LinearClassification(options);
    VertexId doc = sys.level_documents[1];
    auto lower = tg_hier::AnalyzeReclassification(sys.graph, sys.levels, doc, 0);
    report.Check("DECL", "lowering a written document is unsafe (write-down writers)",
                 false, lower.safe);
    report.Note("DECL", "lowering blockers: " + std::to_string(lower.violating_edges.size()) +
                            " edges, " + std::to_string(lower.revocable_writes.size()) +
                            " revocable");
    auto raise = tg_hier::AnalyzeReclassification(sys.graph, sys.levels, doc, 2);
    report.Check("DECL", "raising is unsafe (prior readers hold private copies)", false,
                 raise.safe);
    report.Note("DECL",
                "raising blockers: " + std::to_string(raise.irrevocable_knowers.size()) +
                    " irrevocable knowers");
    tg::ProtectionGraph mutated = sys.graph;
    auto after = tg_hier::RevokeAndReanalyze(mutated, sys.levels, doc, 0);
    report.Check("DECL", "the revocation protocol makes *lowering* safe here", true,
                 after.safe);
    // But raising can never be fixed by revocation: knowledge is not an edge.
    auto raise_after = tg_hier::AnalyzeReclassification(mutated, sys.levels, doc, 2);
    report.Check("DECL", "no revocation repairs a *raise* (knowledge is irrevocable)", false,
                 raise_after.irrevocable_knowers.empty());
  }

  // ---- tree (organizational) hierarchies ----
  {
    tg_hier::TreeOptions options;
    options.depth = 3;
    options.fanout = 2;
    tg_hier::ClassifiedSystem sys = tg_hier::TreeClassification(options);
    report.Check("TREE", "a 15-node reporting tree is a secure structure", true,
                 sys.levels.LevelCount() == 15 &&
                     tg_hier::CheckSecure(sys.graph, sys.levels, 1).secure);
    VertexId root = sys.graph.FindVertex("ns0");
    VertexId leaf = sys.graph.FindVertex("n011s0");
    VertexId cousin = sys.graph.FindVertex("n100s0");
    bool up = tg_analysis::CanKnowF(sys.graph, root, leaf);
    bool down = tg_analysis::CanKnow(sys.graph, leaf, root);
    bool sideways = tg_analysis::CanKnow(sys.graph, leaf, cousin) ||
                    tg_analysis::CanKnow(sys.graph, cousin, leaf);
    report.Check("TREE", "the root learns every leaf through the reporting chain", true, up);
    report.Check("TREE", "no leaf learns an ancestor or a cousin", false, down || sideways);
  }

  return report.Finish();
}

// Scaling of the decision procedures (the linear-time claim of the
// Jones-Lipton-Snyder / Lipton-Snyder algorithms that Theorem 2.3 builds
// on): can_share, can_know_f, can_know, and the whole-audit KnowableFrom
// over growing chains and hierarchies.

#include <benchmark/benchmark.h>

#include "src/take_grant.h"

namespace {

void BM_CanShareChain(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  tg::ProtectionGraph g = tg_sim::ChainGraph(n);
  tg::VertexId head = g.FindVertex("head");
  tg::VertexId target = g.FindVertex("target");
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg_analysis::CanShare(g, tg::Right::kRead, head, target));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_CanShareChain)->RangeMultiplier(4)->Range(16, 16 << 8)->Complexity(benchmark::oN);

void BM_CanKnowFHierarchy(benchmark::State& state) {
  const size_t levels = static_cast<size_t>(state.range(0));
  tg_util::Prng prng(1);
  tg_sim::RandomHierarchyOptions options;
  options.levels = levels;
  options.subjects_per_level = 4;
  options.objects_per_level = 2;
  tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
  tg::VertexId top = h.level_subjects.back()[0];
  tg::VertexId bottom = h.level_subjects.front()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg_analysis::CanKnowF(h.graph, top, bottom));
  }
  state.SetComplexityN(static_cast<int64_t>(h.graph.VertexCount()));
}
BENCHMARK(BM_CanKnowFHierarchy)->RangeMultiplier(2)->Range(2, 64)->Complexity(benchmark::oN);

void BM_CanKnowHierarchy(benchmark::State& state) {
  const size_t levels = static_cast<size_t>(state.range(0));
  tg_util::Prng prng(2);
  tg_sim::RandomHierarchyOptions options;
  options.levels = levels;
  options.subjects_per_level = 4;
  options.objects_per_level = 2;
  options.planted_channels = 2;
  tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
  tg::VertexId top = h.level_subjects.back()[0];
  tg::VertexId bottom = h.level_subjects.front()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg_analysis::CanKnow(h.graph, bottom, top));
  }
  state.SetComplexityN(static_cast<int64_t>(h.graph.VertexCount()));
}
BENCHMARK(BM_CanKnowHierarchy)->RangeMultiplier(2)->Range(2, 64);

void BM_KnowableFrom(benchmark::State& state) {
  const size_t levels = static_cast<size_t>(state.range(0));
  tg_util::Prng prng(3);
  tg_sim::RandomHierarchyOptions options;
  options.levels = levels;
  options.subjects_per_level = 4;
  options.objects_per_level = 2;
  tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
  tg::VertexId top = h.level_subjects.back()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg_analysis::KnowableFrom(h.graph, top));
  }
  state.SetComplexityN(static_cast<int64_t>(h.graph.VertexCount()));
}
BENCHMARK(BM_KnowableFrom)->RangeMultiplier(2)->Range(2, 32);

void BM_SecurityCheckFullGraph(benchmark::State& state) {
  const size_t levels = static_cast<size_t>(state.range(0));
  tg_util::Prng prng(4);
  tg_sim::RandomHierarchyOptions options;
  options.levels = levels;
  options.subjects_per_level = 3;
  options.objects_per_level = 1;
  tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg_hier::CheckSecure(h.graph, h.levels, 1).secure);
  }
  state.SetComplexityN(static_cast<int64_t>(h.graph.VertexCount()));
}
BENCHMARK(BM_SecurityCheckFullGraph)->RangeMultiplier(2)->Range(2, 16);

}  // namespace

BENCHMARK_MAIN();

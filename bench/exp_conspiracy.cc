// Conspiracy ablation: breach rate of greedy and random conspiracies
// against hierarchies with a growing number of planted cross-level
// channels, under each of the four policies.
//
// This is the operational counterpart of section 5: the combined (Bishop)
// restriction should hold the breach rate at zero regardless of how many
// bridges exist, while the unrestricted rules leak as soon as any channel
// is planted.

#include <cstdio>

#include "bench/exp_common.h"
#include "src/take_grant.h"

namespace {

using tg_hier::LevelAssignment;

struct PolicyRow {
  const char* name;
  std::function<std::shared_ptr<tg::RulePolicy>(const LevelAssignment&)> make;
};

double BreachRate(const PolicyRow& row, size_t planted, tg_sim::AdversaryStrategy strategy,
                  int trials, uint64_t seed) {
  tg_util::Prng prng(seed);
  int breaches = 0;
  for (int trial = 0; trial < trials; ++trial) {
    tg_sim::RandomHierarchyOptions options;
    options.levels = 2;
    options.subjects_per_level = 3;
    options.objects_per_level = 1;
    options.planted_channels = planted;
    tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
    tg_sim::ReferenceMonitor monitor(h.graph, row.make(h.levels));
    tg_sim::AttackOptions attack;
    attack.strategy = strategy;
    attack.max_steps = 120;
    tg_util::Prng attack_prng(prng.Next());
    tg_sim::AttackOutcome outcome =
        tg_sim::RunConspiracy(monitor, h.levels, h.level_subjects[0][0],
                              h.level_subjects[1][0], attack, attack_prng);
    breaches += outcome.breached ? 1 : 0;
  }
  return static_cast<double>(breaches) / trials;
}

}  // namespace

int main() {
  exp::Reporter report("conspiracy ablation");
  constexpr int kTrials = 12;

  PolicyRow rows[] = {
      {"unrestricted",
       [](const LevelAssignment&) { return std::make_shared<tg::AllowAllPolicy>(); }},
      {"direction",
       [](const LevelAssignment& l) {
         return std::make_shared<tg_hier::DirectionRestrictionPolicy>(l);
       }},
      {"application",
       [](const LevelAssignment& l) {
         return std::make_shared<tg_hier::ApplicationRestrictionPolicy>(l);
       }},
      {"bishop",
       [](const LevelAssignment& l) {
         return std::make_shared<tg_hier::BishopRestrictionPolicy>(l);
       }},
  };

  struct Cell {
    const char* policy;
    size_t planted;
    tg_sim::AdversaryStrategy strategy;
    double rate;
  };
  std::vector<Cell> cells;

  for (tg_sim::AdversaryStrategy strategy :
       {tg_sim::AdversaryStrategy::kGreedy, tg_sim::AdversaryStrategy::kRandom}) {
    std::printf("\nstrategy: %s  (breach rate over %d trials)\n",
                strategy == tg_sim::AdversaryStrategy::kGreedy ? "greedy" : "random", kTrials);
    std::printf("%-14s", "policy");
    for (size_t planted : {0, 1, 2, 4}) {
      std::printf("  channels=%zu", planted);
    }
    std::printf("\n");
    for (const PolicyRow& row : rows) {
      std::printf("%-14s", row.name);
      for (size_t planted : {0, 1, 2, 4}) {
        double rate = BreachRate(
            row, planted, strategy, kTrials,
            1000 + planted * 17 +
                (strategy == tg_sim::AdversaryStrategy::kGreedy ? 0 : 7));
        std::printf("  %10.2f", rate);
        cells.push_back(Cell{row.name, planted, strategy, rate});
      }
      std::printf("\n");
    }
  }
  std::printf("\n");

  // The paper-aligned claims, enforced on the collected table.
  for (const Cell& cell : cells) {
    if (std::string(cell.policy) == "bishop") {
      report.Check("T5.5",
                   "bishop breach rate 0 at channels=" + std::to_string(cell.planted),
                   true, cell.rate == 0.0);
    }
    if (std::string(cell.policy) == "unrestricted" && cell.planted >= 2 &&
        cell.strategy == tg_sim::AdversaryStrategy::kGreedy) {
      report.Check("base",
                   "unrestricted greedy leaks at channels=" + std::to_string(cell.planted),
                   true, cell.rate > 0.5);
    }
  }
  return report.Finish();
}

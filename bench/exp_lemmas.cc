// Reproduces the paper's lemmas:
//
//   L2.1/2.2  take/grant duality: rights transfer backwards over subject-
//             subject t/g edges (with cooperation)
//   L3.3      within an island, can_know holds both ways
//   L4.2      a two-level structure: higher knows lower, never the reverse
//   L5.1      every island lies inside exactly one rwtg-level

#include "bench/exp_common.h"
#include "src/take_grant.h"

int main() {
  exp::Reporter report("paper lemmas");
  using tg::Right;
  using tg::VertexId;

  // ---- Lemmas 2.1 / 2.2 ----
  {
    const struct {
      const char* id;
      tg::RightSet link;
      bool forward;
      const char* desc;
    } cases[] = {
        {"L2.1", tg::kTake, true, "a -t-> b: a pulls b's right directly"},
        {"L2.1", tg::kTake, false, "b -t-> a: right still crosses (depot)"},
        {"L2.2", tg::kGrant, true, "a -g-> b: right crosses via depot"},
        {"L2.2", tg::kGrant, false, "b -g-> a: b pushes the right directly"},
    };
    for (const auto& c : cases) {
      tg::ProtectionGraph g;
      VertexId a = g.AddSubject("a");
      VertexId b = g.AddSubject("b");
      VertexId y = g.AddObject("y");
      (void)(c.forward ? g.AddExplicit(a, b, c.link) : g.AddExplicit(b, a, c.link));
      (void)g.AddExplicit(b, y, tg::kRead);
      auto witness = tg_analysis::BuildCanShareWitness(g, Right::kRead, a, y);
      bool ok = witness.has_value() &&
                witness->VerifyAddsExplicit(g, a, y, Right::kRead).ok();
      report.Check(c.id, c.desc, true, ok);
      if (ok) {
        report.Note(c.id, "  witness: " + std::to_string(witness->size()) + " rule(s)");
      }
    }
  }

  // ---- Lemma 3.3 ----
  {
    tg_util::Prng prng(333);
    bool all_mutual = true;
    int pairs = 0;
    for (int trial = 0; trial < 20; ++trial) {
      tg_sim::RandomGraphOptions options;
      options.subjects = 5;
      options.objects = 2;
      options.edge_factor = 1.3;
      tg::ProtectionGraph g = tg_sim::RandomGraph(options, prng);
      tg_analysis::Islands islands(g);
      for (VertexId x = 0; x < g.VertexCount(); ++x) {
        for (VertexId y = 0; y < g.VertexCount(); ++y) {
          if (x != y && islands.SameIsland(x, y)) {
            ++pairs;
            all_mutual &= tg_analysis::CanKnow(g, x, y);
          }
        }
      }
    }
    report.Check("L3.3",
                 "island members mutually can_know (" + std::to_string(pairs) + " pairs)",
                 true, all_mutual);
  }

  // ---- Lemma 4.2 ----
  {
    tg_hier::LinearOptions options;
    options.levels = 2;
    options.subjects_per_level = 3;
    tg_hier::ClassifiedSystem sys = tg_hier::LinearClassification(options);
    bool up = true;
    bool down = false;
    for (VertexId h : sys.level_subjects[1]) {
      for (VertexId l : sys.level_subjects[0]) {
        up &= tg_analysis::CanKnowF(sys.graph, h, l);
        down |= tg_analysis::CanKnowF(sys.graph, l, h);
      }
    }
    report.Check("L4.2", "two-level structure: every l2 knows every l1", true, up);
    report.Check("L4.2", "no l1 knows any l2", false, down);
  }

  // ---- Lemma 5.1 ----
  {
    tg_util::Prng prng(511);
    bool contained = true;
    int islands_checked = 0;
    for (int trial = 0; trial < 15; ++trial) {
      tg_sim::RandomGraphOptions options;
      options.subjects = 6;
      options.objects = 2;
      options.edge_factor = 1.2;
      tg::ProtectionGraph g = tg_sim::RandomGraph(options, prng);
      tg_analysis::Islands islands(g);
      tg_hier::LevelAssignment levels = tg_hier::ComputeRwtgLevels(g);
      for (size_t i = 0; i < islands.Count(); ++i) {
        ++islands_checked;
        const auto& members = islands.Members(static_cast<uint32_t>(i));
        for (VertexId v : members) {
          contained &= levels.LevelOf(v) == levels.LevelOf(members[0]);
        }
      }
    }
    report.Check("L5.1",
                 "every island inside one rwtg-level (" + std::to_string(islands_checked) +
                     " islands)",
                 true, contained);
  }

  return report.Finish();
}

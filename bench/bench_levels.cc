// Scaling of the level machinery: know-step digraph construction, SCC
// decomposition, rw-level and rwtg-level computation, and island finding.

#include <benchmark/benchmark.h>

#include "src/take_grant.h"

namespace {

tg_sim::GeneratedHierarchy Make(size_t levels, size_t width) {
  tg_util::Prng prng(41);
  tg_sim::RandomHierarchyOptions options;
  options.levels = levels;
  options.subjects_per_level = width;
  options.objects_per_level = width / 2 + 1;
  return tg_sim::RandomHierarchy(options, prng);
}

void BM_KnowStepDigraph(benchmark::State& state) {
  tg_sim::GeneratedHierarchy h = Make(4, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg_hier::KnowStepDigraph(h.graph).size());
  }
  state.SetComplexityN(static_cast<int64_t>(h.graph.ExplicitEdgeCount()));
}
BENCHMARK(BM_KnowStepDigraph)->RangeMultiplier(2)->Range(2, 64)->Complexity(benchmark::oN);

void BM_ComputeRwLevels(benchmark::State& state) {
  tg_sim::GeneratedHierarchy h = Make(4, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg_hier::ComputeRwLevels(h.graph).LevelCount());
  }
  state.SetComplexityN(static_cast<int64_t>(h.graph.VertexCount()));
}
BENCHMARK(BM_ComputeRwLevels)->RangeMultiplier(2)->Range(2, 32);

void BM_ComputeRwtgLevels(benchmark::State& state) {
  tg_sim::GeneratedHierarchy h = Make(3, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg_hier::ComputeRwtgLevels(h.graph).LevelCount());
  }
  state.SetComplexityN(static_cast<int64_t>(h.graph.VertexCount()));
}
BENCHMARK(BM_ComputeRwtgLevels)->RangeMultiplier(2)->Range(2, 16);

void BM_Islands(benchmark::State& state) {
  tg_sim::GeneratedHierarchy h = Make(4, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    tg_analysis::Islands islands(h.graph);
    benchmark::DoNotOptimize(islands.Count());
  }
  state.SetComplexityN(static_cast<int64_t>(h.graph.ExplicitEdgeCount()));
}
BENCHMARK(BM_Islands)->RangeMultiplier(2)->Range(2, 64)->Complexity(benchmark::oN);

void BM_SccOnRandomDigraph(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  tg_util::Prng prng(43);
  std::vector<std::vector<tg::VertexId>> adj(n);
  for (size_t e = 0; e < n * 3; ++e) {
    adj[prng.NextBelow(n)].push_back(static_cast<tg::VertexId>(prng.NextBelow(n)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg_hier::StronglyConnectedComponents(adj).size());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_SccOnRandomDigraph)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();

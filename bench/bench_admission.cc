// Admission-gate benchmark: the O(1) incremental gate vs the Corollary 5.6
// baseline that re-runs a full CheckSecure audit after speculatively
// applying every submitted rule (both the dense-matrix and the
// condensation-first sharded engines), plus the O(E) endpoint audit for
// scale.  The workload is a secure-by-construction hierarchy (no planted
// channels) under a pre-generated stream of mixed legal / illegal /
// violating de jure rules — the steady-state enforcement scenario where
// the gate's per-vertex connection state earns its keep.
//
// Checks in-binary that the gate and the re-audit baseline admit the same
// rules and converge to identical graphs, and that the gate is >= 50x
// faster per operation than either full re-audit engine at n >= 4096
// (min-of-3 on both sides).  Exits non-zero on any failure.
//
// Emits machine-readable timings to BENCH_admission.json (one JSON object
// per line), each row carrying the MetricsDelta counters — the admission.*
// family shows decisions, repairs, and txn traffic next to the audit work
// the baseline pays.
//
//   bench_admission            # full sweep, writes BENCH_admission.json
//   bench_admission --smoke    # tiny sizes, no artifact; fails if the gate
//                              # diverges from the re-audit baseline

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/exp_common.h"
#include "src/take_grant.h"

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// A pre-generated rule stream over the hierarchy's initial vertices: a mix
// of enumerated-legal moves and synthesized take/grant/create/remove rules
// (some illegal, some violating), so the gate exercises all three verdicts.
// De jure only — the baseline speculatively applies and re-audits, and we
// want both sides deciding the same explicit-edge stream.
std::vector<tg::RuleApplication> MakeRuleStream(const tg::ProtectionGraph& g,
                                                size_t count, uint64_t seed) {
  tg_util::Prng prng(seed);
  std::vector<tg::RuleApplication> legal = tg::EnumerateDeJure(g);
  const size_t n = g.VertexCount();
  const tg::Right kRights[] = {tg::Right::kRead, tg::Right::kWrite, tg::Right::kTake,
                               tg::Right::kGrant};
  std::vector<tg::RuleApplication> stream;
  stream.reserve(count);
  while (stream.size() < count) {
    if (!legal.empty() && prng.NextBelow(100) < 65) {
      stream.push_back(legal[prng.NextBelow(legal.size())]);
      continue;
    }
    tg::VertexId a = static_cast<tg::VertexId>(prng.NextBelow(n));
    tg::VertexId b = static_cast<tg::VertexId>(prng.NextBelow(n));
    tg::VertexId c = static_cast<tg::VertexId>(prng.NextBelow(n));
    tg::RightSet d(kRights[prng.NextBelow(std::size(kRights))]);
    switch (prng.NextBelow(4)) {
      case 0:
        stream.push_back(tg::RuleApplication::Take(a, b, c, d));
        break;
      case 1:
        stream.push_back(tg::RuleApplication::Grant(a, b, c, d));
        break;
      case 2:
        stream.push_back(tg::RuleApplication::Remove(a, b, d));
        break;
      default:
        stream.push_back(tg::RuleApplication::Create(
            a, prng.NextBelow(100) < 30 ? tg::VertexKind::kSubject : tg::VertexKind::kObject,
            d));
        break;
    }
  }
  return stream;
}

// The Corollary 5.6 baseline: speculatively apply each legal rule to a
// scratch copy, run the full CheckSecure audit on the requested engine,
// and adopt the copy only when it stays secure.  Returns per-op ms and the
// per-rule admit bitmap (for the smoke equivalence check).
struct BaselineResult {
  double ms_per_op = 0.0;
  std::vector<bool> admitted;
  tg::ProtectionGraph final_graph;
};

BaselineResult RunBaseline(const tg::ProtectionGraph& start,
                           const tg_hier::LevelAssignment& levels,
                           const std::vector<tg::RuleApplication>& rules,
                           tg_hier::AuditEngine engine) {
  BaselineResult result;
  tg::ProtectionGraph g = start;
  result.admitted.reserve(rules.size());
  Clock::time_point t0 = Clock::now();
  for (const tg::RuleApplication& rule : rules) {
    bool admit = false;
    if (tg::CheckRule(g, rule).ok()) {
      tg::ProtectionGraph scratch = g;
      tg::RuleApplication applied = rule;
      if (tg::ApplyRule(scratch, applied).ok() &&
          tg_hier::CheckSecure(scratch, levels, 1, nullptr, engine).secure) {
        g = std::move(scratch);
        admit = true;
      }
    }
    result.admitted.push_back(admit);
  }
  result.ms_per_op = MsSince(t0) / static_cast<double>(rules.size());
  result.final_graph = std::move(g);
  return result;
}

struct Config {
  size_t levels;
  size_t clusters_per_level;
  size_t subjects_per_cluster;
  size_t objects_per_cluster;
  size_t gate_ops;      // decisions timed through the gate
  size_t baseline_ops;  // decisions timed through the full re-audit
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  exp::Reporter reporter(smoke ? "admission gate smoke (gate vs re-audit guard)"
                               : "admission gate: O(1) decisions vs Corollary 5.6 re-audit");
  // The smoke run executes from the build tree (ctest); don't shadow a real
  // artifact with tiny-size numbers.
  exp::JsonlWriter jsonl(smoke ? "BENCH_admission_smoke.json" : "BENCH_admission.json");

  const int reps = 3;  // min-of-3 on every timed side
  exp::JsonObject env_row;
  env_row.Set("record", "env");
  exp::AppendEnvInfo(env_row);
  jsonl.Write(env_row.Set("reps", static_cast<uint64_t>(reps)).Set("smoke", smoke));

  std::vector<Config> sweep;
  if (smoke) {
    sweep = {{2, 2, 4, 2, 64, 64}};
  } else {
    sweep = {{4, 4, 12, 4, 2048, 8},   // n = 256
             {8, 8, 48, 16, 4096, 4}};  // n = 4096
  }

  bool all_equivalent = true;
  bool gates_50x = true;

  for (const Config& config : sweep) {
    tg_sim::HierarchicalGraphOptions options;
    options.levels = config.levels;
    options.clusters_per_level = config.clusters_per_level;
    options.subjects_per_cluster = config.subjects_per_cluster;
    options.objects_per_cluster = config.objects_per_cluster;
    options.planted_channels = 0;  // secure by construction: steady-state enforcement
    tg_util::Prng prng(9000 + config.levels);
    tg_sim::GeneratedHierarchy h = tg_sim::HierarchicalGraph(options, prng);
    const size_t n = h.graph.VertexCount();
    const std::string id = "n" + std::to_string(n);

    const std::vector<tg::RuleApplication> gate_rules =
        MakeRuleStream(h.graph, config.gate_ops, 77 + n);
    // The baseline decides a prefix of the same stream (a full audit per op
    // makes the whole stream intractable at real sizes).
    const std::vector<tg::RuleApplication> base_rules(
        gate_rules.begin(),
        gate_rules.begin() + static_cast<ptrdiff_t>(config.baseline_ops));

    tg_hier::AdmissionGate::Options gate_options;
    gate_options.mode = tg_hier::AdmissionMode::kConnection;

    exp::MetricsDelta delta;

    // Gate, autocommit: every decision published immediately.
    double gate_ms = 1e300;
    std::unique_ptr<tg_hier::AdmissionGate> gate;
    for (int rep = 0; rep < reps; ++rep) {
      gate = tg_hier::AdmissionGate::Create(h.graph, h.levels, gate_options);
      Clock::time_point t0 = Clock::now();
      for (const tg::RuleApplication& rule : gate_rules) {
        (void)gate->Admit(rule);
      }
      gate_ms = std::min(gate_ms, MsSince(t0));
    }
    const double gate_us_per_op = 1e3 * gate_ms / static_cast<double>(gate_rules.size());

    // Gate, transactional: group commits of 64 staged rules.
    double txn_ms = 1e300;
    tg_hier::AdmissionGate::Options txn_options = gate_options;
    txn_options.abort_txn_on_veto = false;
    for (int rep = 0; rep < reps; ++rep) {
      auto txn_gate = tg_hier::AdmissionGate::Create(h.graph, h.levels, txn_options);
      Clock::time_point t0 = Clock::now();
      size_t staged = 0;
      (void)txn_gate->Begin();
      for (const tg::RuleApplication& rule : gate_rules) {
        (void)txn_gate->Submit(rule);
        if (++staged % 64 == 0) {
          (void)txn_gate->Commit();
          (void)txn_gate->Begin();
        }
      }
      (void)txn_gate->Commit();
      txn_ms = std::min(txn_ms, MsSince(t0));
    }
    const double txn_us_per_op = 1e3 * txn_ms / static_cast<double>(gate_rules.size());

    // Corollary 5.6 re-audit baselines, min-of-3 per engine.
    const tg_hier::AuditEngine kEngines[] = {tg_hier::AuditEngine::kDense,
                                             tg_hier::AuditEngine::kSharded};
    const char* kEngineNames[] = {"dense", "sharded"};
    double base_ms_per_op[2] = {0.0, 0.0};
    for (int e = 0; e < 2; ++e) {
      BaselineResult best;
      best.ms_per_op = 1e300;
      for (int rep = 0; rep < reps; ++rep) {
        BaselineResult r = RunBaseline(h.graph, h.levels, base_rules, kEngines[e]);
        if (r.ms_per_op < best.ms_per_op) {
          best = std::move(r);
        }
      }
      base_ms_per_op[e] = best.ms_per_op;

      // Equivalence guard: the gate must admit exactly the rules the full
      // re-audit admits and land on the identical graph over the shared
      // prefix.  (Run the prefix through a fresh gate so the comparison is
      // decision-for-decision.)
      auto check_gate = tg_hier::AdmissionGate::Create(h.graph, h.levels, gate_options);
      bool decisions_match = true;
      for (size_t i = 0; i < base_rules.size(); ++i) {
        tg_hier::AdmissionDecision d = check_gate->Admit(base_rules[i]);
        decisions_match = decisions_match && (d.accepted() == best.admitted[i]);
      }
      const bool graphs_match =
          tg::DiffGraphs(check_gate->graph(), best.final_graph).ChangeCount() == 0;
      reporter.Check(id, std::string("gate admits exactly the ") + kEngineNames[e] +
                             " re-audit's rules, identical graph",
                     true, decisions_match && graphs_match);
      all_equivalent = all_equivalent && decisions_match && graphs_match;
    }

    // Context row: the O(E) endpoint audit (what Corollary 5.6 costs when
    // only explicit edges need checking).
    double audit_ms = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      Clock::time_point t0 = Clock::now();
      (void)tg_hier::AuditBishopRestriction(gate->graph(), h.levels);
      audit_ms = std::min(audit_ms, MsSince(t0));
    }

    const double speedup_dense = base_ms_per_op[0] * 1e3 / gate_us_per_op;
    const double speedup_sharded = base_ms_per_op[1] * 1e3 / gate_us_per_op;
    reporter.Note(id, "gate=" + std::to_string(gate_us_per_op) +
                          "us/op txn=" + std::to_string(txn_us_per_op) +
                          "us/op dense=" + std::to_string(base_ms_per_op[0]) +
                          "ms/op sharded=" + std::to_string(base_ms_per_op[1]) +
                          "ms/op audit=" + std::to_string(audit_ms) + "ms");
    if (!smoke && n >= 4096) {
      reporter.Check(id, "gate >= 50x faster than dense per-op re-audit", true,
                     speedup_dense >= 50.0);
      reporter.Check(id, "gate >= 50x faster than sharded per-op re-audit", true,
                     speedup_sharded >= 50.0);
      gates_50x = gates_50x && speedup_dense >= 50.0 && speedup_sharded >= 50.0;
    }

    exp::JsonObject row;
    row.Set("record", "timing")
        .Set("bench", "admission_gate")
        .Set("vertices", static_cast<uint64_t>(n))
        .Set("gate_ops", static_cast<uint64_t>(gate_rules.size()))
        .Set("baseline_ops", static_cast<uint64_t>(base_rules.size()))
        .Set("gate_us_per_op", gate_us_per_op)
        .Set("gate_ops_per_sec", 1e6 / gate_us_per_op)
        .Set("txn_us_per_op", txn_us_per_op)
        .Set("txn_ops_per_sec", 1e6 / txn_us_per_op)
        .Set("dense_reaudit_ms_per_op", base_ms_per_op[0])
        .Set("sharded_reaudit_ms_per_op", base_ms_per_op[1])
        .Set("endpoint_audit_ms", audit_ms)
        .Set("speedup_vs_dense", speedup_dense)
        .Set("speedup_vs_sharded", speedup_sharded)
        .Set("accepted", gate->accepted_count())
        .Set("vetoed", gate->vetoed_count())
        .Set("rejected", gate->rejected_count())
        .Set("state_repairs", gate->state_repairs());
    jsonl.Write(delta.AppendTo(row));
  }

  reporter.Check("equiv", "gate decisions match full re-audit on every engine", true,
                 all_equivalent);
  if (!smoke) {
    reporter.Check("speedup50x", "gate >= 50x vs per-op full re-audit at n >= 4096", true,
                   gates_50x);
  }

  if (!jsonl.ok()) {
    std::fprintf(stderr, "warning: could not open benchmark JSONL for writing\n");
  }
  return reporter.Finish();
}

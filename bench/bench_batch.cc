// Batch-analysis benchmark: serial vs parallel drivers and cold vs cached
// queries, with in-binary equivalence checks (the binary exits non-zero if
// parallel or cached results ever differ from serial).
//
// Emits machine-readable timings to BENCH_batch.json (one JSON object per
// line) in the working directory, including the machine's core count --
// the parallel speedup claim only applies on >= 4 cores, so downstream
// tooling needs the context to interpret the numbers.
//
//   bench_batch --smoke               # tiny graph, BENCH_batch_smoke.json;
//                                     # used by the bench_batch_smoke ctest
//   bench_batch [--smoke] --trace-json FILE
//                                     # export the span ring as Chrome/
//                                     # Perfetto trace_event JSON on exit

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench/exp_common.h"
#include "src/take_grant.h"
#include "src/util/trace_export.h"

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

tg::ProtectionGraph BenchGraph(size_t target_vertices) {
  // A layered hierarchy with planted cross-level channels: dense enough
  // that per-source closures dominate, the regime the pool targets.
  tg_util::Prng prng(2026);
  tg_sim::RandomHierarchyOptions options;
  options.levels = 8;
  options.subjects_per_level = (target_vertices / 8) * 5 / 8;
  options.objects_per_level = (target_vertices / 8) - options.subjects_per_level;
  options.planted_channels = 4;
  return tg_sim::RandomHierarchy(options, prng).graph;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--trace-json") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    }
  }
  exp::Reporter reporter(smoke ? "batch analysis smoke (serial vs parallel vs cached)"
                               : "batch analysis: serial vs parallel vs cached");
  // The smoke run executes from the build tree (ctest/check.sh); don't
  // shadow a real artifact with tiny-size numbers.
  exp::JsonlWriter jsonl(smoke ? "BENCH_batch_smoke.json" : "BENCH_batch.json");

  const size_t cores = std::thread::hardware_concurrency();
  const size_t threads = tg_util::ThreadPool::DefaultThreadCount();
  tg::ProtectionGraph g = BenchGraph(smoke ? 96 : 512);
  reporter.Note("env", "cores=" + std::to_string(cores) +
                           " threads=" + std::to_string(threads) +
                           " graph=" + g.Summary());
  exp::JsonObject env_row;
  env_row.Set("record", "env");
  exp::AppendEnvInfo(env_row);
  jsonl.Write(env_row.Set("vertices", static_cast<uint64_t>(g.VertexCount()))
                  .Set("subjects", static_cast<uint64_t>(g.SubjectCount()))
                  .Set("edges", static_cast<uint64_t>(g.ExplicitEdgeCount()))
                  .Set("smoke", smoke));

  tg_util::ThreadPool serial(1);
  tg_util::ThreadPool parallel;  // DefaultThreadCount-sized

  // --- rwtg-levels: per-subject BOC closures over the pool. ---
  exp::MetricsDelta delta;
  Clock::time_point t0 = Clock::now();
  tg_hier::LevelAssignment levels_serial = tg_hier::ComputeRwtgLevels(g, &serial);
  double levels_serial_ms = MsSince(t0);
  t0 = Clock::now();
  tg_hier::LevelAssignment levels_parallel = tg_hier::ComputeRwtgLevels(g, &parallel);
  double levels_parallel_ms = MsSince(t0);
  bool levels_equal = levels_serial.LevelCount() == levels_parallel.LevelCount();
  for (tg::VertexId v = 0; levels_equal && v < g.VertexCount(); ++v) {
    levels_equal = levels_serial.LevelOf(v) == levels_parallel.LevelOf(v);
  }
  reporter.Check("levels", "parallel rwtg-levels identical to serial", true, levels_equal);
  {
    exp::JsonObject row;
    row.Set("record", "timing")
        .Set("bench", "rwtg_levels")
        .Set("serial_ms", levels_serial_ms)
        .Set("parallel_ms", levels_parallel_ms)
        .Set("speedup", levels_parallel_ms > 0 ? levels_serial_ms / levels_parallel_ms : 0.0)
        .Set("identical", levels_equal);
    jsonl.Write(delta.AppendTo(row));
  }
  delta.Reset();

  // --- all-pairs can_know matrix. ---
  t0 = Clock::now();
  std::vector<std::vector<bool>> matrix_serial = tg_analysis::KnowableFromAll(g, &serial);
  double matrix_serial_ms = MsSince(t0);
  t0 = Clock::now();
  std::vector<std::vector<bool>> matrix_parallel = tg_analysis::KnowableFromAll(g, &parallel);
  double matrix_parallel_ms = MsSince(t0);
  bool matrix_equal = matrix_serial == matrix_parallel;
  reporter.Check("matrix", "parallel can_know matrix identical to serial", true, matrix_equal);
  {
    exp::JsonObject row;
    row.Set("record", "timing")
        .Set("bench", "knowable_matrix")
        .Set("serial_ms", matrix_serial_ms)
        .Set("parallel_ms", matrix_parallel_ms)
        .Set("speedup", matrix_parallel_ms > 0 ? matrix_serial_ms / matrix_parallel_ms : 0.0)
        .Set("identical", matrix_equal);
    jsonl.Write(delta.AppendTo(row));
  }
  delta.Reset();

  // --- security audit sweep. ---
  t0 = Clock::now();
  tg_hier::SecurityReport audit_serial = tg_hier::CheckSecure(g, levels_serial, 0, &serial);
  double audit_serial_ms = MsSince(t0);
  t0 = Clock::now();
  tg_hier::SecurityReport audit_parallel = tg_hier::CheckSecure(g, levels_serial, 0, &parallel);
  double audit_parallel_ms = MsSince(t0);
  bool audit_equal = audit_serial.secure == audit_parallel.secure &&
                     audit_serial.violations.size() == audit_parallel.violations.size();
  for (size_t i = 0; audit_equal && i < audit_serial.violations.size(); ++i) {
    audit_equal = audit_serial.violations[i].detail == audit_parallel.violations[i].detail;
  }
  reporter.Check("audit", "parallel security audit identical to serial", true, audit_equal);
  {
    exp::JsonObject row;
    row.Set("record", "timing")
        .Set("bench", "security_audit")
        .Set("serial_ms", audit_serial_ms)
        .Set("parallel_ms", audit_parallel_ms)
        .Set("speedup", audit_parallel_ms > 0 ? audit_serial_ms / audit_parallel_ms : 0.0)
        .Set("identical", audit_equal);
    jsonl.Write(delta.AppendTo(row));
  }
  delta.Reset();

  // --- cold vs cached queries: every subject's knowable row, twice. ---
  tg_analysis::AnalysisCache cache;
  std::vector<tg::VertexId> subjects;
  for (tg::VertexId v = 0; v < g.VertexCount(); ++v) {
    if (g.IsSubject(v)) {
      subjects.push_back(v);
    }
  }
  t0 = Clock::now();
  size_t cold_popcount = 0;
  for (tg::VertexId x : subjects) {
    const std::vector<bool>& row = cache.Knowable(g, x);
    cold_popcount += row.size();
  }
  double cold_ms = MsSince(t0);
  t0 = Clock::now();
  size_t warm_popcount = 0;
  for (tg::VertexId x : subjects) {
    const std::vector<bool>& row = cache.Knowable(g, x);
    warm_popcount += row.size();
  }
  double warm_ms = MsSince(t0);
  bool cache_correct = cold_popcount == warm_popcount;
  for (size_t i = 0; cache_correct && i < subjects.size(); i += 37) {
    cache_correct = cache.Knowable(g, subjects[i]) == matrix_serial[subjects[i]];
  }
  double cached_speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
  reporter.Check("cache", "cached rows identical to serial matrix", true, cache_correct);
  reporter.Check("cache10x", "warm pass >= 10x faster than cold pass", true,
                 warm_ms == 0.0 || cached_speedup >= 10.0);
  reporter.Note("cache", "cold=" + std::to_string(cold_ms) + "ms warm=" +
                             std::to_string(warm_ms) + "ms hits=" +
                             std::to_string(cache.hits()) + " misses=" +
                             std::to_string(cache.misses()));
  {
    exp::JsonObject row;
    row.Set("record", "timing")
        .Set("bench", "cached_knowable")
        .Set("cold_ms", cold_ms)
        .Set("warm_ms", warm_ms)
        .Set("speedup", cached_speedup)
        .Set("hits", static_cast<uint64_t>(cache.hits()))
        .Set("misses", static_cast<uint64_t>(cache.misses()))
        .Set("identical", cache_correct);
    jsonl.Write(delta.AppendTo(row));
  }

  if (!jsonl.ok()) {
    std::fprintf(stderr, "warning: could not open benchmark JSONL for writing\n");
  }
  if (!trace_path.empty()) {
    if (tg_util::WriteChromeTraceJson(trace_path)) {
      reporter.Note("trace", "wrote " + trace_path);
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", trace_path.c_str());
    }
  }
  return reporter.Finish();
}

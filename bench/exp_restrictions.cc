// Reproduces section 5's restriction results and section 6's BLP mapping:
//
//   L5.3  restriction of direction: sound, but incomplete (cannot pass an
//         inert right down through an upward-pointing enabling edge)
//   L5.4  restriction of application: sound, but incomplete (blocks the
//         legal read-down)
//   T5.5  the combined Bishop restriction: sound (no adversarial sequence
//         ever leaks) and complete (legal transfers still replay)
//   BLP   restriction (a)/(b) == simple security + *-property

#include "bench/exp_common.h"
#include "src/take_grant.h"

namespace {

using tg::Right;
using tg::VertexId;

// Soundness probe: run `trials` greedy conspiracies against hierarchies
// under `make_policy`; count breaches.
template <typename MakePolicy>
int BreachCount(MakePolicy make_policy, int trials, size_t planted, uint64_t seed) {
  tg_util::Prng prng(seed);
  int breaches = 0;
  for (int trial = 0; trial < trials; ++trial) {
    tg_sim::RandomHierarchyOptions options;
    options.levels = 2;
    options.subjects_per_level = 2;
    options.objects_per_level = 1;
    options.planted_channels = planted;
    tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
    tg_sim::ReferenceMonitor monitor(h.graph, make_policy(h.levels));
    tg_sim::AttackOptions attack;
    attack.strategy = tg_sim::AdversaryStrategy::kGreedy;
    attack.max_steps = 120;
    tg_util::Prng attack_prng(prng.Next());
    tg_sim::AttackOutcome outcome =
        tg_sim::RunConspiracy(monitor, h.levels, h.level_subjects[0][0],
                              h.level_subjects[1][0], attack, attack_prng);
    breaches += outcome.breached ? 1 : 0;
  }
  return breaches;
}

}  // namespace

int main() {
  exp::Reporter report("restrictions (section 5) and BLP mapping (section 6)");

  constexpr int kTrials = 10;

  // ---- Soundness of all three restrictions vs the unrestricted baseline.
  int unrestricted = BreachCount(
      [](const tg_hier::LevelAssignment&) { return std::make_shared<tg::AllowAllPolicy>(); },
      kTrials, /*planted=*/2, /*seed=*/1);
  int bishop = BreachCount(
      [](const tg_hier::LevelAssignment& levels) {
        return std::make_shared<tg_hier::BishopRestrictionPolicy>(levels);
      },
      kTrials, 2, 1);
  report.Note("base", "unrestricted breaches: " + std::to_string(unrestricted) + "/" +
                          std::to_string(kTrials) + " on 2-channel hierarchies");
  report.Check("T5.5", "Bishop restriction: zero breaches on the same graphs", true,
               bishop == 0);
  report.Check("base", "unrestricted rules do breach bridged hierarchies", true,
               unrestricted > 0);

  // Lemma-premise soundness (bridge-free graphs): all three restrictions
  // keep clean hierarchies clean.
  int dir_clean = BreachCount(
      [](const tg_hier::LevelAssignment& levels) {
        return std::make_shared<tg_hier::DirectionRestrictionPolicy>(levels);
      },
      kTrials, /*planted=*/0, 2);
  int app_clean = BreachCount(
      [](const tg_hier::LevelAssignment& levels) {
        return std::make_shared<tg_hier::ApplicationRestrictionPolicy>(levels);
      },
      kTrials, 0, 2);
  report.Check("L5.3", "direction restriction sound on bridge-free graphs", true,
               dir_clean == 0);
  report.Check("L5.4", "application restriction sound on bridge-free graphs", true,
               app_clean == 0);

  // ---- Incompleteness demos ----
  {
    // L5.3: an inert (execute) right must travel from hi down to losub, but
    // the only enabling edge points upward.
    tg::ProtectionGraph g;
    VertexId hi = g.AddSubject("hi");
    VertexId losub = g.AddSubject("losub");
    VertexId tool = g.AddObject("tool");
    (void)g.AddExplicit(losub, hi, tg::kTake);
    (void)g.AddExplicit(hi, tool, tg::RightSet(Right::kExecute));
    tg_hier::LevelAssignment levels(g.VertexCount(), 2);
    levels.Assign(hi, 1);
    levels.Assign(tool, 1);
    levels.Assign(losub, 0);
    levels.DeclareHigher(1, 0);
    (void)levels.Finalize();
    tg::RuleApplication rule =
        tg::RuleApplication::Take(losub, hi, tool, tg::RightSet(Right::kExecute));
    tg_hier::DirectionRestrictionPolicy direction(levels);
    tg_hier::BishopRestrictionPolicy bishop_policy(levels);
    report.Check("L5.3", "direction restriction blocks the legal inert transfer", false,
                 direction.Vet(g, rule).ok());
    report.Check("L5.3", "Bishop restriction permits it (completeness)", true,
                 bishop_policy.Vet(g, rule).ok());
  }
  {
    // L5.4: the higher subject takes read rights to a lower vertex -- legal,
    // but the application restriction forbids manipulating r.
    tg::ProtectionGraph g;
    VertexId hi = g.AddSubject("hi");
    VertexId mid = g.AddSubject("mid");
    VertexId lodoc = g.AddObject("lodoc");
    (void)g.AddExplicit(hi, mid, tg::kTake);
    (void)g.AddExplicit(mid, lodoc, tg::kRead);
    tg_hier::LevelAssignment levels(g.VertexCount(), 2);
    levels.Assign(hi, 1);
    levels.Assign(mid, 0);
    levels.Assign(lodoc, 0);
    levels.DeclareHigher(1, 0);
    (void)levels.Finalize();
    tg::RuleApplication rule = tg::RuleApplication::Take(hi, mid, lodoc, tg::kRead);
    tg_hier::ApplicationRestrictionPolicy application(levels);
    tg_hier::BishopRestrictionPolicy bishop_policy(levels);
    report.Check("L5.4", "application restriction blocks the legal read-down", false,
                 application.Vet(g, rule).ok());
    report.Check("L5.4", "Bishop restriction permits it (completeness)", true,
                 bishop_policy.Vet(g, rule).ok());
  }

  // ---- T5.5 completeness sweep: inert-right witnesses replay under the
  // Bishop policy.
  {
    tg_util::Prng prng(55);
    int attempted = 0;
    int replayed = 0;
    for (int trial = 0; trial < 20; ++trial) {
      tg_sim::RandomHierarchyOptions options;
      options.levels = 2;
      options.subjects_per_level = 2;
      options.planted_channels = 1;
      tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
      tg::ProtectionGraph g = h.graph;
      VertexId hi = h.level_subjects[1][0];
      VertexId lo = h.level_subjects[0][0];
      VertexId tool = g.AddObject("tool");
      (void)g.AddExplicit(hi, tool, tg::RightSet(Right::kExecute));
      tg_hier::LevelAssignment levels = h.levels;
      levels.Assign(tool, levels.LevelOf(hi));
      if (!tg_analysis::CanShare(g, Right::kExecute, lo, tool)) {
        continue;
      }
      auto witness = tg_analysis::BuildCanShareWitness(g, Right::kExecute, lo, tool);
      if (!witness.has_value()) {
        continue;
      }
      ++attempted;
      auto policy = std::make_shared<tg_hier::BishopRestrictionPolicy>(levels);
      tg::RuleEngine engine(g, policy);
      bool ok = true;
      for (const tg::RuleApplication& rule : witness->rules()) {
        if (!engine.Apply(rule).ok()) {
          ok = false;
          break;
        }
      }
      replayed += (ok && engine.graph().HasExplicit(lo, tool, Right::kExecute)) ? 1 : 0;
    }
    report.Check("T5.5",
                 "inert transfers replay under restriction (" + std::to_string(replayed) +
                     "/" + std::to_string(attempted) + ")",
                 true, attempted > 0 && replayed == attempted);
  }

  // ---- T5.5 completeness via derivation surgery (the paper's proof
  // technique): an unrestricted derivation between two *secure* graphs may
  // transiently complete a forbidden connection, but deleting the offending
  // rule and everything that depended on it yields a restricted derivation
  // with the same final graph.
  {
    tg::ProtectionGraph g;
    VertexId hi = g.AddSubject("hi");
    VertexId mid = g.AddSubject("mid");
    VertexId lodoc = g.AddObject("lodoc");
    VertexId losub = g.AddSubject("losub");
    (void)g.AddExplicit(hi, mid, tg::kTake);
    (void)g.AddExplicit(
        mid, lodoc, tg::RightSet::Of({Right::kWrite, Right::kExecute}));
    (void)g.AddExplicit(mid, losub, tg::kRead);
    tg_hier::LevelAssignment levels(g.VertexCount(), 2);
    levels.Assign(hi, 1);
    levels.Assign(mid, 0);
    levels.Assign(lodoc, 0);
    levels.Assign(losub, 0);
    levels.DeclareHigher(1, 0);
    (void)levels.Finalize();

    // The unrestricted derivation: hi pulls w over lodoc (forbidden
    // write-down, transient), pulls e (legal), then removes the w again.
    tg::Witness unrestricted;
    unrestricted.Append(tg::RuleApplication::Take(hi, mid, lodoc, tg::kWrite));
    unrestricted.Append(
        tg::RuleApplication::Take(hi, mid, lodoc, tg::RightSet(Right::kExecute)));
    unrestricted.Append(tg::RuleApplication::Remove(hi, lodoc, tg::kWrite));
    auto unrestricted_final = unrestricted.Replay(g);
    bool initial_secure = tg_hier::AuditBishopRestriction(g, levels).empty();
    bool final_secure = unrestricted_final.ok() &&
                        tg_hier::AuditBishopRestriction(*unrestricted_final, levels).empty();
    report.Check("T5.5", "surgery setup: initial and final graphs are clean", true,
                 initial_secure && final_secure);

    // Surgery: MinimizeWitness against "same final graph" drops the
    // forbidden take and its compensating remove.
    tg::Witness surgered = MinimizeWitness(
        unrestricted, g,
        [&](const tg::ProtectionGraph& end) { return end == *unrestricted_final; });
    bool dropped = surgered.size() < unrestricted.size();
    // The surgered derivation replays under the restricted engine.
    auto policy = std::make_shared<tg_hier::BishopRestrictionPolicy>(levels);
    tg::RuleEngine engine(g, policy);
    bool replay_ok = true;
    for (const tg::RuleApplication& rule : surgered.rules()) {
      if (!engine.Apply(rule).ok()) {
        replay_ok = false;
        break;
      }
    }
    report.Check("T5.5", "surgery drops the transient forbidden step(s)", true, dropped);
    report.Check("T5.5", "surgered derivation replays under the restriction", true,
                 replay_ok && engine.graph() == *unrestricted_final);
  }

  // ---- Lattice relay (extension): the literal restriction (a)/(b) only
  // constrains comparable levels, so on a lattice an incomparable middle
  // level can relay information downward without any single edge being a
  // "lower reads higher" edge.  The strict (dominance) variant closes it.
  {
    // Levels: A2 > A1 > U, B1 > U, A* and B* incomparable.
    tg::ProtectionGraph g;
    VertexId y = g.AddSubject("y");        // victim at A2
    VertexId x = g.AddSubject("x");        // attacker at A1 (below y)
    VertexId m = g.AddSubject("m");        // relay at B1 (incomparable)
    VertexId h = g.AddSubject("h");        // helper at A2
    VertexId h2 = g.AddSubject("h2");      // helper at B1
    (void)g.AddExplicit(h, m, tg::kGrant);   // h can grant to the relay
    (void)g.AddExplicit(h, y, tg::kRead);    // h reads its peer y
    (void)g.AddExplicit(h2, x, tg::kGrant);  // h2 can grant to the attacker
    (void)g.AddExplicit(h2, m, tg::kRead);   // h2 reads its peer m
    tg_hier::LevelAssignment levels(g.VertexCount(), 4);
    enum { kU = 0, kA1 = 1, kA2 = 2, kB1 = 3 };
    levels.Assign(y, kA2);
    levels.Assign(h, kA2);
    levels.Assign(x, kA1);
    levels.Assign(m, kB1);
    levels.Assign(h2, kB1);
    levels.DeclareHigher(kA2, kA1);
    levels.DeclareHigher(kA2, kU);
    levels.DeclareHigher(kA1, kU);
    levels.DeclareHigher(kB1, kU);
    (void)levels.Finalize();

    auto run = [&](tg_hier::RestrictionStrictness strictness) {
      auto policy = std::make_shared<tg_hier::BishopRestrictionPolicy>(levels, strictness);
      tg::RuleEngine engine(g, policy);
      // The relay attack: h hands its r-over-y to m; h2 hands its r-over-m
      // to x; then de facto spying flows y's information to x.
      (void)engine.Apply(tg::RuleApplication::Grant(h, m, y, tg::kRead));
      (void)engine.Apply(tg::RuleApplication::Grant(h2, x, m, tg::kRead));
      tg::ProtectionGraph saturated = tg_analysis::SaturateDeFacto(engine.graph());
      return tg_analysis::KnowEdgePresent(saturated, x, y);
    };
    bool paper_leaks = run(tg_hier::RestrictionStrictness::kPaper);
    bool strict_leaks = run(tg_hier::RestrictionStrictness::kStrict);
    report.Check("latt", "literal (a)/(b) leaves the incomparable relay open", true,
                 paper_leaks);
    report.Check("latt", "strict dominance variant closes the relay", false, strict_leaks);
  }

  // ---- BLP equivalence ----
  {
    tg_util::Prng prng(66);
    int graphs = 0;
    int agree = 0;
    for (int trial = 0; trial < 15; ++trial) {
      tg_sim::RandomHierarchyOptions options;
      options.levels = 3;
      options.subjects_per_level = 2;
      options.planted_channels = trial % 2;
      tg_sim::GeneratedHierarchy h = tg_sim::RandomHierarchy(options, prng);
      if (trial % 3 == 0) {
        (void)h.graph.AddExplicit(h.level_subjects[0][0], h.level_subjects[2][0], tg::kRead);
      }
      size_t audit = tg_hier::AuditBishopRestriction(h.graph, h.levels).size();
      size_t blp = tg_hier::SimpleSecurityViolations(h.graph, h.levels).size() +
                   tg_hier::StarPropertyViolations(h.graph, h.levels).size();
      ++graphs;
      agree += (audit == blp) ? 1 : 0;
    }
    report.Check("BLP",
                 "restriction audit == simple-security + *-property (" +
                     std::to_string(agree) + "/" + std::to_string(graphs) + " graphs)",
                 true, agree == graphs);
  }

  return report.Finish();
}

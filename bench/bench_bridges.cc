// Bridge-enumeration channel benchmark: the per-word-type bridge-enum
// engine vs the level-sharded BOC sweep vs the dense all-pairs matrix on
// FindCrossLevelChannels over planted-channel cluster hierarchies.
//
// Claims, each checked in-binary (non-zero exit on failure):
//   1. All three engines emit bit-identical channel lists — endpoints,
//      witness paths, order, and max_channels cutoffs — at every size
//      where they can run (dense is skipped where its n x n matrix
//      exceeds the allocation guard).
//   2. At n = 65536 the bridge-enum engine is >= 2x faster than the
//      sharded engine (min-of-3 wall times of cache-backed audits — the
//      production configuration, where the cache's only effect on either
//      engine is snapshot reuse; single-core runs qualify, the win is the
//      word-type decomposition, not parallelism).  The
//      sweep caps witness output at 64 channels, the audit_tool default:
//      witness replay (one snapshot + product BFS per channel) costs the
//      same in every engine, so an uncapped run on a dense planted graph
//      would just time thousands of identical replays and hide the
//      enumeration it is meant to compare.
//   3. The typed enumeration (FindTypedCrossLevelChannels) reports the
//      same channel pairs, and every typed channel carries a
//      replay-verified witness path.
//
// Emits BENCH_bridges.json (JSON lines); every row carries the machine
// context and the engine metric deltas for the phase it times.
//
//   bench_bridges --smoke   # tiny graphs, BENCH_bridges_smoke.json; used
//                           # by the bench_bridges_smoke ctest

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/exp_common.h"
#include "src/take_grant.h"

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

tg_sim::GeneratedHierarchy BuildHierarchy(size_t levels, size_t clusters, size_t planted,
                                          uint64_t seed) {
  tg_util::Prng prng(seed);
  tg_sim::HierarchicalGraphOptions options;
  options.levels = levels;
  options.clusters_per_level = clusters;
  options.subjects_per_cluster = 24;
  options.objects_per_cluster = 8;
  options.tg_chords_per_cluster = 2;
  options.reads_down_per_subject = 1;
  options.planted_channels = planted;
  return tg_sim::HierarchicalGraph(options, prng);
}

bool SameChannels(const std::vector<tg_hier::CrossLevelChannel>& a,
                  const std::vector<tg_hier::CrossLevelChannel>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].from != b[i].from || a[i].to != b[i].to || a[i].path != b[i].path) {
      return false;
    }
  }
  return true;
}

// Witness cap for the timed sweep (the audit_tool default).
constexpr size_t kSweepCap = 64;

// min-of-3 wall time for one engine's FindCrossLevelChannels through an
// AnalysisCache (the production configuration: server and audit_tool all
// audit via a cache), asserting every run's channel list matches the
// first.  For the sharded and bridge-enum engines the cache contributes
// exactly one thing — snapshot reuse across reps — so the min is the
// engine's warm per-audit cost, the same treatment for both sides of the
// speedup claim.
double MinOf3Ms(const tg::ProtectionGraph& g, const tg_hier::LevelAssignment& levels,
                tg_hier::AuditEngine engine, std::vector<tg_hier::CrossLevelChannel>& out,
                bool& stable) {
  tg_analysis::AnalysisCache cache;
  double best = 0.0;
  stable = true;
  for (int rep = 0; rep < 3; ++rep) {
    Clock::time_point t0 = Clock::now();
    std::vector<tg_hier::CrossLevelChannel> channels = tg_hier::FindCrossLevelChannels(
        g, levels, cache, /*max_channels=*/kSweepCap, /*pool=*/nullptr, engine);
    const double ms = MsSince(t0);
    if (rep == 0) {
      out = std::move(channels);
      best = ms;
    } else {
      stable = stable && SameChannels(out, channels);
      best = std::min(best, ms);
    }
  }
  return best;
}

const char* EngineName(tg_hier::AuditEngine engine) {
  switch (engine) {
    case tg_hier::AuditEngine::kDense:
      return "dense";
    case tg_hier::AuditEngine::kSharded:
      return "sharded";
    case tg_hier::AuditEngine::kBridgeEnum:
      return "bridge_enum";
    default:
      return "auto";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  exp::Reporter reporter(smoke ? "bridge-enum channel smoke (three-engine equivalence)"
                               : "bridge-enum channel enumeration vs sharded and dense");
  // The smoke run executes from the build tree (ctest/check.sh); don't
  // shadow a real artifact with tiny-size numbers.
  exp::JsonlWriter jsonl(smoke ? "BENCH_bridges_smoke.json" : "BENCH_bridges.json");

  exp::JsonObject env_row;
  env_row.Set("record", "env");
  exp::AppendEnvInfo(env_row);
  jsonl.Write(env_row.Set("dense_matrix_max_bytes", tg::BitMatrix::MaxBytes()).Set("smoke", smoke));

  // --- Equivalence + typed enumeration on small planted hierarchies. ---
  {
    const size_t clusters = smoke ? 2 : 4;
    for (size_t planted : {size_t{0}, size_t{4}}) {
      tg_sim::GeneratedHierarchy h = BuildHierarchy(/*levels=*/3, clusters, planted, 19 + planted);
      const std::string tag = "eq_p" + std::to_string(planted);
      std::vector<tg_hier::CrossLevelChannel> dense = tg_hier::FindCrossLevelChannels(
          h.graph, h.levels, /*max_channels=*/0, nullptr, tg_hier::AuditEngine::kDense);
      std::vector<tg_hier::CrossLevelChannel> sharded = tg_hier::FindCrossLevelChannels(
          h.graph, h.levels, /*max_channels=*/0, nullptr, tg_hier::AuditEngine::kSharded);
      std::vector<tg_hier::CrossLevelChannel> bridge = tg_hier::FindCrossLevelChannels(
          h.graph, h.levels, /*max_channels=*/0, nullptr, tg_hier::AuditEngine::kBridgeEnum);
      reporter.Check(tag, "bridge-enum channel list identical to dense and sharded", true,
                     SameChannels(dense, bridge) && SameChannels(sharded, bridge));
      reporter.Check(tag + "_n", "planted channels are found", planted > 0, !bridge.empty());
      // Cutoff parity: cap below the full channel count.
      std::vector<tg_hier::CrossLevelChannel> dense_cut = tg_hier::FindCrossLevelChannels(
          h.graph, h.levels, /*max_channels=*/2, nullptr, tg_hier::AuditEngine::kDense);
      std::vector<tg_hier::CrossLevelChannel> bridge_cut = tg_hier::FindCrossLevelChannels(
          h.graph, h.levels, /*max_channels=*/2, nullptr, tg_hier::AuditEngine::kBridgeEnum);
      reporter.Check(tag + "_cut", "max_channels cutoff identical across engines", true,
                     SameChannels(dense_cut, bridge_cut));
      // Typed enumeration: same pairs, every witness replay-verified.
      std::vector<tg_hier::TypedCrossLevelChannel> typed =
          tg_hier::FindTypedCrossLevelChannels(h.graph, h.levels);
      bool pairs_match = typed.size() == bridge.size();
      bool verified = true;
      for (size_t i = 0; i < typed.size(); ++i) {
        pairs_match = pairs_match && i < bridge.size() &&
                      typed[i].channel.from == bridge[i].from &&
                      typed[i].channel.to == bridge[i].to;
        verified = verified && typed[i].channel.replay_verified;
      }
      reporter.Check(tag + "_typed", "typed enumeration reports the same channel pairs", true,
                     pairs_match);
      reporter.Check(tag + "_replay", "every typed channel witness replay-verifies", true,
                     verified);
      jsonl.Write(exp::JsonObject()
                      .Set("record", "equivalence")
                      .Set("vertices", static_cast<uint64_t>(h.graph.VertexCount()))
                      .Set("planted", static_cast<uint64_t>(planted))
                      .Set("channels", static_cast<uint64_t>(bridge.size()))
                      .Set("typed_channels", static_cast<uint64_t>(typed.size()))
                      .Set("identical", SameChannels(dense, bridge) && SameChannels(sharded, bridge)));
    }
  }

  // --- Speed sweep: n in {512, 4096, 65536}, planted channels present so
  // every engine does real per-source work; channel output capped at
  // kSweepCap so the shared per-witness replay cost cannot dominate the
  // engine-specific enumeration being timed (full mode only). ---
  if (!smoke) {
    struct SizeConfig {
      size_t levels;
      size_t clusters;
      size_t planted;
    };
    const SizeConfig sweep[] = {
        {4, 4, 4},    // 512 vertices
        {8, 16, 8},   // 4096 vertices
        {8, 256, 16}, // 65536 vertices
    };
    for (const SizeConfig& config : sweep) {
      tg_sim::GeneratedHierarchy h =
          BuildHierarchy(config.levels, config.clusters, config.planted, /*seed=*/23);
      const size_t n = h.graph.VertexCount();
      const bool dense_fits = tg::BitMatrix::TryCreate(n, n).ok();
      std::vector<tg_hier::CrossLevelChannel> reference;
      // Dense is the untimed equivalence reference here — its at-scale
      // timing story is BENCH_scale.json's; the claim this sweep gates is
      // bridge-enum vs sharded.
      if (dense_fits) {
        reference = tg_hier::FindCrossLevelChannels(h.graph, h.levels,
                                                    /*max_channels=*/kSweepCap, nullptr,
                                                    tg_hier::AuditEngine::kDense);
      }
      double sharded_ms = 0.0;
      double bridge_ms = 0.0;
      bool all_stable = true;
      bool all_same = true;
      for (tg_hier::AuditEngine engine :
           {tg_hier::AuditEngine::kSharded, tg_hier::AuditEngine::kBridgeEnum}) {
        exp::MetricsDelta delta;
        std::vector<tg_hier::CrossLevelChannel> channels;
        bool stable = true;
        const double ms = MinOf3Ms(h.graph, h.levels, engine, channels, stable);
        all_stable = all_stable && stable;
        if (reference.empty() && !channels.empty()) {
          reference = channels;
        } else if (!reference.empty()) {
          all_same = all_same && SameChannels(reference, channels);
        }
        if (engine == tg_hier::AuditEngine::kSharded) {
          sharded_ms = ms;
        } else {
          bridge_ms = ms;
        }
        exp::JsonObject row;
        row.Set("record", "sweep")
            .Set("engine", EngineName(engine))
            .Set("vertices", static_cast<uint64_t>(n))
            .Set("planted", static_cast<uint64_t>(config.planted))
            .Set("channels", static_cast<uint64_t>(channels.size()))
            .Set("max_channels", static_cast<uint64_t>(kSweepCap))
            .Set("min_ms", ms);
        delta.AppendTo(row);
        jsonl.Write(row);
      }
      const double speedup = bridge_ms > 0.0 ? sharded_ms / bridge_ms : 0.0;
      char line[160];
      std::snprintf(line, sizeof(line),
                    "n=%zu sharded=%.1fms bridge=%.1fms speedup=%.1fx dense=%s", n, sharded_ms,
                    bridge_ms, speedup, dense_fits ? "ran" : "skipped");
      const std::string tag = "sweep_n" + std::to_string(n);
      reporter.Note(tag, line);
      reporter.Check(tag + "_eq", "engines stable and identical across the sweep", true,
                     all_stable && all_same);
      if (n >= 65536) {
        reporter.Check(tag + "_speedup", "bridge-enum >= 2x faster than sharded at n=65536",
                       true, speedup >= 2.0);
      }
      jsonl.Write(exp::JsonObject()
                      .Set("record", "sweep_summary")
                      .Set("vertices", static_cast<uint64_t>(n))
                      .Set("sharded_min_ms", sharded_ms)
                      .Set("bridge_min_ms", bridge_ms)
                      .Set("speedup", speedup)
                      .Set("dense_ran", dense_fits));
    }
  }

  return reporter.Finish();
}

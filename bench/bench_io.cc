// Serialization throughput: .tgg print/parse, DOT export, graph copy,
// equality, and diff — the I/O surface an audit pipeline exercises.

#include <benchmark/benchmark.h>

#include "src/take_grant.h"

namespace {

tg::ProtectionGraph MakeGraph(size_t width) {
  tg_util::Prng prng(77);
  tg_sim::RandomHierarchyOptions options;
  options.levels = 4;
  options.subjects_per_level = width;
  options.objects_per_level = width;
  options.intra_rw = 0.7;
  return tg_sim::RandomHierarchy(options, prng).graph;
}

void BM_PrintGraph(benchmark::State& state) {
  tg::ProtectionGraph g = MakeGraph(static_cast<size_t>(state.range(0)));
  size_t bytes = tg::PrintGraph(g).size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg::PrintGraph(g).size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
  state.SetComplexityN(static_cast<int64_t>(g.ExplicitEdgeCount()));
}
BENCHMARK(BM_PrintGraph)->RangeMultiplier(4)->Range(2, 128)->Complexity(benchmark::oN);

void BM_ParseGraph(benchmark::State& state) {
  tg::ProtectionGraph g = MakeGraph(static_cast<size_t>(state.range(0)));
  std::string text = tg::PrintGraph(g);
  for (auto _ : state) {
    auto parsed = tg::ParseGraph(text);
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
  state.SetComplexityN(static_cast<int64_t>(g.ExplicitEdgeCount()));
}
BENCHMARK(BM_ParseGraph)->RangeMultiplier(4)->Range(2, 128)->Complexity(benchmark::oN);

void BM_DotExport(benchmark::State& state) {
  tg::ProtectionGraph g = MakeGraph(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg::ToDot(g).size());
  }
  state.SetComplexityN(static_cast<int64_t>(g.ExplicitEdgeCount()));
}
BENCHMARK(BM_DotExport)->RangeMultiplier(4)->Range(2, 128);

void BM_GraphCopy(benchmark::State& state) {
  tg::ProtectionGraph g = MakeGraph(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    tg::ProtectionGraph copy = g;
    benchmark::DoNotOptimize(copy.VertexCount());
  }
  state.SetComplexityN(static_cast<int64_t>(g.ExplicitEdgeCount()));
}
BENCHMARK(BM_GraphCopy)->RangeMultiplier(4)->Range(2, 128);

void BM_GraphEquality(benchmark::State& state) {
  tg::ProtectionGraph g = MakeGraph(static_cast<size_t>(state.range(0)));
  tg::ProtectionGraph h = g;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g == h);
  }
  state.SetComplexityN(static_cast<int64_t>(g.ExplicitEdgeCount()));
}
BENCHMARK(BM_GraphEquality)->RangeMultiplier(4)->Range(2, 128);

void BM_GraphDiff(benchmark::State& state) {
  tg::ProtectionGraph before = MakeGraph(static_cast<size_t>(state.range(0)));
  tg::ProtectionGraph after = tg_analysis::SaturateDeFacto(before);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiffGraphs(before, after).ChangeCount());
  }
  state.SetComplexityN(static_cast<int64_t>(after.ExplicitEdgeCount() +
                                            after.ImplicitEdgeCount()));
}
BENCHMARK(BM_GraphDiff)->RangeMultiplier(4)->Range(2, 32);

}  // namespace

BENCHMARK_MAIN();

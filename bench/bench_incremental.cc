// Incremental-analysis benchmark: the delta-aware pipeline (mutation
// journal -> overlay patch -> scoped cache repair) vs a full rebuild of
// the snapshot and all-pairs knowable matrix after every mutation batch.
//
// The workload is the scoped-invalidation sweet spot: a system of many
// isolated clusters (an audit target with independent subsystems), where a
// mutation batch dirties only the rows whose dependency footprints meet
// the touched cluster and every other row survives verbatim.  Sweeps graph
// sizes and mutation-batch sizes, checks in-binary that the incremental
// matrix stays bit-identical to the rebuilt one at every step, and exits
// non-zero if any equality or speedup claim fails.
//
// Emits machine-readable timings to BENCH_incremental.json (one JSON
// object per line), each row carrying the MetricsDelta counters — the
// incremental.* family shows the journal/overlay/repair work next to the
// snapshot.builds the rebuild path pays.
//
//   bench_incremental            # full sweep, writes BENCH_incremental.json
//   bench_incremental --smoke    # tiny sizes, no artifact; fails if the
//                                # incremental path is far slower than the
//                                # rebuild or any result diverges

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/exp_common.h"
#include "src/take_grant.h"

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// `clusters` islands of `cluster_size` vertices each (5/8 subjects), with
// random intra-cluster edges only, so dependency footprints stay local.
tg::ProtectionGraph ClusteredGraph(size_t clusters, size_t cluster_size, uint64_t seed) {
  tg_util::Prng prng(seed);
  tg::ProtectionGraph g;
  const tg::RightSet kLabels[] = {tg::kRead, tg::kWrite, tg::kTake, tg::kGrant,
                                  tg::kReadWrite, tg::kTakeGrant};
  for (size_t c = 0; c < clusters; ++c) {
    const tg::VertexId base = static_cast<tg::VertexId>(g.VertexCount());
    const size_t subjects = cluster_size * 5 / 8;
    for (size_t i = 0; i < cluster_size; ++i) {
      (void)(i < subjects ? g.AddSubject() : g.AddObject());
    }
    const size_t edges = cluster_size * 2;
    for (size_t e = 0; e < edges; ++e) {
      tg::VertexId src = base + static_cast<tg::VertexId>(prng.NextBelow(cluster_size));
      tg::VertexId dst = base + static_cast<tg::VertexId>(prng.NextBelow(cluster_size));
      if (src == dst) {
        continue;
      }
      (void)g.AddExplicit(src, dst, kLabels[prng.NextBelow(std::size(kLabels))]);
    }
  }
  return g;
}

// One effective single-edge mutation inside a random cluster: toggles a
// random right on a random intra-cluster pair, so every call bumps the
// epoch by exactly one.
void ToggleEdge(tg::ProtectionGraph& g, tg_util::Prng& prng, size_t clusters,
                size_t cluster_size) {
  const tg::Right kRights[] = {tg::Right::kRead, tg::Right::kWrite, tg::Right::kTake,
                               tg::Right::kGrant};
  while (true) {
    tg::VertexId base =
        static_cast<tg::VertexId>(prng.NextBelow(clusters) * cluster_size);
    tg::VertexId src = base + static_cast<tg::VertexId>(prng.NextBelow(cluster_size));
    tg::VertexId dst = base + static_cast<tg::VertexId>(prng.NextBelow(cluster_size));
    if (src == dst) {
      continue;
    }
    tg::Right r = kRights[prng.NextBelow(std::size(kRights))];
    if (g.HasExplicit(src, dst, r)) {
      (void)g.RemoveExplicit(src, dst, tg::RightSet(r));
    } else {
      (void)g.AddExplicit(src, dst, tg::RightSet(r));
    }
    return;
  }
}

struct Config {
  size_t clusters;
  size_t cluster_size;
  size_t batch;  // mutations per batch between queries
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  exp::Reporter reporter(smoke ? "incremental repair smoke (delta path vs rebuild guard)"
                               : "incremental repair: scoped invalidation vs full rebuild");
  // The smoke run executes from the build tree (ctest); don't shadow a real
  // artifact with tiny-size numbers.
  exp::JsonlWriter jsonl(smoke ? "BENCH_incremental_smoke.json" : "BENCH_incremental.json");

  const int iters = smoke ? 6 : 20;
  reporter.Note("env", "iters=" + std::to_string(iters) +
                           " overlay_max=" + std::to_string(tg::SnapshotOverlay::DefaultMaxPatched()));
  exp::JsonObject env_row;
  env_row.Set("record", "env");
  exp::AppendEnvInfo(env_row);
  jsonl.Write(env_row.Set("iters", static_cast<uint64_t>(iters))
                  .Set("overlay_max",
                       static_cast<uint64_t>(tg::SnapshotOverlay::DefaultMaxPatched()))
                  .Set("smoke", smoke));

  std::vector<Config> sweep;
  if (smoke) {
    sweep = {{3, 16, 1}, {3, 16, 4}};
  } else {
    sweep = {{8, 16, 1}, {8, 32, 1}, {16, 32, 1}, {16, 32, 4}, {16, 32, 16}, {32, 32, 1}};
  }

  bool all_identical = true;
  double worst_smoke_ratio = 0.0;   // inc_ms / full_ms, larger = worse
  double best_speedup_at_512 = 0.0; // full_ms / inc_ms over n >= 512, batch == 1
  bool builds_flat_at_batch1 = true;
  bool rows_reused_grew = false;

  for (const Config& config : sweep) {
    const size_t n = config.clusters * config.cluster_size;
    const std::string id = "n" + std::to_string(n) + "_b" + std::to_string(config.batch);

    // Two identical graphs driven by identical mutation streams: one served
    // by a long-lived cache (scoped repair), one rebuilt from scratch after
    // every batch.
    tg::ProtectionGraph inc_graph = ClusteredGraph(config.clusters, config.cluster_size, 7);
    tg::ProtectionGraph full_graph = ClusteredGraph(config.clusters, config.cluster_size, 7);
    tg_analysis::AnalysisCache inc_cache;
    tg_analysis::AnalysisCache full_cache;
    tg_util::Prng inc_prng(1000 + n);
    tg_util::Prng full_prng(1000 + n);

    // Prime both caches so the measured loop isolates the post-mutation
    // delta work from the initial build.
    (void)inc_cache.KnowableAll(inc_graph);
    (void)full_cache.KnowableAll(full_graph);

    tg_util::MetricsRegistry& registry = tg_util::MetricsRegistry::Instance();
    const uint64_t builds_before = registry.CounterValue("snapshot.builds");
    const uint64_t reused_before = registry.CounterValue("incremental.rows_reused");

    exp::MetricsDelta delta;
    double inc_ms = 0.0;
    double full_ms = 0.0;
    bool identical = true;
    for (int it = 0; it < iters; ++it) {
      Clock::time_point t0 = Clock::now();
      for (size_t m = 0; m < config.batch; ++m) {
        ToggleEdge(inc_graph, inc_prng, config.clusters, config.cluster_size);
      }
      const tg::BitMatrix& inc = inc_cache.KnowableAll(inc_graph);
      inc_ms += MsSince(t0);

      t0 = Clock::now();
      for (size_t m = 0; m < config.batch; ++m) {
        ToggleEdge(full_graph, full_prng, config.clusters, config.cluster_size);
      }
      full_cache.Invalidate();  // the rebuild baseline forgets everything
      const tg::BitMatrix& full = full_cache.KnowableAll(full_graph);
      full_ms += MsSince(t0);

      identical = identical && inc == full;
    }
    all_identical = all_identical && identical;

    const uint64_t inc_builds = registry.CounterValue("snapshot.builds") - builds_before -
                                static_cast<uint64_t>(iters);  // the rebuild path's builds
    const uint64_t rows_reused = registry.CounterValue("incremental.rows_reused") - reused_before;
    const double speedup = inc_ms > 0 ? full_ms / inc_ms : 0.0;
    reporter.Check(id, "incremental matrix bit-identical to full rebuild", true, identical);
    reporter.Note(id, "inc=" + std::to_string(inc_ms) + "ms full=" + std::to_string(full_ms) +
                          "ms speedup=" + std::to_string(speedup) +
                          " inc_builds=" + std::to_string(inc_builds) +
                          " rows_reused=" + std::to_string(rows_reused));
    if (smoke && full_ms > 0) {
      // +0.5ms absolute slack: at smoke sizes both passes are sub-ms and
      // scheduling noise would otherwise dominate the ratio.
      worst_smoke_ratio = std::max(worst_smoke_ratio, inc_ms / (full_ms + 0.5));
    }
    if (!smoke && n >= 512 && config.batch == 1) {
      best_speedup_at_512 = std::max(best_speedup_at_512, speedup);
      // Single-edge batches stay far under the compaction threshold, so the
      // incremental side must do zero from-scratch snapshot builds.
      builds_flat_at_batch1 = builds_flat_at_batch1 && inc_builds == 0;
    }
    rows_reused_grew = rows_reused_grew || rows_reused > 0;

    exp::JsonObject row;
    row.Set("record", "timing")
        .Set("bench", "incremental_repair")
        .Set("vertices", static_cast<uint64_t>(n))
        .Set("clusters", static_cast<uint64_t>(config.clusters))
        .Set("batch", static_cast<uint64_t>(config.batch))
        .Set("iters", static_cast<uint64_t>(iters))
        .Set("inc_ms", inc_ms)
        .Set("full_ms", full_ms)
        .Set("speedup", speedup)
        .Set("inc_snapshot_builds", inc_builds)
        .Set("inc_rows_reused", rows_reused)
        .Set("identical", identical);
    jsonl.Write(delta.AppendTo(row));
  }

  if (smoke) {
    reporter.Check("smoke3x", "incremental path within 3x of rebuild at tiny sizes", true,
                   worst_smoke_ratio <= 3.0);
    reporter.Check("reuse", "incremental.rows_reused grew across the sweep", true,
                   rows_reused_grew);
  } else {
    reporter.Check("speedup5x",
                   "incremental >= 5x faster than rebuild for single edges at n >= 512", true,
                   best_speedup_at_512 >= 5.0);
    reporter.Check("flatbuilds", "no snapshot rebuilds on the incremental path at batch=1",
                   true, builds_flat_at_batch1);
    reporter.Check("reuse", "incremental.rows_reused grew across the sweep", true,
                   rows_reused_grew);
  }

  if (!jsonl.ok()) {
    std::fprintf(stderr, "warning: could not open benchmark JSONL for writing\n");
  }
  return reporter.Finish();
}

// Corollary 5.6: "testing a graph for violation of the restriction may be
// done in time linear in the number of edges of the graph."
//
// Sweeps AuditBishopRestriction over hierarchies of growing edge count and
// reports complexity vs E.

#include <benchmark/benchmark.h>

#include "src/take_grant.h"

namespace {

tg_sim::GeneratedHierarchy MakeHierarchy(size_t levels, size_t width) {
  tg_util::Prng prng(11);
  tg_sim::RandomHierarchyOptions options;
  options.levels = levels;
  options.subjects_per_level = width;
  options.objects_per_level = width;
  options.intra_rw = 0.8;
  options.read_down = 0.8;
  options.planted_channels = 2;
  return tg_sim::RandomHierarchy(options, prng);
}

void BM_AuditLinearInEdges(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  tg_sim::GeneratedHierarchy h = MakeHierarchy(4, width);
  const size_t edges = h.graph.ExplicitEdgeCount();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg_hier::AuditBishopRestriction(h.graph, h.levels));
  }
  state.SetComplexityN(static_cast<int64_t>(edges));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * edges);
  state.counters["edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_AuditLinearInEdges)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Complexity(benchmark::oN);

void BM_BlpAudit(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  tg_sim::GeneratedHierarchy h = MakeHierarchy(4, width);
  const size_t edges = h.graph.ExplicitEdgeCount();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tg_hier::BlpSecure(h.graph, h.levels));
  }
  state.SetComplexityN(static_cast<int64_t>(edges));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * edges);
}
BENCHMARK(BM_BlpAudit)->RangeMultiplier(2)->Range(2, 64)->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();

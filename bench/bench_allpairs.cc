// All-pairs reachability benchmark: the scalar per-source product-BFS
// engine vs the bit-parallel 64-lane engine, measured on the analysis that
// motivates it — computing rwtg-levels, which needs BOC reachability from
// every subject.  Sweeps graph sizes and edge densities, checks in-binary
// that both engines produce the identical level assignment, and exits
// non-zero if any equality or speedup claim fails.
//
// Emits machine-readable timings to BENCH_allpairs.json (one JSON object
// per line), each row carrying the MetricsDelta counters (scalar bfs.*
// work next to bitreach.* work) that produced it.
//
//   bench_allpairs            # full sweep, writes BENCH_allpairs.json
//   bench_allpairs --smoke    # tiny sizes, no artifact; fails if the bit
//                             # path is more than 2x slower than scalar

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/exp_common.h"
#include "src/take_grant.h"

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

tg::ProtectionGraph BenchGraph(size_t vertices, double edge_factor, uint64_t seed) {
  tg_util::Prng prng(seed);
  tg_sim::RandomGraphOptions options;
  options.subjects = vertices * 5 / 8;
  options.objects = vertices - options.subjects;
  options.edge_factor = edge_factor;
  return tg_sim::RandomGraph(options, prng);
}

bool SameAssignment(const tg_hier::LevelAssignment& a, const tg_hier::LevelAssignment& b,
                    size_t vertex_count) {
  if (a.LevelCount() != b.LevelCount()) {
    return false;
  }
  for (tg::VertexId v = 0; v < vertex_count; ++v) {
    if (a.LevelOf(v) != b.LevelOf(v)) {
      return false;
    }
  }
  for (tg_hier::LevelId x = 0; x < a.LevelCount(); ++x) {
    for (tg_hier::LevelId y = 0; y < a.LevelCount(); ++y) {
      if (a.Higher(x, y) != b.Higher(x, y)) {
        return false;
      }
    }
  }
  return true;
}

struct Config {
  size_t vertices;
  double edge_factor;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  exp::Reporter reporter(smoke ? "all-pairs rwtg-levels smoke (bit vs scalar guard)"
                               : "all-pairs rwtg-levels: scalar vs bit-parallel");
  // The smoke run executes from the build tree (ctest); don't shadow a real
  // artifact with tiny-size numbers.
  exp::JsonlWriter jsonl(smoke ? "BENCH_allpairs_smoke.json" : "BENCH_allpairs.json");

  const size_t cores = std::thread::hardware_concurrency();
  const size_t threads = tg_util::ThreadPool::DefaultThreadCount();
  const int reps = smoke ? 3 : 1;
  reporter.Note("env", "cores=" + std::to_string(cores) + " threads=" +
                           std::to_string(threads) + " reps=" + std::to_string(reps));
  exp::JsonObject env_row;
  env_row.Set("record", "env");
  exp::AppendEnvInfo(env_row);
  jsonl.Write(env_row.Set("smoke", smoke));

  std::vector<Config> sweep;
  if (smoke) {
    sweep = {{48, 1.5}, {96, 1.5}};
  } else {
    sweep = {{128, 1.5}, {128, 3.0}, {256, 1.5}, {256, 3.0}, {512, 1.5}, {512, 3.0}};
  }

  tg_util::ThreadPool pool;  // DefaultThreadCount-sized; both engines use it
  double worst_smoke_ratio = 0.0;        // bit_ms / scalar_ms, larger = worse
  double best_speedup_at_512 = 0.0;      // scalar_ms / bit_ms over n >= 512 configs

  for (const Config& config : sweep) {
    tg::ProtectionGraph g = BenchGraph(config.vertices, config.edge_factor, 2026);
    const std::string id = "n" + std::to_string(config.vertices) + "_d" +
                           std::to_string(static_cast<int>(config.edge_factor * 10));

    exp::MetricsDelta delta;
    double scalar_ms = 0.0;
    double bit_ms = 0.0;
    tg_hier::LevelAssignment scalar;
    tg_hier::LevelAssignment bit;
    for (int r = 0; r < reps; ++r) {
      Clock::time_point t0 = Clock::now();
      scalar = tg_hier::ComputeRwtgLevelsScalar(g, &pool);
      double ms = MsSince(t0);
      scalar_ms = r == 0 ? ms : std::min(scalar_ms, ms);
      t0 = Clock::now();
      bit = tg_hier::ComputeRwtgLevels(g, &pool);
      ms = MsSince(t0);
      bit_ms = r == 0 ? ms : std::min(bit_ms, ms);
    }
    const bool identical = SameAssignment(scalar, bit, g.VertexCount());
    const double speedup = bit_ms > 0 ? scalar_ms / bit_ms : 0.0;
    reporter.Check(id, "bit-parallel levels identical to scalar", true, identical);
    reporter.Note(id, "scalar=" + std::to_string(scalar_ms) + "ms bit=" +
                          std::to_string(bit_ms) + "ms speedup=" + std::to_string(speedup) +
                          " levels=" + std::to_string(bit.LevelCount()));
    if (smoke && scalar_ms > 0) {
      // +0.5ms absolute slack: at smoke sizes both passes are sub-ms and
      // scheduling noise would otherwise dominate the ratio.
      double ratio = bit_ms / (scalar_ms + 0.5);
      worst_smoke_ratio = std::max(worst_smoke_ratio, ratio);
    }
    if (!smoke && config.vertices >= 512) {
      best_speedup_at_512 = std::max(best_speedup_at_512, speedup);
    }

    exp::JsonObject row;
    row.Set("record", "timing")
        .Set("bench", "rwtg_levels_allpairs")
        .Set("vertices", static_cast<uint64_t>(g.VertexCount()))
        .Set("subjects", static_cast<uint64_t>(g.SubjectCount()))
        .Set("edges", static_cast<uint64_t>(g.ExplicitEdgeCount()))
        .Set("edge_factor", config.edge_factor)
        .Set("scalar_ms", scalar_ms)
        .Set("bit_ms", bit_ms)
        .Set("speedup", speedup)
        .Set("levels", static_cast<uint64_t>(bit.LevelCount()))
        .Set("identical", identical);
    jsonl.Write(delta.AppendTo(row));
  }

  if (smoke) {
    reporter.Check("smoke2x", "bit path within 2x of scalar at tiny sizes", true,
                   worst_smoke_ratio <= 2.0);
  } else {
    reporter.Check("speedup8x", "bit-parallel >= 8x faster than scalar at n >= 512", true,
                   best_speedup_at_512 >= 8.0);
  }

  if (!jsonl.ok()) {
    std::fprintf(stderr, "warning: could not open benchmark JSONL for writing\n");
  }
  return reporter.Finish();
}

// Shared reporting for the experiment binaries: each experiment prints one
// row per paper claim, "claim vs measured", and the binary exits non-zero
// if any claim fails to reproduce.  JsonObject/JsonlWriter add a
// machine-readable companion format (one JSON object per line) for
// benchmarks whose numbers downstream tooling consumes.

#ifndef BENCH_EXP_COMMON_H_
#define BENCH_EXP_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "src/util/metrics.h"
#include "src/util/thread_pool.h"

namespace exp {

class Reporter {
 public:
  explicit Reporter(const char* title) {
    std::printf("=== %s ===\n", title);
    std::printf("%-10s %-58s %-10s %s\n", "exp", "claim", "measured", "status");
  }

  // A boolean claim: the paper asserts `claim`, we measured `measured`.
  void Check(const std::string& id, const std::string& claim, bool expected, bool measured) {
    bool ok = expected == measured;
    std::printf("%-10s %-58s %-10s %s\n", id.c_str(), claim.c_str(),
                measured ? "true" : "false", ok ? "PASS" : "FAIL");
    if (!ok) {
      ++failures_;
    }
  }

  // Free-form data row (no pass/fail semantics).
  void Note(const std::string& id, const std::string& text) {
    std::printf("%-10s %s\n", id.c_str(), text.c_str());
  }

  // Exit code for main().
  int Finish() const {
    std::printf("--- %d failure(s)\n\n", failures_);
    return failures_ == 0 ? 0 : 1;
  }

 private:
  int failures_ = 0;
};

// One flat JSON object, built key by key.  Insertion order is preserved;
// keys are not deduplicated (don't Set the same key twice).
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, const std::string& value) {
    return Raw(key, "\"" + Escape(value) + "\"");
  }
  JsonObject& Set(const std::string& key, const char* value) {
    return Set(key, std::string(value));
  }
  JsonObject& Set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return Raw(key, buf);
  }
  JsonObject& Set(const std::string& key, uint64_t value) {
    return Raw(key, std::to_string(value));
  }
  JsonObject& Set(const std::string& key, int value) {
    return Raw(key, std::to_string(value));
  }
  JsonObject& Set(const std::string& key, bool value) {
    return Raw(key, value ? "true" : "false");
  }

  std::string ToString() const { return "{" + body_ + "}"; }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
      }
      out += c;
    }
    return out;
  }

  JsonObject& Raw(const std::string& key, const std::string& rendered) {
    if (!body_.empty()) {
      body_ += ",";
    }
    body_ += "\"" + Escape(key) + "\":" + rendered;
    return *this;
  }

  std::string body_;
};

// Writes JSON objects one per line (JSON Lines).  Benchmarks emit a
// BENCH_<name>.json next to the binary; scripts/run_all.sh collects them.
class JsonlWriter {
 public:
  explicit JsonlWriter(const std::string& path) : out_(std::fopen(path.c_str(), "w")) {}
  ~JsonlWriter() {
    if (out_ != nullptr) {
      std::fclose(out_);
    }
  }
  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  bool ok() const { return out_ != nullptr; }

  void Write(const JsonObject& object) {
    if (out_ != nullptr) {
      std::fprintf(out_, "%s\n", object.ToString().c_str());
    }
  }

 private:
  std::FILE* out_;
};

// Appends the machine/thread context every benchmark env record must
// carry: the real hardware_concurrency, the effective pool size, and the
// raw TG_THREADS override (empty when unset) — so downstream tooling (and
// scripts/check.sh) can flag artifacts produced by a single-core run.
inline JsonObject& AppendEnvInfo(JsonObject& row) {
  const char* tg_threads = std::getenv("TG_THREADS");
  return row
      .Set("hardware_concurrency", static_cast<uint64_t>(std::thread::hardware_concurrency()))
      .Set("threads", static_cast<uint64_t>(tg_util::ThreadPool::DefaultThreadCount()))
      .Set("tg_threads_env", tg_threads != nullptr ? tg_threads : "");
}

// Snapshot of the engine-internal metric counters, taken at construction.
// AppendTo() folds the deltas since then into a JSONL row, so every timing
// record carries the cache hit rate, snapshot rebuilds, and BFS work that
// produced it.  Counters are process-global; construct one MetricsDelta
// immediately before the phase it should attribute work to.
class MetricsDelta {
 public:
  MetricsDelta() { Snapshot(baseline_); }

  // Re-baselines, so one object can bracket consecutive phases.
  void Reset() { Snapshot(baseline_); }

  JsonObject& AppendTo(JsonObject& row) const {
    Values now;
    Snapshot(now);
    const uint64_t hits = now.cache_hits - baseline_.cache_hits;
    const uint64_t misses = now.cache_misses - baseline_.cache_misses;
    const uint64_t lookups = hits + misses;
    row.Set("cache_hits", hits)
        .Set("cache_misses", misses)
        .Set("cache_hit_rate", lookups > 0 ? static_cast<double>(hits) / lookups : 0.0)
        .Set("snapshot_builds", now.snapshot_builds - baseline_.snapshot_builds)
        .Set("bfs_runs", now.bfs_runs - baseline_.bfs_runs)
        .Set("bfs_node_visits", now.bfs_node_visits - baseline_.bfs_node_visits)
        .Set("bitreach_slices", now.bitreach_slices - baseline_.bitreach_slices)
        .Set("bitreach_waves", now.bitreach_waves - baseline_.bitreach_waves)
        .Set("bitreach_word_ops", now.bitreach_word_ops - baseline_.bitreach_word_ops)
        .Set("bitreach_lane_visits", now.bitreach_lane_visits - baseline_.bitreach_lane_visits)
        .Set("pool_tasks", now.pool_tasks - baseline_.pool_tasks)
        .Set("journal_records", now.journal_records - baseline_.journal_records)
        .Set("overlay_patches", now.overlay_patches - baseline_.overlay_patches)
        .Set("compactions", now.compactions - baseline_.compactions)
        .Set("rows_reused", now.rows_reused - baseline_.rows_reused)
        .Set("slices_repaired", now.slices_repaired - baseline_.slices_repaired)
        .Set("condense_components", now.condense_components - baseline_.condense_components)
        .Set("condense_quotient_edges",
             now.condense_quotient_edges - baseline_.condense_quotient_edges)
        .Set("condense_closure_rows", now.condense_closure_rows - baseline_.condense_closure_rows)
        .Set("condense_shards", now.condense_shards - baseline_.condense_shards)
        .Set("condense_shards_dirty", now.condense_shards_dirty - baseline_.condense_shards_dirty)
        .Set("condense_stage_visits", now.condense_stage_visits - baseline_.condense_stage_visits)
        .Set("condense_stage_edge_scans",
             now.condense_stage_edge_scans - baseline_.condense_stage_edge_scans)
        .Set("condense_closure_rounds",
             now.condense_closure_rounds - baseline_.condense_closure_rounds)
        .Set("row_sparse_hits", now.row_sparse_hits - baseline_.row_sparse_hits)
        .Set("row_dense_hits", now.row_dense_hits - baseline_.row_dense_hits);
    // Latency percentiles are cumulative over the process (histogram
    // buckets cannot be diffed), so they summarize the whole run so far.
    tg_util::Histogram& bfs_ns = tg_util::GetHistogram("bfs.run_ns");
    row.Set("bfs_run_ns_p50", bfs_ns.P50())
        .Set("bfs_run_ns_p95", bfs_ns.P95())
        .Set("bfs_run_ns_p99", bfs_ns.P99());
    return row;
  }

 private:
  struct Values {
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t snapshot_builds = 0;
    uint64_t bfs_runs = 0;
    uint64_t bfs_node_visits = 0;
    uint64_t bitreach_slices = 0;
    uint64_t bitreach_waves = 0;
    uint64_t bitreach_word_ops = 0;
    uint64_t bitreach_lane_visits = 0;
    uint64_t pool_tasks = 0;
    uint64_t journal_records = 0;
    uint64_t overlay_patches = 0;
    uint64_t compactions = 0;
    uint64_t rows_reused = 0;
    uint64_t slices_repaired = 0;
    uint64_t condense_components = 0;
    uint64_t condense_quotient_edges = 0;
    uint64_t condense_closure_rows = 0;
    uint64_t condense_shards = 0;
    uint64_t condense_shards_dirty = 0;
    uint64_t condense_stage_visits = 0;
    uint64_t condense_stage_edge_scans = 0;
    uint64_t condense_closure_rounds = 0;
    uint64_t row_sparse_hits = 0;
    uint64_t row_dense_hits = 0;
  };

  static void Snapshot(Values& v) {
    tg_util::MetricsRegistry& registry = tg_util::MetricsRegistry::Instance();
    v.cache_hits = registry.CounterValue("cache.hits");
    v.cache_misses = registry.CounterValue("cache.misses");
    v.snapshot_builds = registry.CounterValue("snapshot.builds");
    v.bfs_runs = registry.CounterValue("bfs.runs");
    v.bfs_node_visits = registry.CounterValue("bfs.node_visits");
    v.bitreach_slices = registry.CounterValue("bitreach.slices");
    v.bitreach_waves = registry.CounterValue("bitreach.waves");
    v.bitreach_word_ops = registry.CounterValue("bitreach.word_ops");
    v.bitreach_lane_visits = registry.CounterValue("bitreach.lane_visits");
    v.pool_tasks = registry.CounterValue("pool.tasks");
    v.journal_records = registry.CounterValue("incremental.journal_records");
    v.overlay_patches = registry.CounterValue("incremental.overlay_patches");
    v.compactions = registry.CounterValue("incremental.compactions");
    v.rows_reused = registry.CounterValue("incremental.rows_reused");
    v.slices_repaired = registry.CounterValue("incremental.slices_repaired");
    v.condense_components = registry.CounterValue("condense.components");
    v.condense_quotient_edges = registry.CounterValue("condense.quotient_edges");
    v.condense_closure_rows = registry.CounterValue("condense.closure_rows");
    v.condense_shards = registry.CounterValue("condense.shards");
    v.condense_shards_dirty = registry.CounterValue("condense.shards_dirty");
    v.condense_stage_visits = registry.CounterValue("condense.stage_visits");
    v.condense_stage_edge_scans = registry.CounterValue("condense.stage_edge_scans");
    v.condense_closure_rounds = registry.CounterValue("condense.closure_rounds");
    v.row_sparse_hits = registry.CounterValue("row.sparse_hits");
    v.row_dense_hits = registry.CounterValue("row.dense_hits");
  }

  Values baseline_;
};

}  // namespace exp

#endif  // BENCH_EXP_COMMON_H_

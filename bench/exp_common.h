// Shared reporting for the experiment binaries: each experiment prints one
// row per paper claim, "claim vs measured", and the binary exits non-zero
// if any claim fails to reproduce.

#ifndef BENCH_EXP_COMMON_H_
#define BENCH_EXP_COMMON_H_

#include <cstdio>
#include <string>

namespace exp {

class Reporter {
 public:
  explicit Reporter(const char* title) {
    std::printf("=== %s ===\n", title);
    std::printf("%-10s %-58s %-10s %s\n", "exp", "claim", "measured", "status");
  }

  // A boolean claim: the paper asserts `claim`, we measured `measured`.
  void Check(const std::string& id, const std::string& claim, bool expected, bool measured) {
    bool ok = expected == measured;
    std::printf("%-10s %-58s %-10s %s\n", id.c_str(), claim.c_str(),
                measured ? "true" : "false", ok ? "PASS" : "FAIL");
    if (!ok) {
      ++failures_;
    }
  }

  // Free-form data row (no pass/fail semantics).
  void Note(const std::string& id, const std::string& text) {
    std::printf("%-10s %s\n", id.c_str(), text.c_str());
  }

  // Exit code for main().
  int Finish() const {
    std::printf("--- %d failure(s)\n\n", failures_);
    return failures_ == 0 ? 0 : 1;
  }

 private:
  int failures_ = 0;
};

}  // namespace exp

#endif  // BENCH_EXP_COMMON_H_

// Shared reporting for the experiment binaries: each experiment prints one
// row per paper claim, "claim vs measured", and the binary exits non-zero
// if any claim fails to reproduce.  JsonObject/JsonlWriter add a
// machine-readable companion format (one JSON object per line) for
// benchmarks whose numbers downstream tooling consumes.

#ifndef BENCH_EXP_COMMON_H_
#define BENCH_EXP_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace exp {

class Reporter {
 public:
  explicit Reporter(const char* title) {
    std::printf("=== %s ===\n", title);
    std::printf("%-10s %-58s %-10s %s\n", "exp", "claim", "measured", "status");
  }

  // A boolean claim: the paper asserts `claim`, we measured `measured`.
  void Check(const std::string& id, const std::string& claim, bool expected, bool measured) {
    bool ok = expected == measured;
    std::printf("%-10s %-58s %-10s %s\n", id.c_str(), claim.c_str(),
                measured ? "true" : "false", ok ? "PASS" : "FAIL");
    if (!ok) {
      ++failures_;
    }
  }

  // Free-form data row (no pass/fail semantics).
  void Note(const std::string& id, const std::string& text) {
    std::printf("%-10s %s\n", id.c_str(), text.c_str());
  }

  // Exit code for main().
  int Finish() const {
    std::printf("--- %d failure(s)\n\n", failures_);
    return failures_ == 0 ? 0 : 1;
  }

 private:
  int failures_ = 0;
};

// One flat JSON object, built key by key.  Insertion order is preserved;
// keys are not deduplicated (don't Set the same key twice).
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, const std::string& value) {
    return Raw(key, "\"" + Escape(value) + "\"");
  }
  JsonObject& Set(const std::string& key, const char* value) {
    return Set(key, std::string(value));
  }
  JsonObject& Set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return Raw(key, buf);
  }
  JsonObject& Set(const std::string& key, uint64_t value) {
    return Raw(key, std::to_string(value));
  }
  JsonObject& Set(const std::string& key, int value) {
    return Raw(key, std::to_string(value));
  }
  JsonObject& Set(const std::string& key, bool value) {
    return Raw(key, value ? "true" : "false");
  }

  std::string ToString() const { return "{" + body_ + "}"; }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
      }
      out += c;
    }
    return out;
  }

  JsonObject& Raw(const std::string& key, const std::string& rendered) {
    if (!body_.empty()) {
      body_ += ",";
    }
    body_ += "\"" + Escape(key) + "\":" + rendered;
    return *this;
  }

  std::string body_;
};

// Writes JSON objects one per line (JSON Lines).  Benchmarks emit a
// BENCH_<name>.json next to the binary; scripts/run_all.sh collects them.
class JsonlWriter {
 public:
  explicit JsonlWriter(const std::string& path) : out_(std::fopen(path.c_str(), "w")) {}
  ~JsonlWriter() {
    if (out_ != nullptr) {
      std::fclose(out_);
    }
  }
  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  bool ok() const { return out_ != nullptr; }

  void Write(const JsonObject& object) {
    if (out_ != nullptr) {
      std::fprintf(out_, "%s\n", object.ToString().c_str());
    }
  }

 private:
  std::FILE* out_;
};

}  // namespace exp

#endif  // BENCH_EXP_COMMON_H_

// Corollary 5.7: "determining whether or not an application of a de jure
// rule violates the restriction may be done in constant time."
//
// Measures one BishopRestrictionPolicy::Vet call on graphs of growing size:
// the time must stay flat (O(1) in |V| and |E|).

#include <benchmark/benchmark.h>

#include "src/take_grant.h"

namespace {

struct Setup {
  tg_sim::GeneratedHierarchy h;
  tg_hier::BishopRestrictionPolicy policy;
  tg::RuleApplication allowed;
  tg::RuleApplication vetoed;

  explicit Setup(size_t width)
      : h(Make(width)),
        policy(h.levels),
        allowed(tg::RuleApplication::Take(h.level_subjects[1][0], h.level_subjects[1][1],
                                          h.level_subjects[0][0], tg::kRead)),
        vetoed(tg::RuleApplication::Take(h.level_subjects[0][0], h.level_subjects[0][1],
                                         h.level_subjects[1][0], tg::kRead)) {}

  static tg_sim::GeneratedHierarchy Make(size_t width) {
    tg_util::Prng prng(23);
    tg_sim::RandomHierarchyOptions options;
    options.levels = 3;
    options.subjects_per_level = width;
    options.objects_per_level = width;
    return tg_sim::RandomHierarchy(options, prng);
  }
};

void BM_VetAllowedRule(benchmark::State& state) {
  Setup setup(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.policy.Vet(setup.h.graph, setup.allowed).ok());
  }
  state.SetComplexityN(static_cast<int64_t>(setup.h.graph.VertexCount()));
  state.counters["vertices"] = static_cast<double>(setup.h.graph.VertexCount());
  state.counters["edges"] = static_cast<double>(setup.h.graph.ExplicitEdgeCount());
}
BENCHMARK(BM_VetAllowedRule)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity(benchmark::o1);

void BM_VetVetoedRule(benchmark::State& state) {
  Setup setup(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(setup.policy.Vet(setup.h.graph, setup.vetoed).ok());
  }
  state.SetComplexityN(static_cast<int64_t>(setup.h.graph.VertexCount()));
}
BENCHMARK(BM_VetVetoedRule)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity(benchmark::o1);

// Contrast: re-auditing the whole graph after every rule instead of the
// O(1) incremental check (the ablation the two corollaries justify).
void BM_FullReauditPerRule(benchmark::State& state) {
  Setup setup(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tg_hier::AuditBishopRestriction(setup.h.graph, setup.policy.assignment()).empty());
  }
  state.SetComplexityN(static_cast<int64_t>(setup.h.graph.ExplicitEdgeCount()));
}
BENCHMARK(BM_FullReauditPerRule)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
